//! A multi-branch bank: one partition per branch, cross-branch transfers,
//! and a global auditor verifying conservation while transfers run.
//!
//! Demonstrates multi-partition transactions (a cross-branch transfer
//! touches two partitions atomically) and per-partition statistics.
//!
//! ```text
//! cargo run --release --example account_transfers
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use partstm::core::{PartitionConfig, Stm};
use partstm::structures::Bank;

const BRANCHES: usize = 4;
const ACCOUNTS_PER_BRANCH: usize = 32;
const INITIAL: i64 = 1000;

fn main() {
    let stm = Stm::new();
    let banks: Vec<Arc<Bank>> = (0..BRANCHES)
        .map(|b| {
            Arc::new(Bank::new(
                stm.new_partition(PartitionConfig::named(format!("branch-{b}"))),
                ACCOUNTS_PER_BRANCH,
                INITIAL,
            ))
        })
        .collect();
    let expected_total = (BRANCHES * ACCOUNTS_PER_BRANCH) as i64 * INITIAL;

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Transfer workers: mostly intra-branch, sometimes cross-branch.
        for w in 0..4usize {
            let ctx = stm.register_thread();
            let banks = &banks;
            let stop = &stop;
            s.spawn(move || {
                let mut r = 0x9E37_79B9u64.wrapping_mul(w as u64 + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from_b = (r % BRANCHES as u64) as usize;
                    let to_b = ((r >> 16) % BRANCHES as u64) as usize;
                    let from = ((r >> 24) % ACCOUNTS_PER_BRANCH as u64) as usize;
                    let to = ((r >> 32) % ACCOUNTS_PER_BRANCH as u64) as usize;
                    let amount = (r % 100) as i64;
                    if from_b == to_b {
                        ctx.run(|tx| banks[from_b].transfer(tx, from, to, amount));
                    } else {
                        // Cross-branch: one transaction spanning two
                        // partitions; atomicity must hold across them.
                        ctx.run(|tx| {
                            // Withdraw here, deposit there: two partitions,
                            // one atomic transaction.
                            banks[from_b].deposit(tx, from, -amount)?;
                            banks[to_b].deposit(tx, to, amount)?;
                            Ok(())
                        });
                    }
                    ops += 1;
                }
                ops
            });
        }
        // Auditor: global snapshot across all partitions must always see
        // the conserved total.
        let ctx = stm.register_thread();
        let banks2 = &banks;
        let stop2 = &stop;
        s.spawn(move || {
            // A long read-only scan racing writers exercises snapshot
            // extension heavily; keep the count modest so the example ends
            // promptly even on slow machines.
            for audit in 0..50 {
                let total = ctx.run(|tx| {
                    let mut sum = 0i64;
                    for b in banks2.iter() {
                        sum += b.total(tx)?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected_total, "audit {audit} saw a broken snapshot");
            }
            stop2.store(true, Ordering::Relaxed);
            println!("50 audits passed: total always {expected_total}");
        });
    });

    println!("\nper-branch statistics:");
    for (i, b) in banks.iter().enumerate() {
        let s = b.partition().stats();
        println!(
            "  branch-{i}: commits={} aborts={} reads={} writes={}",
            s.commits,
            s.aborts(),
            s.reads,
            s.writes
        );
    }
    let final_total: i64 = banks.iter().map(|b| b.total_direct()).sum();
    assert_eq!(final_total, expected_total);
    println!("final total: {final_total} (conserved)");
}
