//! Quickstart: partitions, transactional variables, and a first transfer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use partstm::core::{PartitionConfig, Stm, TVar};

fn main() {
    // The runtime. One per process is typical.
    let stm = Stm::new();

    // A partition: the unit of concurrency-control specialization. Every
    // transactional access names the partition guarding the data.
    let accounts = stm.new_partition(PartitionConfig::named("accounts"));

    // Transactional variables: 64-bit words (integers, floats, bools,
    // arena handles...).
    let alice = TVar::new(100i64);
    let bob = TVar::new(0i64);

    // Each thread registers once and then runs transactions.
    let ctx = stm.register_thread();
    ctx.run(|tx| {
        let a = tx.read(&accounts, &alice)?;
        let b = tx.read(&accounts, &bob)?;
        tx.write(&accounts, &alice, a - 30)?;
        tx.write(&accounts, &bob, b + 30)?;
        Ok(())
    });

    println!("alice = {}", alice.load_direct());
    println!("bob   = {}", bob.load_direct());
    assert_eq!(alice.load_direct() + bob.load_direct(), 100);

    // Partitions expose their statistics — the fuel for runtime tuning.
    let stats = accounts.stats();
    println!(
        "partition '{}': {} commits, {} aborts",
        accounts.name(),
        stats.commits,
        stats.aborts()
    );
}
