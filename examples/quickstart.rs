//! Quickstart: partitions, transactional variables, and a first transfer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use partstm::core::{PartitionConfig, Stm};

fn main() {
    // The runtime. One per process is typical.
    let stm = Stm::new();

    // A partition: the unit of concurrency-control specialization.
    let accounts = stm.new_partition(PartitionConfig::named("accounts"));

    // Transactional variables: 64-bit words (integers, floats, bools,
    // arena handles...), bound to their partition at allocation. Access
    // sites then name only the variable.
    let alice = accounts.tvar(100i64);
    let bob = accounts.tvar(0i64);

    // Each thread registers once and then runs transactions.
    let ctx = stm.register_thread();
    ctx.run(|tx| {
        let a = tx.read(&alice)?;
        let b = tx.read(&bob)?;
        tx.write(&alice, a - 30)?;
        tx.write(&bob, b + 30)?;
        Ok(())
    });

    println!("alice = {}", alice.load_direct());
    println!("bob   = {}", bob.load_direct());
    assert_eq!(alice.load_direct() + bob.load_direct(), 100);

    // Partitions expose their statistics — the fuel for runtime tuning.
    let stats = accounts.stats();
    println!(
        "partition '{}': {} commits, {} aborts",
        accounts.name(),
        stats.commits,
        stats.aborts()
    );
}
