//! The compile-time half of the system, end to end: build a program model
//! (what the Tanger/LLVM frontend would emit), run the automatic
//! partitioning analysis, inspect why sites were merged, and materialize
//! the resulting classes as runtime partitions — the full pipeline of the
//! paper's Figure 1.
//!
//! ```text
//! cargo run --example partition_analysis
//! ```

use partstm::analysis::{
    census, merge_chain, partition, AccessKind, MaterializePlan, ModelBuilder, ProgramModel,
    Strategy,
};
use partstm::core::Stm;

/// A small order-management application: an order book, a per-customer
/// index over the *same* orders (so the two structures alias), and an
/// independent audit log.
fn build_model() -> ProgramModel {
    let mut b = ModelBuilder::new("order-management");
    let orders = b.alloc("order_records", "Order");
    let book = b.alloc("order_book_nodes", "TreeNode");
    let by_customer = b.alloc("customer_index_nodes", "HashNode");
    let audit = b.alloc("audit_log_entries", "LogEntry");

    b.access("book_insert", AccessKind::ReadWrite, &[book, orders]);
    b.access("book_lookup", AccessKind::Read, &[book, orders]);
    // The customer index points at the same order records: the analysis
    // must merge it with the book (one access can reach both).
    b.access("index_scan", AccessKind::Read, &[by_customer, orders]);
    b.access("audit_append", AccessKind::ReadWrite, &[audit]);
    b.build().expect("model is well-formed")
}

fn main() {
    let model = build_model();
    println!("program model (JSON excerpt):");
    let json = model.to_json();
    for line in json.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...\n");

    // The paper's analysis: finest partitioning such that every access
    // site targets one partition's metadata.
    let plan = partition(&model, Strategy::MayTouch).expect("valid model");
    println!("partitions found: {}", plan.partition_count());
    for class in &plan.classes {
        println!(
            "  class {}: {} ({} alloc sites, {} access sites)",
            class.index,
            class.name,
            class.alloc_sites.len(),
            class.access_sites.len()
        );
    }

    // Why did the order book and the customer index end up together?
    let book = model.alloc_by_name("order_book_nodes").unwrap().id;
    let index = model.alloc_by_name("customer_index_nodes").unwrap().id;
    let chain = merge_chain(&model, book, index).expect("they are merged");
    println!("\nmerge explanation book -> index: via access sites {chain:?}");
    for acc in &chain {
        let site = model.access_sites.iter().find(|s| s.id == *acc).unwrap();
        println!(
            "  access {} = {} touching {:?}",
            acc, site.func, site.may_touch
        );
    }

    // Full census (the static side of Table T1).
    println!("\n{}", census(&model).unwrap().to_table());

    // Materialize the classes as live runtime partitions and drive
    // transactions through them — the full compile-time → runtime loop.
    let stm = Stm::new();
    let parts = stm.materialize_plan(&plan);
    println!("materialized runtime partitions:");
    for p in &parts {
        println!(
            "  id={:?} name={} tunable={}",
            p.id(),
            p.name(),
            p.is_tunable()
        );
    }
    // book + index + orders merge into one class; the audit log stands alone.
    assert_eq!(parts.len(), 2);

    // Bind variables to their plan-assigned partitions (what the compiler
    // pass would emit for each allocation site) and run transactions whose
    // access sites are partition-free.
    let orders_part = &parts[plan
        .class_of_alloc(model.alloc_by_name("order_records").unwrap().id)
        .unwrap()];
    let audit_part = &parts[plan
        .class_of_alloc(model.alloc_by_name("audit_log_entries").unwrap().id)
        .unwrap()];
    let open_orders = orders_part.tvar(0u64);
    let audit_entries = audit_part.tvar(0u64);

    let ctx = stm.register_thread();
    for _ in 0..100 {
        // One logical operation spanning both partitions, atomically.
        ctx.run(|tx| {
            tx.modify(&open_orders, |v| v + 1)?;
            tx.modify(&audit_entries, |v| v + 1)?;
            Ok(())
        });
    }
    assert_eq!(open_orders.load_direct(), 100);
    assert_eq!(audit_entries.load_direct(), 100);
    println!(
        "\nran 100 cross-partition transactions: open_orders={} audit_entries={}",
        open_orders.load_direct(),
        audit_entries.load_direct()
    );
    for p in &parts {
        let s = p.stats();
        println!(
            "  {}: commits={} aborts={}",
            p.name(),
            s.commits,
            s.aborts()
        );
    }
}
