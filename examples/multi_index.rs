//! Heterogeneous workload with runtime per-partition tuning — the paper's
//! headline scenario, live.
//!
//! Three structures with very different access patterns run in separate
//! partitions under the threshold tuner. Watch the tuner pick a different
//! configuration for each partition (the update-heavy contended list
//! typically ends up visible/coarser, the read-mostly tree stays on
//! invisible/word).
//!
//! ```text
//! cargo run --release --example multi_index
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use partstm::core::{Granularity, PartitionConfig, ReadMode, Stm};
use partstm::structures::{IntSet, THashSet, TLinkedList, TRbTree};
use partstm::tuning::{ThresholdPolicy, Thresholds};

fn label(p: &partstm::core::Partition) -> String {
    let c = p.current_config();
    let rm = match c.read_mode {
        ReadMode::Invisible => "invisible",
        ReadMode::Visible => "visible",
    };
    let g = match c.granularity {
        Granularity::Word => "word".to_string(),
        Granularity::Stripe { shift } => format!("stripe(2^{shift}B)"),
        Granularity::PartitionLock => "partition-lock".to_string(),
    };
    format!("{rm} reads, {g} detection, generation {}", p.generation())
}

fn main() {
    let stm = Stm::new();
    stm.set_tuner(Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
        window: 1024,
        min_commits: 128,
        ..Thresholds::default()
    })));

    // Three tunable partitions, one per structure.
    let list = TLinkedList::new(stm.new_partition(PartitionConfig::named("hot-list").tunable()));
    let tree = TRbTree::new(stm.new_partition(PartitionConfig::named("cold-tree").tunable()));
    let hash = THashSet::new(
        stm.new_partition(PartitionConfig::named("warm-hash").tunable()),
        1024,
    );

    // Prefill.
    let ctx = stm.register_thread();
    for k in (0..128u64).step_by(2) {
        ctx.run(|tx| list.insert(tx, k).map(|_| ()));
    }
    for k in (0..16384u64).step_by(2) {
        ctx.run(|tx| tree.insert(tx, k).map(|_| ()));
    }
    for k in (0..4096u64).step_by(2) {
        ctx.run(|tx| hash.insert(tx, k).map(|_| ()));
    }
    drop(ctx);

    println!("initial configurations:");
    for p in stm.partitions() {
        println!("  {:>10}: {}", p.name(), label(&p));
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..8usize {
            let ctx = stm.register_thread();
            let (list, tree, hash, stop) = (&list, &tree, &hash, &stop);
            s.spawn(move || {
                let mut r = (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    match r % 10 {
                        // 40%: update-heavy ops on the tiny list. The op
                        // choice comes from high bits so it is independent
                        // of the key.
                        0..=3 => {
                            let k = (r >> 13) % 128;
                            if (r >> 33) & 1 == 0 {
                                ctx.run(|tx| list.insert(tx, k).map(|_| ()));
                            } else {
                                ctx.run(|tx| list.remove(tx, k).map(|_| ()));
                            }
                        }
                        // 40%: read-mostly ops on the big tree.
                        4..=7 => {
                            let k = (r >> 8) % 16384;
                            if (r >> 41) % 100 < 5 {
                                ctx.run(|tx| tree.insert(tx, k).map(|_| ()));
                            } else {
                                ctx.run(|tx| tree.contains(tx, k).map(|_| ()));
                            }
                        }
                        // 20%: moderate hash traffic.
                        _ => {
                            let k = (r >> 16) % 4096;
                            if (r >> 37) % 100 < 20 {
                                ctx.run(|tx| hash.insert(tx, k).map(|_| ()));
                            } else {
                                ctx.run(|tx| hash.contains(tx, k).map(|_| ()));
                            }
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs(3));
        stop.store(true, Ordering::Relaxed);
    });

    println!("\nafter 3s under the threshold tuner:");
    for p in stm.partitions() {
        let s = p.stats();
        println!(
            "  {:>10}: {}\n              commits={} aborts={} update-fraction={:.2}",
            p.name(),
            label(&p),
            s.commits,
            s.aborts(),
            s.update_commits as f64 / s.commits.max(1) as f64
        );
    }
}
