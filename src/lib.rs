//! # partstm — partitioned software transactional memory
//!
//! Facade crate for the workspace reproducing *"Automatic Data Partitioning
//! in Software Transactional Memories"* (Riegel, Fetzer, Felber — SPAA
//! 2008). Re-exports every sub-crate under one roof; see the README for a
//! tour and `DESIGN.md` for the system inventory.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `partstm-core` | the STM engine: partitions, `TVar`s, transactions, tuning hooks, access profiler |
//! | [`analysis`] | `partstm-analysis` | the compile-time automatic partitioner + online affinity analysis |
//! | [`repart`] | `partstm-repart` | the online repartitioner: live partition split/merge + `PVar` migration |
//! | [`tuning`] | `partstm-tuning` | runtime tuning policies (threshold heuristic, hill climbing) |
//! | [`structures`] | `partstm-structures` | transactional list / skip list / rb-tree / hash map / queue / bank |
//! | [`stamp`] | `partstm-stamp` | STAMP application ports: vacation, kmeans, genome, intruder |
//!
//! ```
//! use partstm::core::{PartitionConfig, Stm};
//!
//! let stm = Stm::new();
//! let part = stm.new_partition(PartitionConfig::named("demo"));
//! let x = part.tvar(1u64); // bound to its partition at allocation
//! let ctx = stm.register_thread();
//! let doubled = ctx.run(|tx| tx.modify(&x, |v| v * 2));
//! assert_eq!(doubled, 2);
//! ```

#![warn(missing_docs)]

pub use partstm_analysis as analysis;
pub use partstm_core as core;
pub use partstm_repart as repart;
pub use partstm_stamp as stamp;
pub use partstm_structures as structures;
pub use partstm_tuning as tuning;
