//! # partstm-repart — online repartitioning
//!
//! The dynamic half of the paper's loop: static analysis seeds the
//! partitioning (`partstm-analysis`), the runtime observes real access
//! behaviour (`partstm_core::profiler`), and *this crate* re-partitions
//! while the program runs — splitting conflict hot spots out of
//! overloaded partitions, merging cold co-accessed partitions back, and
//! migrating the affected [`PVar`](partstm_core::PVar)s live over the
//! quiesce-based repartition protocol
//! ([`Stm::split_partition`](partstm_core::Stm::split_partition) and
//! friends).
//!
//! ## The loop
//!
//! ```text
//!  transactions ──▶ sampled AccessProfiler (partstm-core)
//!                      │ TxSamples: (partition, bucket) touches
//!                      ▼
//!                 OnlineAnalyzer (partstm-analysis::online)
//!                      │ affinity/conflict graph → Split/Merge proposals
//!                      ▼
//!                 RepartitionController (this crate)
//!                      │ windows, scores vs abort/commit stats,
//!                      │ hysteresis + cooldown
//!                      ▼
//!                 Stm::split_partition / merge_partitions
//!                      │ flag → quiesce → rebind PVars → gen+1
//!                      ▼
//!                 PVarDirectory maps hot buckets back to variables
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use partstm_core::{Migratable, PartitionConfig, Stm};
//! use partstm_repart::{ControllerConfig, PVarDirectory, RepartitionController, StaticDirectory};
//!
//! let stm = Stm::new();
//! let accounts = stm.new_partition(PartitionConfig::named("accounts"));
//! let dir = Arc::new(StaticDirectory::new());
//! let vars: Vec<Arc<partstm_core::PVar<i64>>> =
//!     (0..64).map(|_| Arc::new(accounts.tvar(0i64))).collect();
//! for v in &vars {
//!     dir.register(Arc::clone(v) as Arc<dyn Migratable>);
//! }
//! // Drive the loop manually (or `RepartitionController::spawn` for a
//! // background daemon).
//! let controller = RepartitionController::new(&stm, dir, ControllerConfig::responsive());
//! controller.step();
//! assert_eq!(controller.windows(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod controller;
mod directory;

pub use controller::{ControllerConfig, RepartEvent, RepartitionController};
pub use directory::{
    ArenaDirectory, MoverSet, PVarDirectory, StaticDirectory, TearMovers, TearSet,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use partstm_core::{Migratable, PVar, PartitionConfig, Stm};

    /// A registry-backed bank whose accounts the controller may migrate.
    struct MovableBank {
        accounts: Vec<Arc<PVar<i64>>>,
    }

    impl MovableBank {
        fn new(stm: &Stm, n: usize, initial: i64) -> (Self, Arc<StaticDirectory>) {
            let part = stm.new_partition(PartitionConfig::named("accounts"));
            let dir = Arc::new(StaticDirectory::new());
            let accounts: Vec<Arc<PVar<i64>>> =
                (0..n).map(|_| Arc::new(part.tvar(initial))).collect();
            for a in &accounts {
                dir.register(Arc::clone(a) as Arc<dyn Migratable>);
            }
            (MovableBank { accounts }, dir)
        }

        fn total_direct(&self) -> i64 {
            self.accounts.iter().map(|a| a.load_direct()).sum()
        }
    }

    /// End-to-end: uniform traffic over a big footprint guarded by a tiny
    /// orec table aborts mostly on *aliased* conflicts; the controller
    /// must execute a live orec-table resize (not a split — there is no
    /// hot set) and the bank's total must be conserved across it.
    #[test]
    fn controller_resizes_an_aliasing_bound_partition() {
        const ACCOUNTS: usize = 4096;
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("aliased").orecs(64));
        let accounts: Vec<Arc<PVar<i64>>> =
            (0..ACCOUNTS).map(|_| Arc::new(part.tvar(100))).collect();
        let expect = ACCOUNTS as i64 * 100;
        // Nothing registered: resizes act on the partition directly, no
        // directory movers needed (and no split could execute anyway).
        let dir = Arc::new(StaticDirectory::new());
        let controller = RepartitionController::new(&stm, dir, ControllerConfig::responsive());
        let from_orecs = part.orec_count();

        let stop = Arc::new(AtomicBool::new(false));
        let mut resized = false;
        std::thread::scope(|s| {
            for t in 0..2usize {
                let ctx = stm.register_thread();
                let (accounts, stop) = (&accounts, Arc::clone(&stop));
                s.spawn(move || {
                    let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    while !stop.load(Ordering::Relaxed) {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        // Uniform transfers holding their encounter locks
                        // across a reschedule: the stranded lock aliases
                        // with ~everything in a 64-orec table.
                        let from = (r % ACCOUNTS as u64) as usize;
                        let to = ((r >> 8) % ACCOUNTS as u64) as usize;
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            std::thread::yield_now();
                            let v = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], v + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            // Uniform read-only scans aborting on the stranded locks —
            // pure aliasing pressure.
            {
                let ctx = stm.register_thread();
                let (accounts, stop) = (&accounts, Arc::clone(&stop));
                s.spawn(move || {
                    let mut x = 7u64;
                    while !stop.load(Ordering::Relaxed) {
                        ctx.run(|tx| {
                            let mut sum = 0i64;
                            for _ in 0..32 {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                sum += tx.read(&accounts[(x >> 16) as usize % ACCOUNTS])?;
                            }
                            Ok(sum)
                        });
                    }
                });
            }
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
                controller.step();
                if controller.has_resize() {
                    resized = true;
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert!(
            resized,
            "controller never resized: {:?}",
            controller.events()
        );
        let events = controller.stop();
        let (from, to, aliased_share) = events
            .iter()
            .find_map(|e| match e {
                RepartEvent::Resize {
                    from,
                    to,
                    aliased_share,
                    ..
                } => Some((*from, *to, *aliased_share)),
                _ => None,
            })
            .unwrap();
        assert_eq!(from, from_orecs, "resized from the initial table");
        assert!(
            to > from,
            "aliasing pressure grows the table: {from} -> {to}"
        );
        assert_eq!(part.orec_count(), to, "table size matches the event");
        assert!(part.resize_count() >= 1);
        assert!(
            aliased_share >= 0.5,
            "conflicts were dominated by aliasing ({aliased_share})"
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, RepartEvent::Split { .. })),
            "diffuse workload must not split: {events:?}"
        );
        let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
        assert_eq!(total, expect, "conserved sum across the live resize");
    }

    /// End-to-end: a hot cluster hammered by writers makes the controller
    /// split the account partition, conserving the bank's total.
    #[test]
    fn controller_splits_a_hot_cluster() {
        const ACCOUNTS: usize = 512;
        const HOT: usize = 4;
        let stm = Stm::new();
        let (bank, dir) = MovableBank::new(&stm, ACCOUNTS, 100);
        let expect = ACCOUNTS as i64 * 100;
        let controller = RepartitionController::new(&stm, dir, ControllerConfig::responsive());

        let stop = Arc::new(AtomicBool::new(false));
        let mut split = false;
        std::thread::scope(|s| {
            for t in 0..3usize {
                let ctx = stm.register_thread();
                let (bank, stop) = (&bank, Arc::clone(&stop));
                s.spawn(move || {
                    let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    while !stop.load(Ordering::Relaxed) {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        // 85% of transfers inside the hot cluster; a yield
                        // inside the transaction stretches the conflict
                        // window across a reschedule so contention shows
                        // even on one core.
                        let hot = r % 100 < 85;
                        let (from, to) = if hot {
                            ((r % HOT as u64) as usize, ((r >> 8) % HOT as u64) as usize)
                        } else {
                            (
                                (r % ACCOUNTS as u64) as usize,
                                ((r >> 8) % ACCOUNTS as u64) as usize,
                            )
                        };
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&bank.accounts[from])?;
                            tx.write(&bank.accounts[from], f - amt)?;
                            if hot {
                                std::thread::yield_now();
                            }
                            let t = tx.read(&bank.accounts[to])?;
                            tx.write(&bank.accounts[to], t + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            // Drive windows synchronously until a split lands.
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
                controller.step();
                if controller.has_split() {
                    split = true;
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert!(split, "controller never split: {:?}", controller.events());
        let events = controller.stop();
        let (moved, dst) = events
            .iter()
            .find_map(|e| match e {
                RepartEvent::Split { moved, dst, .. } => Some((*moved, *dst)),
                _ => None,
            })
            .unwrap();
        assert!(moved > 0, "split must migrate variables");
        assert!(
            bank.accounts.iter().any(|a| a.partition_id() == dst),
            "some account must live in the new partition"
        );
        assert_eq!(bank.total_direct(), expect, "conserved sum");
        assert!(
            stm.partitions().len() > 1,
            "split created a partition: {:?}",
            stm.partitions().len()
        );
    }

    /// End-to-end arena-level split: two hash maps share one partition, a
    /// hot-key workload hammers the small one while scans walk the big
    /// one; the controller must map the profiler's hot buckets back to
    /// the *structure* (over-representation) and migrate the whole
    /// collection — arena home, nodes, bucket roots — into a fresh
    /// partition, conserving the maps' contents.
    #[test]
    fn controller_splits_a_hot_collection() {
        use partstm_structures::THashMap;
        const HOT_KEYS: u64 = 16;
        const COLD_KEYS: u64 = 2048;
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("mixed").orecs(256));
        let hot = Arc::new(THashMap::new(Arc::clone(&part), HOT_KEYS as usize));
        let cold = Arc::new(THashMap::new(Arc::clone(&part), 512));
        {
            let ctx = stm.register_thread();
            for k in 0..HOT_KEYS {
                ctx.run(|tx| hot.put(tx, k, 100).map(|_| ()));
            }
            for k in 0..COLD_KEYS {
                ctx.run(|tx| cold.put(tx, k, 100).map(|_| ()));
            }
        }
        let dir = Arc::new(crate::ArenaDirectory::new());
        hot.attach_directory(&*dir);
        cold.attach_directory(&*dir);
        let mut cfg = ControllerConfig::responsive();
        cfg.online.split_abort_rate = 0.02;
        cfg.online.split_hot_share = 0.30;
        let controller = RepartitionController::new(&stm, dir, cfg);

        let stop = Arc::new(AtomicBool::new(false));
        let mut split = false;
        std::thread::scope(|s| {
            // Hot hammer: transfers between hot keys, holding the
            // encounter lock across a reschedule (one-core contention).
            for t in 0..2u64 {
                let ctx = stm.register_thread();
                let (hot, stop) = (Arc::clone(&hot), Arc::clone(&stop));
                s.spawn(move || {
                    let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    while !stop.load(Ordering::Relaxed) {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        let (from, to) = (r % HOT_KEYS, (r >> 8) % HOT_KEYS);
                        let amt = r % 50;
                        ctx.run(|tx| {
                            let f = hot.get(tx, from)?.unwrap_or(0);
                            hot.put(tx, from, f.wrapping_sub(amt))?;
                            std::thread::sleep(Duration::from_micros(50));
                            let v = hot.get(tx, to)?.unwrap_or(0);
                            hot.put(tx, to, v.wrapping_add(amt))?;
                            Ok(())
                        });
                    }
                });
            }
            // Cold scans aborting against stranded hot locks (the false
            // sharing the split removes).
            {
                let ctx = stm.register_thread();
                let (cold, stop) = (Arc::clone(&cold), Arc::clone(&stop));
                s.spawn(move || {
                    let mut x = 7u64;
                    while !stop.load(Ordering::Relaxed) {
                        ctx.run(|tx| {
                            let mut sum = 0u64;
                            for _ in 0..32 {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                sum = sum.wrapping_add(
                                    cold.get(tx, (x >> 16) % COLD_KEYS)?.unwrap_or(0),
                                );
                            }
                            Ok(sum)
                        });
                    }
                });
            }
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
                controller.step();
                if controller.has_split() {
                    split = true;
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert!(split, "controller never split: {:?}", controller.events());
        let events = controller.stop();
        let (dst, collections) = events
            .iter()
            .find_map(|e| match e {
                RepartEvent::Split {
                    dst, collections, ..
                } => Some((*dst, *collections)),
                _ => None,
            })
            .unwrap();
        assert!(collections >= 1, "split must carry a whole collection");
        assert_eq!(
            hot.partition_of(),
            dst,
            "hot map lives in the new partition"
        );
        assert_eq!(cold.partition_of(), part.id(), "cold map stays home");
        let total: u64 = hot
            .snapshot_pairs()
            .into_iter()
            .chain(cold.snapshot_pairs())
            .fold(0u64, |acc, (_, v)| acc.wrapping_add(v));
        assert_eq!(total, (HOT_KEYS + COLD_KEYS) * 100, "contents conserved");
    }

    /// End-to-end celebrity-key lifecycle: a skewed hammer on three keys
    /// of one big map makes the controller *tear* just the hot slot
    /// subset out — the map's home binding and the other thousands of
    /// slots stay put — and when the skew passes, the torn partition's
    /// load collapses and the controller *heals* the slots back into the
    /// origin, retiring the torn partition. Contents conserved
    /// throughout.
    #[test]
    fn controller_tears_and_heals_celebrity_keys() {
        use partstm_structures::THashMap;
        const KEYS: u64 = 4096;
        const CELEBS: u64 = 3;
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("table").orecs(256));
        let map = Arc::new(THashMap::new(Arc::clone(&part), KEYS as usize));
        {
            let ctx = stm.register_thread();
            for k in 0..KEYS {
                ctx.run(|tx| map.put(tx, k, 100).map(|_| ()));
            }
        }
        let dir = Arc::new(crate::ArenaDirectory::new());
        map.attach_directory(&*dir);
        let mut cfg = ControllerConfig::responsive();
        cfg.online.split_abort_rate = 0.02;
        cfg.online.split_hot_share = 0.30;
        let controller = RepartitionController::new(&stm, dir, cfg);

        let stop = Arc::new(AtomicBool::new(false));
        let skew = Arc::new(AtomicBool::new(true));
        let mut torn = false;
        let mut healed = false;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let ctx = stm.register_thread();
                let (map, stop, skew) = (Arc::clone(&map), Arc::clone(&stop), Arc::clone(&skew));
                s.spawn(move || {
                    let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    while !stop.load(Ordering::Relaxed) {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        if skew.load(Ordering::Relaxed) {
                            // Celebrity transfer holding its encounter
                            // lock across a reschedule (one-core
                            // contention).
                            let (from, to) = (r % CELEBS, (r >> 8) % CELEBS);
                            let amt = r % 50;
                            ctx.run(|tx| {
                                let f = map.get(tx, from)?.unwrap_or(0);
                                map.put(tx, from, f.wrapping_sub(amt))?;
                                std::thread::sleep(Duration::from_micros(50));
                                let v = map.get(tx, to)?.unwrap_or(0);
                                map.put(tx, to, v.wrapping_add(amt))?;
                                Ok(())
                            });
                        } else {
                            // The skew has passed: uniform read-only
                            // scans, almost all of them against the
                            // origin's slots.
                            let mut x = r;
                            ctx.run(|tx| {
                                let mut sum = 0u64;
                                for _ in 0..16 {
                                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                    sum = sum
                                        .wrapping_add(map.get(tx, (x >> 16) % KEYS)?.unwrap_or(0));
                                }
                                Ok(sum)
                            });
                        }
                    }
                });
            }
            // Generous deadline: the harness runs the suite's tests in
            // parallel on this one-core box, so the contention signal can
            // take a while to accumulate when neighbours steal the core.
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
                controller.step();
                if !torn && controller.has_tear() {
                    torn = true;
                    skew.store(false, Ordering::Relaxed);
                }
                if torn && controller.has_heal() {
                    healed = true;
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert!(torn, "controller never tore: {:?}", controller.events());
        assert!(healed, "controller never healed: {:?}", controller.events());
        let events = controller.stop();
        let (tear_dst, moved, total_live) = events
            .iter()
            .find_map(|e| match e {
                RepartEvent::Tear {
                    dst,
                    moved,
                    total_live,
                    ..
                } => Some((*dst, *moved, *total_live)),
                _ => None,
            })
            .unwrap();
        assert!(moved > 0, "tear must migrate slots");
        assert!(
            moved < total_live / 2,
            "tear moves a slot subset, not the structure ({moved}/{total_live})"
        );
        assert_eq!(map.partition_of(), part.id(), "map home never moves");
        let (heal_src, heal_dst, heal_moved) = events
            .iter()
            .find_map(|e| match e {
                RepartEvent::Heal {
                    src, dst, moved, ..
                } => Some((*src, *dst, *moved)),
                _ => None,
            })
            .unwrap();
        assert_eq!(heal_src, tear_dst, "heal dissolves the torn partition");
        assert_eq!(heal_dst, part.id(), "slots go home to the origin");
        assert!(heal_moved >= moved, "heal returns every torn slot");
        let total = map
            .snapshot_pairs()
            .into_iter()
            .fold(0u64, |acc, (_, v)| acc.wrapping_add(v));
        assert_eq!(total, KEYS * 100, "contents conserved across tear + heal");
    }

    /// The daemon variant starts, ticks and stops cleanly.
    #[test]
    fn daemon_spawns_and_stops() {
        let stm = Stm::new();
        let (_bank, dir) = MovableBank::new(&stm, 16, 1);
        let mut cfg = ControllerConfig::responsive();
        cfg.interval = Duration::from_millis(20);
        let controller = RepartitionController::spawn(&stm, dir, cfg);
        let ctx = stm.register_thread();
        let deadline = Instant::now() + Duration::from_secs(5);
        while controller.windows() < 3 && Instant::now() < deadline {
            // Keep some traffic flowing so windows have data to chew on.
            let x = stm.partitions()[0].tvar(0u64);
            ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(controller.windows() >= 3, "daemon never ticked");
        let _events = controller.stop();
        assert!(stm.profiler().is_none(), "stop uninstalls the profiler");
    }
}
