//! The repartition controller: the decision loop that closes the dynamic
//! partitioning cycle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use partstm_analysis::online::{OnlineAnalyzer, OnlineConfig, PartitionMeta, Proposal};
use partstm_core::cm::{self, XorShift64};
use partstm_core::telemetry::{self, codes, EventKind};
use partstm_core::{
    AccessProfiler, Partition, PartitionConfig, PartitionId, StatCounters, Stm, SwitchOutcome,
};

use crate::directory::{PVarDirectory, TearMovers, TearSet};

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Evaluation window length (daemon mode).
    pub interval: Duration,
    /// Profiler sampling period (1 in N transactions).
    pub sample_period: u64,
    /// Profiler ring capacity between windows.
    pub profiler_capacity: usize,
    /// Thresholds of the online analysis.
    pub online: OnlineConfig,
    /// Consecutive windows that must propose the same action before it
    /// executes (anti-thrash, like the tuner's hysteresis).
    pub hysteresis: u32,
    /// Windows to stay quiet after an executed (or failed) action.
    pub cooldown: u32,
    /// Exponential aging applied to the affinity graph every window.
    pub decay: f64,
    /// Hard cap on partitions this controller may create up to.
    pub max_partitions: usize,
    /// Template configuration for partitions created by splits (the name
    /// is replaced). The default keeps the engine defaults and marks the
    /// partition tunable, so the parameter tuner (when installed) adapts
    /// the hot partition from its own observed statistics — picking a
    /// contention policy here by fiat backfires on oversubscribed hosts,
    /// where spinning policies burn the cycles the lock holder needs.
    pub split_template: PartitionConfig,
    /// Largest fraction of a collection's live nodes a slot-subset tear
    /// may move. A hot set wider than this is not a celebrity-key pattern;
    /// the tear falls back to the whole-structure split execution.
    pub tear_max_fraction: f64,
    /// Consecutive quiesce-timeout failures against one partition that
    /// open its circuit breaker (see [`RepartEvent::BreakerOpen`]): while
    /// open, proposals targeting the partition are skipped instead of
    /// burning the window's single action on another doomed quiesce. Any
    /// non-timeout outcome resets the count.
    pub breaker_threshold: u32,
    /// Evaluation windows an opened circuit breaker stays open before the
    /// partition becomes eligible again.
    pub breaker_windows: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            interval: Duration::from_millis(250),
            sample_period: 16,
            profiler_capacity: 4096,
            online: OnlineConfig::default(),
            hysteresis: 2,
            cooldown: 4,
            decay: 0.5,
            max_partitions: 64,
            split_template: PartitionConfig::default().tunable(),
            tear_max_fraction: 0.25,
            breaker_threshold: 3,
            breaker_windows: 8,
        }
    }
}

impl ControllerConfig {
    /// A preset that reacts within a few hundred milliseconds — for demos,
    /// benchmarks and tests. Production deployments should prefer the
    /// defaults (or slower).
    pub fn responsive() -> Self {
        ControllerConfig {
            interval: Duration::from_millis(100),
            sample_period: 4,
            online: OnlineConfig {
                min_samples: 32,
                ..OnlineConfig::default()
            },
            hysteresis: 2,
            cooldown: 3,
            ..Default::default()
        }
    }
}

/// One executed (or attempted) structural action.
#[derive(Debug, Clone)]
pub enum RepartEvent {
    /// A hot bucket set was split out of `src` into the new `dst`.
    Split {
        /// The partition that was split.
        src: PartitionId,
        /// The newly created hot partition.
        dst: PartitionId,
        /// Variables/nodes migrated (flat vars plus collection nodes).
        moved: usize,
        /// Whole collections (arenas + roots) migrated.
        collections: usize,
        /// Sampled write share the hot set carried.
        hot_share: f64,
        /// Abort rate that triggered the split.
        abort_rate: f64,
    },
    /// `src`'s variables were folded into `dst`.
    Merge {
        /// The dissolved partition.
        src: PartitionId,
        /// The receiving partition.
        dst: PartitionId,
        /// Variables/nodes migrated (flat vars plus collection nodes).
        moved: usize,
        /// Whole collections (arenas + roots) migrated.
        collections: usize,
    },
    /// `partition`'s orec table was resized in place.
    Resize {
        /// The aliasing-bound partition.
        partition: PartitionId,
        /// Table size before the resize (records).
        from: usize,
        /// Table size after the resize (records).
        to: usize,
        /// Fraction of classified conflicts that were aliased.
        aliased_share: f64,
        /// Abort rate that triggered the resize.
        abort_rate: f64,
    },
    /// A celebrity slot subset was torn out of `src`'s collections into
    /// `dst` (fresh, or the existing torn partition for the same origin).
    Tear {
        /// The origin partition.
        src: PartitionId,
        /// The torn (hot) partition.
        dst: PartitionId,
        /// Slots migrated across all collections.
        moved: usize,
        /// Collections a subset was torn from.
        collections: usize,
        /// Combined live-node count of those collections (so reports can
        /// show `moved` is a subset, not a whole-structure migration).
        total_live: usize,
        /// Sampled write share the hot set carried.
        hot_share: f64,
        /// Abort rate that triggered the tear.
        abort_rate: f64,
    },
    /// A torn slot subset was re-merged into its origin after the skew
    /// passed.
    Heal {
        /// The dissolved torn partition.
        src: PartitionId,
        /// The origin partition the slots returned to.
        dst: PartitionId,
        /// Slots migrated back.
        moved: usize,
        /// Collections whose subsets went home.
        collections: usize,
    },
    /// An approved action could not execute (directory had no handles, or
    /// the protocol reported contention/timeout).
    Failed {
        /// `"split"`, `"merge"`, `"resize"`, `"tear"` or `"heal"`.
        action: &'static str,
        /// The partition the action targeted.
        src: PartitionId,
        /// Protocol outcome (or `Unchanged` when nothing was migratable).
        outcome: SwitchOutcome,
    },
    /// `partition`'s circuit breaker opened: `consecutive` actions against
    /// it in a row died as quiesce timeouts, so proposals targeting it are
    /// suspended for [`ControllerConfig::breaker_windows`] windows.
    BreakerOpen {
        /// The partition whose actions keep timing out.
        partition: PartitionId,
        /// Consecutive quiesce-timeout failures that tripped the breaker.
        consecutive: u32,
    },
    /// `partition`'s circuit breaker closed after its suspension window;
    /// proposals targeting it are admitted again.
    BreakerClose {
        /// The partition re-admitted to structural actions.
        partition: PartitionId,
    },
}

type StreakKey = (&'static str, PartitionId);

/// Bookkeeping for one torn partition: where its slots came from and the
/// exact sets that moved (replayed, grouped by current home, when the
/// partition heals).
struct TornRecord {
    origin: PartitionId,
    sets: Vec<TearSet>,
}

/// Circuit-breaker bookkeeping for one partition.
#[derive(Debug, Default, Clone, Copy)]
struct BreakerState {
    /// Quiesce-timeout failures in a row (reset by any other outcome).
    consecutive_timeouts: u32,
    /// Window number until which the breaker stays open (0 = closed).
    open_until_window: u64,
}

struct CtrlState {
    analyzer: OnlineAnalyzer,
    last_stats: BTreeMap<PartitionId, StatCounters>,
    streaks: BTreeMap<StreakKey, u32>,
    cooldown: u32,
    split_seq: u32,
    /// Jitter source for [`retry_contended`]'s backoff.
    rng: XorShift64,
    /// Per-partition circuit breakers (see
    /// [`ControllerConfig::breaker_threshold`]).
    breaker: BTreeMap<PartitionId, BreakerState>,
    /// Partitions this controller knows to be dead (merged-away sources,
    /// abandoned split destinations); the Stm itself never unregisters
    /// them, so the partition-cap check discounts these.
    dead: std::collections::BTreeSet<PartitionId>,
    /// Live torn partitions, keyed by the torn (destination) partition.
    /// Feeds `PartitionMeta::torn_from` so the analyzer treats them as
    /// heal-only.
    torn: BTreeMap<PartitionId, TornRecord>,
    events: Vec<RepartEvent>,
}

struct Ctrl {
    stm: Stm,
    dir: Arc<dyn PVarDirectory>,
    profiler: Arc<AccessProfiler>,
    cfg: ControllerConfig,
    state: Mutex<CtrlState>,
    windows: AtomicU64,
    stop: AtomicBool,
}

/// Background daemon that watches the profiler, scores candidate
/// split/merge plans against observed abort/commit statistics, and
/// executes approved plans live via the repartition protocol — with
/// hysteresis and cooldown so it never thrashes.
///
/// Construct with [`RepartitionController::new`] and drive it manually
/// with [`step`](RepartitionController::step) (tests, benchmarks with
/// their own scheduling), or with
/// [`RepartitionController::spawn`] to run the loop on a background
/// thread. Either way the controller installs an [`AccessProfiler`] on
/// the `Stm` at construction.
pub struct RepartitionController {
    ctrl: Arc<Ctrl>,
    handle: Option<JoinHandle<()>>,
}

impl RepartitionController {
    /// Creates a controller (profiler installed, no thread spawned).
    pub fn new(stm: &Stm, dir: Arc<dyn PVarDirectory>, cfg: ControllerConfig) -> Self {
        let profiler = Arc::new(AccessProfiler::new(
            cfg.sample_period,
            cfg.profiler_capacity,
        ));
        stm.set_profiler(Arc::clone(&profiler));
        let baseline = stm
            .partitions()
            .iter()
            .map(|p| (p.id(), p.stats()))
            .collect();
        RepartitionController {
            ctrl: Arc::new(Ctrl {
                stm: stm.clone(),
                dir,
                profiler,
                cfg,
                state: Mutex::new(CtrlState {
                    analyzer: OnlineAnalyzer::new(),
                    last_stats: baseline,
                    streaks: BTreeMap::new(),
                    cooldown: 0,
                    split_seq: 0,
                    rng: XorShift64::new(0x5EED_C0FF_EE00_0001),
                    breaker: BTreeMap::new(),
                    dead: std::collections::BTreeSet::new(),
                    torn: BTreeMap::new(),
                    events: Vec::new(),
                }),
                windows: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }),
            handle: None,
        }
    }

    /// Creates a controller and runs its window loop on a background
    /// thread until [`stop`](RepartitionController::stop) (or drop).
    pub fn spawn(stm: &Stm, dir: Arc<dyn PVarDirectory>, cfg: ControllerConfig) -> Self {
        let mut c = Self::new(stm, dir, cfg);
        let ctrl = Arc::clone(&c.ctrl);
        c.handle = Some(std::thread::spawn(move || {
            let tick = Duration::from_millis(10);
            let mut elapsed = Duration::ZERO;
            while !ctrl.stop.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= ctrl.cfg.interval {
                    elapsed = Duration::ZERO;
                    step(&ctrl);
                }
            }
        }));
        c
    }

    /// Runs one evaluation window synchronously: drain samples, fold them
    /// into the affinity graph, score proposals, execute at most one
    /// approved action.
    pub fn step(&self) {
        step(&self.ctrl);
    }

    /// Windows evaluated so far.
    pub fn windows(&self) -> u64 {
        self.ctrl.windows.load(Ordering::Relaxed)
    }

    /// The profiler this controller installed.
    pub fn profiler(&self) -> &Arc<AccessProfiler> {
        &self.ctrl.profiler
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<RepartEvent> {
        self.ctrl.state.lock().events.clone()
    }

    /// True if any split executed so far.
    pub fn has_split(&self) -> bool {
        self.ctrl
            .state
            .lock()
            .events
            .iter()
            .any(|e| matches!(e, RepartEvent::Split { .. }))
    }

    /// True if any orec-table resize executed so far.
    pub fn has_resize(&self) -> bool {
        self.ctrl
            .state
            .lock()
            .events
            .iter()
            .any(|e| matches!(e, RepartEvent::Resize { .. }))
    }

    /// True if any slot-subset tear executed so far.
    pub fn has_tear(&self) -> bool {
        self.ctrl
            .state
            .lock()
            .events
            .iter()
            .any(|e| matches!(e, RepartEvent::Tear { .. }))
    }

    /// True if any heal (torn subset re-merged) executed so far.
    pub fn has_heal(&self) -> bool {
        self.ctrl
            .state
            .lock()
            .events
            .iter()
            .any(|e| matches!(e, RepartEvent::Heal { .. }))
    }

    /// Stops the daemon (if spawned), uninstalls the profiler and returns
    /// the event log.
    pub fn stop(mut self) -> Vec<RepartEvent> {
        self.shutdown();
        let events = std::mem::take(&mut self.ctrl.state.lock().events);
        events
    }

    fn shutdown(&mut self) {
        self.ctrl.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.ctrl.stm.clear_profiler();
    }
}

impl Drop for RepartitionController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for RepartitionController {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RepartitionController")
            .field("windows", &self.windows())
            .field("daemon", &self.handle.is_some())
            .finish()
    }
}

fn find_partition(stm: &Stm, id: PartitionId) -> Option<Arc<Partition>> {
    stm.partitions().into_iter().find(|p| p.id() == id)
}

/// Partitions currently in service: the Stm never removes partitions, so
/// subtract the ones the controller knows are dead (merged-away sources,
/// abandoned split destinations) — otherwise a long split/merge history
/// would exhaust the cap with corpses and silently disable splitting.
fn live_partitions(ctrl: &Ctrl, st: &CtrlState) -> usize {
    ctrl.stm.partitions().len().saturating_sub(st.dead.len())
}

/// Retry budget of [`retry_contended`]: a `Contended` migration collides
/// with a transient flag holder (tuner switch, privatization), which
/// clears in well under eight backed-off attempts or not at all.
const CONTENDED_RETRIES: u32 = 8;

/// Retries a migration while it reports [`SwitchOutcome::Contended`],
/// with bounded randomized exponential backoff between attempts (the
/// engine's contention-manager curve — a plain `yield_now` retry storm
/// from the controller is exactly the load a contended flag holder does
/// not need). Returns the first non-`Contended` outcome, or `Contended`
/// after the budget is spent.
fn retry_contended(
    first: SwitchOutcome,
    rng: &mut XorShift64,
    mut attempt: impl FnMut() -> SwitchOutcome,
) -> SwitchOutcome {
    let mut outcome = first;
    let mut retries = 0;
    while outcome == SwitchOutcome::Contended && retries < CONTENDED_RETRIES {
        cm::backoff(retries, rng);
        outcome = attempt();
        retries += 1;
    }
    outcome
}

/// Fault-injection site
/// [`CtrlActionFail`](partstm_core::fault::FaultSite::CtrlActionFail):
/// when the installed plan fires, the approved action is reported as a
/// quiesce timeout *without* attempting the protocol (debug builds panic
/// inside a genuinely timed-out quiesce, so injecting the outcome rather
/// than the stall keeps the schedule build-independent).
fn injected_ctrl_failure(
    ctrl: &Ctrl,
    st: &mut CtrlState,
    action: &'static str,
    src: PartitionId,
) -> bool {
    if !partstm_core::fault::ctrl_action_should_fail(&ctrl.stm) {
        return false;
    }
    let ev = RepartEvent::Failed {
        action,
        src,
        outcome: SwitchOutcome::TimedOut,
    };
    emit_ctrl_action(&ev);
    st.events.push(ev);
    true
}

/// Executes a whole-structure split of `src`'s hot buckets. Returns true
/// when the window was consumed (an event — success or failure — was
/// recorded); false when the action could not even be attempted and the
/// caller should consider the next proposal.
fn exec_split(
    ctrl: &Ctrl,
    st: &mut CtrlState,
    src: PartitionId,
    buckets: &[u16],
    hot_share: f64,
    abort_rate: f64,
) -> bool {
    if live_partitions(ctrl, st) >= ctrl.cfg.max_partitions {
        return false;
    }
    let Some(src_part) = find_partition(&ctrl.stm, src) else {
        return false;
    };
    if injected_ctrl_failure(ctrl, st, "split", src) {
        return true;
    }
    let movers = ctrl.dir.collect(src, buckets);
    if movers.is_empty() {
        let ev = RepartEvent::Failed {
            action: "split",
            src,
            outcome: SwitchOutcome::Unchanged,
        };
        emit_ctrl_action(&ev);
        st.events.push(ev);
        return true;
    }
    st.split_seq += 1;
    let name = format!("{}~hot{}", src_part.name(), st.split_seq);
    let template = PartitionConfig {
        name,
        ..ctrl.cfg.split_template.clone()
    };
    let (dst, outcome) = ctrl.stm.split_partition_batch(&src_part, template, &movers);
    // A Contended migration left `dst` created but empty; retry into the
    // same destination (per the protocol docs) so a transient collision
    // with a tuner switch doesn't leak a dead partition.
    let outcome = retry_contended(outcome, &mut st.rng, || {
        ctrl.stm.migrate_batch(&movers, &dst)
    });
    let ev = match outcome {
        SwitchOutcome::Switched => RepartEvent::Split {
            src,
            dst: dst.id(),
            moved: movers.moved_count(),
            collections: movers.collections.len(),
            hot_share,
            abort_rate,
        },
        other => {
            // The destination stays registered but empty; account for
            // the corpse so it doesn't consume the partition cap.
            st.dead.insert(dst.id());
            RepartEvent::Failed {
                action: "split",
                src,
                outcome: other,
            }
        }
    };
    emit_ctrl_action(&ev);
    st.events.push(ev);
    st.analyzer.forget_partition(src);
    true
}

/// Executes a slot-subset tear: migrates just the celebrity slots in
/// `sets` out of `src` into a fresh partition — or into the existing
/// torn partition for the same origin, so repeated windows accrete into
/// one hot partition instead of fragmenting. Same return contract as
/// [`exec_split`].
fn exec_tear(
    ctrl: &Ctrl,
    st: &mut CtrlState,
    src: PartitionId,
    sets: &[TearSet],
    hot_share: f64,
    abort_rate: f64,
) -> bool {
    let Some(src_part) = find_partition(&ctrl.stm, src) else {
        return false;
    };
    if injected_ctrl_failure(ctrl, st, "tear", src) {
        return true;
    }
    let existing = st
        .torn
        .iter()
        .find(|(_, r)| r.origin == src)
        .map(|(id, _)| *id)
        .and_then(|id| find_partition(&ctrl.stm, id));
    let (dst, outcome, fresh) = match existing {
        Some(d) => {
            let o = ctrl.stm.migrate_batch(&TearMovers(sets), &d);
            (d, o, false)
        }
        None => {
            if live_partitions(ctrl, st) >= ctrl.cfg.max_partitions {
                return false;
            }
            st.split_seq += 1;
            let name = format!("{}~torn{}", src_part.name(), st.split_seq);
            let template = PartitionConfig {
                name,
                ..ctrl.cfg.split_template.clone()
            };
            let (d, o) = ctrl
                .stm
                .split_partition_batch(&src_part, template, &TearMovers(sets));
            (d, o, true)
        }
    };
    let outcome = retry_contended(outcome, &mut st.rng, || {
        ctrl.stm.migrate_batch(&TearMovers(sets), &dst)
    });
    let ev = match outcome {
        SwitchOutcome::Switched => {
            // Evict the torn slots from the reverse maps so the next
            // window does not re-propose them, and remember the sets so
            // a later heal can replay them home.
            for s in sets {
                ctrl.dir.mark_torn(s);
            }
            st.torn
                .entry(dst.id())
                .or_insert_with(|| TornRecord {
                    origin: src,
                    sets: Vec::new(),
                })
                .sets
                .extend(sets.iter().cloned());
            RepartEvent::Tear {
                src,
                dst: dst.id(),
                moved: sets.iter().map(|s| s.raw.len()).sum(),
                collections: sets.len(),
                total_live: sets.iter().map(|s| s.total_live).sum(),
                hot_share,
                abort_rate,
            }
        }
        other => {
            if fresh {
                st.dead.insert(dst.id());
            }
            RepartEvent::Failed {
                action: "tear",
                src,
                outcome: other,
            }
        }
    };
    emit_ctrl_action(&ev);
    st.events.push(ev);
    st.analyzer.forget_partition(src);
    true
}

/// Heals the torn partition `src`: replays its recorded tear sets back
/// into each collection's *current* home partition (the origin may have
/// been restructured since the tear), then retires `src`. Same return
/// contract as [`exec_split`].
fn exec_heal(ctrl: &Ctrl, st: &mut CtrlState, src: PartitionId, dst: PartitionId) -> bool {
    if !st.torn.contains_key(&src) {
        return false;
    }
    let Some(src_part) = find_partition(&ctrl.stm, src) else {
        return false;
    };
    if injected_ctrl_failure(ctrl, st, "heal", src) {
        return true;
    }
    let sets = st
        .torn
        .get(&src)
        .map(|r| r.sets.clone())
        .unwrap_or_default();
    let mut groups: Vec<(Arc<Partition>, Vec<TearSet>)> = Vec::new();
    for s in sets {
        let home = s.coll.home_partition();
        match groups.iter_mut().find(|(h, _)| h.id() == home.id()) {
            Some((_, g)) => g.push(s),
            None => groups.push((home, vec![s])),
        }
    }
    let mut moved = 0usize;
    let mut collections = 0usize;
    let mut failure = None;
    for (home, group) in &groups {
        let outcome = ctrl
            .stm
            .merge_partitions_batch(&[&src_part], home, &TearMovers(group));
        let outcome = retry_contended(outcome, &mut st.rng, || {
            ctrl.stm.migrate_batch(&TearMovers(group), home)
        });
        if outcome == SwitchOutcome::Switched {
            for s in group {
                ctrl.dir.unmark_torn(s);
            }
            moved += group.iter().map(|s| s.raw.len()).sum::<usize>();
            collections += group.len();
            if let Some(rec) = st.torn.get_mut(&src) {
                rec.sets
                    .retain(|s| !group.iter().any(|g| Arc::ptr_eq(&g.coll, &s.coll)));
            }
        } else {
            failure = Some(outcome);
        }
    }
    let ev = match failure {
        // Fully healed: the torn partition is now empty — retire it.
        None => {
            st.torn.remove(&src);
            st.dead.insert(src);
            RepartEvent::Heal {
                src,
                dst,
                moved,
                collections,
            }
        }
        // Partial heals keep the record (minus what went home) so the
        // next window can retry the remainder.
        Some(outcome) => RepartEvent::Failed {
            action: "heal",
            src,
            outcome,
        },
    };
    emit_ctrl_action(&ev);
    st.events.push(ev);
    st.analyzer.forget_partition(src);
    st.analyzer.forget_partition(dst);
    true
}

fn action_code(action: &str) -> u64 {
    match action {
        "split" => codes::ACTION_SPLIT,
        "merge" => codes::ACTION_MERGE,
        "tear" => codes::ACTION_TEAR,
        "heal" => codes::ACTION_HEAL,
        _ => codes::ACTION_RESIZE,
    }
}

/// Mirrors an executed (or failed) controller action into the telemetry
/// control timeline, alongside the `RepartEvent` kept for [`
/// RepartitionController::events`].
fn emit_ctrl_action(ev: &RepartEvent) {
    let (part, action, moved, outcome) = match ev {
        RepartEvent::Split { src, moved, .. } => (
            *src,
            codes::ACTION_SPLIT,
            *moved as u64,
            codes::OUTCOME_SWITCHED,
        ),
        RepartEvent::Merge { src, moved, .. } => (
            *src,
            codes::ACTION_MERGE,
            *moved as u64,
            codes::OUTCOME_SWITCHED,
        ),
        RepartEvent::Resize { partition, to, .. } => (
            *partition,
            codes::ACTION_RESIZE,
            *to as u64,
            codes::OUTCOME_SWITCHED,
        ),
        RepartEvent::Tear { src, moved, .. } => (
            *src,
            codes::ACTION_TEAR,
            *moved as u64,
            codes::OUTCOME_SWITCHED,
        ),
        RepartEvent::Heal { src, moved, .. } => (
            *src,
            codes::ACTION_HEAL,
            *moved as u64,
            codes::OUTCOME_SWITCHED,
        ),
        RepartEvent::Failed {
            action,
            src,
            outcome,
        } => (
            *src,
            action_code(action),
            0,
            telemetry::outcome_code(*outcome),
        ),
        // Breaker transitions carry their own event kind (emitted where
        // the breaker state changes), not a CtrlAction.
        RepartEvent::BreakerOpen { .. } | RepartEvent::BreakerClose { .. } => return,
    };
    telemetry::control_event(
        EventKind::CtrlAction,
        part.0 as u64,
        action | (moved << 8),
        outcome,
    );
}

/// Whether `id`'s circuit breaker is open as of `window`.
fn breaker_open(st: &CtrlState, id: PartitionId, window: u64) -> bool {
    st.breaker
        .get(&id)
        .is_some_and(|b| b.open_until_window > window)
}

/// Closes breakers whose suspension window has expired (emitting
/// [`RepartEvent::BreakerClose`] + a `CtrlBreaker` telemetry event).
fn tick_breakers(st: &mut CtrlState, window: u64) {
    let mut closed = Vec::new();
    for (part, b) in st.breaker.iter_mut() {
        if b.open_until_window != 0 && b.open_until_window <= window {
            b.open_until_window = 0;
            b.consecutive_timeouts = 0;
            closed.push(*part);
        }
    }
    for partition in closed {
        telemetry::control_event(EventKind::CtrlBreaker, partition.0 as u64, 0, 0);
        st.events.push(RepartEvent::BreakerClose { partition });
    }
}

/// Folds the outcome of the window's executed action (the event just
/// pushed) into the target partition's circuit breaker: quiesce timeouts
/// accumulate and trip it at [`ControllerConfig::breaker_threshold`];
/// anything else proves quiesce works and resets the count.
fn update_breaker(ctrl: &Ctrl, st: &mut CtrlState, window: u64) {
    let Some(ev) = st.events.last() else {
        return;
    };
    let (partition, timed_out) = match ev {
        RepartEvent::Failed { src, outcome, .. } => (*src, *outcome == SwitchOutcome::TimedOut),
        RepartEvent::Split { src, .. }
        | RepartEvent::Merge { src, .. }
        | RepartEvent::Tear { src, .. }
        | RepartEvent::Heal { src, .. } => (*src, false),
        RepartEvent::Resize { partition, .. } => (*partition, false),
        RepartEvent::BreakerOpen { .. } | RepartEvent::BreakerClose { .. } => return,
    };
    if !timed_out {
        if let Some(b) = st.breaker.get_mut(&partition) {
            b.consecutive_timeouts = 0;
        }
        return;
    }
    let threshold = ctrl.cfg.breaker_threshold.max(1);
    let b = st.breaker.entry(partition).or_default();
    b.consecutive_timeouts += 1;
    let consecutive = b.consecutive_timeouts;
    if consecutive >= threshold && b.open_until_window <= window {
        b.open_until_window = window + ctrl.cfg.breaker_windows.max(1) as u64;
        telemetry::control_event(
            EventKind::CtrlBreaker,
            partition.0 as u64,
            1,
            consecutive as u64,
        );
        st.events.push(RepartEvent::BreakerOpen {
            partition,
            consecutive,
        });
    }
}

/// One evaluation window.
fn step(ctrl: &Ctrl) {
    let window = ctrl.windows.fetch_add(1, Ordering::Relaxed) + 1;
    let mut st = ctrl.state.lock();
    let st = &mut *st;
    tick_breakers(st, window);

    // 1. Age the graph, fold in the window's samples.
    st.analyzer.decay(ctrl.cfg.decay);
    let samples = ctrl.profiler.drain();
    st.analyzer.observe_all(samples.iter());

    // 2. Per-partition statistics delta over the window, plus the runtime
    // metadata (current orec-table sizes) resize proposals need.
    let mut delta = BTreeMap::new();
    let mut snap = BTreeMap::new();
    let mut meta = BTreeMap::new();
    for p in ctrl.stm.partitions() {
        let s = p.stats();
        let base = st.last_stats.get(&p.id()).copied().unwrap_or_default();
        delta.insert(p.id(), s.delta(&base));
        snap.insert(p.id(), s);
        meta.insert(
            p.id(),
            PartitionMeta {
                orec_count: p.orec_count(),
                ring_depth: p.ring_depth(),
                torn_from: st.torn.get(&p.id()).map(|r| r.origin),
            },
        );
    }
    st.last_stats = snap;

    // 3. Score proposals; maintain hysteresis streaks.
    let proposals = st
        .analyzer
        .proposals_with_meta(&delta, &meta, &ctrl.cfg.online);
    let keys: Vec<StreakKey> = proposals
        .iter()
        .map(|p| match p {
            Proposal::Split { src, .. } => ("split", *src),
            Proposal::Merge { src, .. } => ("merge", *src),
            Proposal::Resize { partition, .. } => ("resize", *partition),
            Proposal::Tear { src, .. } => ("tear", *src),
            Proposal::Heal { src, .. } => ("heal", *src),
        })
        .collect();
    st.streaks.retain(|k, _| keys.contains(k));
    for k in &keys {
        *st.streaks.entry(*k).or_insert(0) += 1;
    }
    if telemetry::enabled() {
        for (p, key) in proposals.iter().zip(&keys) {
            let (part, action, score) = match p {
                Proposal::Split { src, hot_share, .. } => (*src, codes::ACTION_SPLIT, *hot_share),
                Proposal::Merge {
                    src, span_share, ..
                } => (*src, codes::ACTION_MERGE, *span_share),
                Proposal::Resize {
                    partition,
                    aliased_share,
                    ..
                } => (*partition, codes::ACTION_RESIZE, *aliased_share),
                Proposal::Tear { src, hot_share, .. } => (*src, codes::ACTION_TEAR, *hot_share),
                Proposal::Heal {
                    src, load_share, ..
                } => (*src, codes::ACTION_HEAL, *load_share),
            };
            let streak = st.streaks.get(key).copied().unwrap_or(0) as u64;
            telemetry::control_event(
                EventKind::CtrlProposal,
                part.0 as u64,
                action | (streak << 8),
                score.to_bits(),
            );
        }
    }
    if st.cooldown > 0 {
        st.cooldown -= 1;
        return;
    }

    // 4. Execute the first approved action (at most one per window).
    for (proposal, key) in proposals.iter().zip(&keys) {
        if st.streaks.get(key).copied().unwrap_or(0) < ctrl.cfg.hysteresis {
            continue;
        }
        // A privatized partition is held outside transactional service by
        // a `PrivateGuard`; every protocol action against it would only
        // bounce off the installed switch flag (Contended), burning this
        // window's single action — and a split would leak a corpse
        // destination. Skip such proposals until the guard republishes
        // (the streak survives, so the action fires on the next window).
        // The same skip doubles as the leaked-guard watchdog: every time a
        // proposal bounces off a hold, the hold's age is checked against
        // the alarm threshold.
        let privatized = |id: PartitionId| {
            find_partition(&ctrl.stm, id).is_some_and(|p| {
                let held = p.is_privatized();
                if held {
                    partstm_core::privatize::check_hold_alarm(&p);
                }
                held
            })
        };
        let (held, tripped) = match proposal {
            Proposal::Split { src, .. } | Proposal::Tear { src, .. } => {
                (privatized(*src), breaker_open(st, *src, window))
            }
            Proposal::Merge { src, dst, .. } | Proposal::Heal { src, dst, .. } => (
                privatized(*src) || privatized(*dst),
                breaker_open(st, *src, window) || breaker_open(st, *dst, window),
            ),
            Proposal::Resize { partition, .. } => {
                (privatized(*partition), breaker_open(st, *partition, window))
            }
        };
        // Both skips leave the streak alive: the proposal fires on the
        // first window after the guard republishes / the breaker closes.
        if held || tripped {
            continue;
        }
        match proposal {
            Proposal::Split {
                src,
                buckets,
                hot_share,
                abort_rate,
            } => {
                if !exec_split(ctrl, st, *src, buckets, *hot_share, *abort_rate) {
                    continue;
                }
            }
            Proposal::Tear {
                src,
                buckets,
                hot_share,
                abort_rate,
            } => {
                let sets = ctrl
                    .dir
                    .collect_tears(*src, buckets, ctrl.cfg.tear_max_fraction);
                if sets.is_empty() {
                    // Nothing tearable behind the hot buckets (flat vars,
                    // subset wider than `tear_max_fraction`, or the slots
                    // are already torn): fall back to the whole-structure
                    // split execution.
                    if !exec_split(ctrl, st, *src, buckets, *hot_share, *abort_rate) {
                        continue;
                    }
                } else if !exec_tear(ctrl, st, *src, &sets, *hot_share, *abort_rate) {
                    continue;
                }
            }
            Proposal::Heal { src, dst, .. } => {
                if !exec_heal(ctrl, st, *src, *dst) {
                    continue;
                }
            }
            Proposal::Merge { src, dst, .. } => {
                let (Some(src_part), Some(dst_part)) = (
                    find_partition(&ctrl.stm, *src),
                    find_partition(&ctrl.stm, *dst),
                ) else {
                    continue;
                };
                let movers = ctrl.dir.collect_all(*src);
                if movers.is_empty() {
                    // Nothing registered to move: executing would run a
                    // full stop-the-world quiesce to accomplish nothing,
                    // and recur every hysteresis cycle.
                    let ev = RepartEvent::Failed {
                        action: "merge",
                        src: *src,
                        outcome: SwitchOutcome::Unchanged,
                    };
                    emit_ctrl_action(&ev);
                    st.events.push(ev);
                    update_breaker(ctrl, st, window);
                    st.streaks.clear();
                    st.cooldown = ctrl.cfg.cooldown;
                    return;
                }
                let outcome = ctrl
                    .stm
                    .merge_partitions_batch(&[&src_part], &dst_part, &movers);
                let ev = match outcome {
                    SwitchOutcome::Switched => {
                        st.dead.insert(*src);
                        RepartEvent::Merge {
                            src: *src,
                            dst: *dst,
                            moved: movers.moved_count(),
                            collections: movers.collections.len(),
                        }
                    }
                    other => RepartEvent::Failed {
                        action: "merge",
                        src: *src,
                        outcome: other,
                    },
                };
                emit_ctrl_action(&ev);
                st.events.push(ev);
                st.analyzer.forget_partition(*src);
                st.analyzer.forget_partition(*dst);
            }
            Proposal::Resize {
                partition,
                new_count,
                aliased_share,
                abort_rate,
            } => {
                let Some(part) = find_partition(&ctrl.stm, *partition) else {
                    continue;
                };
                let from = part.orec_count();
                let outcome = ctrl.stm.resize_orecs(&part, *new_count);
                let ev = match outcome {
                    SwitchOutcome::Switched => RepartEvent::Resize {
                        partition: *partition,
                        from,
                        to: part.orec_count(),
                        aliased_share: *aliased_share,
                        abort_rate: *abort_rate,
                    },
                    other => RepartEvent::Failed {
                        action: "resize",
                        src: *partition,
                        outcome: other,
                    },
                };
                emit_ctrl_action(&ev);
                st.events.push(ev);
                // The affinity graph stays: buckets are independent of the
                // orec table (only the partition's *shape* is unchanged).
            }
        }
        update_breaker(ctrl, st, window);
        st.streaks.clear();
        st.cooldown = ctrl.cfg.cooldown;
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::StaticDirectory;

    #[test]
    fn retry_contended_is_bounded_and_stops_on_first_other_outcome() {
        let mut rng = XorShift64::new(7);
        let mut calls = 0u32;
        let out = retry_contended(SwitchOutcome::Contended, &mut rng, || {
            calls += 1;
            SwitchOutcome::Contended
        });
        assert_eq!(out, SwitchOutcome::Contended, "budget exhausted");
        assert_eq!(calls, CONTENDED_RETRIES);

        let mut calls = 0u32;
        let out = retry_contended(SwitchOutcome::Contended, &mut rng, || {
            calls += 1;
            if calls == 3 {
                SwitchOutcome::Switched
            } else {
                SwitchOutcome::Contended
            }
        });
        assert_eq!(out, SwitchOutcome::Switched);
        assert_eq!(calls, 3);

        // A non-Contended first outcome never invokes the closure.
        let out = retry_contended(SwitchOutcome::TimedOut, &mut rng, || unreachable!());
        assert_eq!(out, SwitchOutcome::TimedOut);
    }

    #[test]
    fn breaker_opens_after_consecutive_timeouts_and_closes_on_expiry() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("brk"));
        let id = p.id();
        let cfg = ControllerConfig {
            breaker_threshold: 3,
            breaker_windows: 2,
            ..Default::default()
        };
        let c = RepartitionController::new(&stm, Arc::new(StaticDirectory::new()), cfg);
        let ctrl = &c.ctrl;
        let mut st = ctrl.state.lock();
        let st = &mut *st;
        let fail = |st: &mut CtrlState| {
            st.events.push(RepartEvent::Failed {
                action: "split",
                src: id,
                outcome: SwitchOutcome::TimedOut,
            });
        };
        // Two timeouts: counting, still closed.
        for _ in 0..2 {
            fail(st);
            update_breaker(ctrl, st, 1);
        }
        assert!(!breaker_open(st, id, 1));
        // A non-timeout outcome resets the streak.
        st.events.push(RepartEvent::Resize {
            partition: id,
            from: 64,
            to: 128,
            aliased_share: 0.5,
            abort_rate: 0.1,
        });
        update_breaker(ctrl, st, 1);
        // Three in a row trip it for `breaker_windows` windows.
        for _ in 0..3 {
            fail(st);
            update_breaker(ctrl, st, 1);
        }
        assert!(
            matches!(
                st.events.last(),
                Some(RepartEvent::BreakerOpen { consecutive: 3, partition }) if *partition == id
            ),
            "open event missing: {:?}",
            st.events.last()
        );
        assert!(breaker_open(st, id, 1));
        assert!(breaker_open(st, id, 2));
        // Expiry closes it and re-arms the count.
        tick_breakers(st, 3);
        assert!(!breaker_open(st, id, 3));
        assert!(matches!(
            st.events.last(),
            Some(RepartEvent::BreakerClose { partition }) if *partition == id
        ));
        assert_eq!(st.breaker.get(&id).unwrap().consecutive_timeouts, 0);
    }
}
