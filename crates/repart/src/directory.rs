//! Migration directories: mapping profiler reports back to variables.
//!
//! The profiler reports hot spots as `(partition, address bucket)` pairs;
//! executing a split needs the concrete [`PVar`](partstm_core::PVar)
//! handles bound there. The runtime deliberately does not track which
//! variables live in a partition (that would put a registry write on the
//! allocation path), so the application registers the variables it wants
//! the repartitioner to be able to move — typically at allocation time,
//! next to `Partition::tvar`.

use std::sync::Arc;

use parking_lot::RwLock;
use partstm_core::profiler::bucket_of;
use partstm_core::{Migratable, PartitionId};

/// Source of migratable variable handles for the controller.
pub trait PVarDirectory: Send + Sync {
    /// Handles of registered variables currently bound to `part` whose
    /// profile bucket is in `buckets` (`buckets` is sorted).
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> Vec<Arc<dyn Migratable>>;

    /// Handles of all registered variables currently bound to `part`.
    fn collect_all(&self, part: PartitionId) -> Vec<Arc<dyn Migratable>>;
}

/// The straightforward directory: a flat registry of handles, filtered on
/// demand by current binding and bucket. Registration is cheap
/// (amortized push under a write lock); collection walks the registry —
/// fine for control-plane use.
#[derive(Default)]
pub struct StaticDirectory {
    vars: RwLock<Vec<Arc<dyn Migratable>>>,
}

impl StaticDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one variable.
    pub fn register(&self, var: Arc<dyn Migratable>) {
        self.vars.write().push(var);
    }

    /// Registers a batch of variables.
    pub fn register_all<I: IntoIterator<Item = Arc<dyn Migratable>>>(&self, vars: I) {
        self.vars.write().extend(vars);
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.vars.read().is_empty()
    }
}

impl PVarDirectory for StaticDirectory {
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> Vec<Arc<dyn Migratable>> {
        self.vars
            .read()
            .iter()
            .filter(|v| {
                v.pvar_binding().partition_id() == part
                    && buckets.binary_search(&bucket_of(v.var_addr())).is_ok()
            })
            .map(Arc::clone)
            .collect()
    }

    fn collect_all(&self, part: PartitionId) -> Vec<Arc<dyn Migratable>> {
        self.vars
            .read()
            .iter()
            .filter(|v| v.pvar_binding().partition_id() == part)
            .map(Arc::clone)
            .collect()
    }
}

impl core::fmt::Debug for StaticDirectory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StaticDirectory")
            .field("vars", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, Stm};

    #[test]
    fn directory_filters_by_binding_and_bucket() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let dir = StaticDirectory::new();
        let xs: Vec<Arc<partstm_core::PVar<u64>>> =
            (0..32).map(|i| Arc::new(a.tvar(i as u64))).collect();
        let y = Arc::new(b.tvar(7u64));
        for x in &xs {
            dir.register(Arc::clone(x) as Arc<dyn Migratable>);
        }
        dir.register(Arc::clone(&y) as Arc<dyn Migratable>);
        assert_eq!(dir.len(), 33);
        assert!(!dir.is_empty());

        assert_eq!(dir.collect_all(a.id()).len(), 32);
        assert_eq!(dir.collect_all(b.id()).len(), 1);

        // Bucket filtering returns exactly the vars hashing there.
        let mut buckets: Vec<u16> = xs
            .iter()
            .take(4)
            .map(|x| bucket_of(Migratable::var_addr(&**x)))
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        let got = dir.collect(a.id(), &buckets);
        assert!(got.len() >= 4, "at least the four seeds: {}", got.len());
        for v in &got {
            assert!(buckets.binary_search(&bucket_of(v.var_addr())).is_ok());
        }
    }
}
