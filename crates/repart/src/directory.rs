//! Migration directories: mapping profiler reports back to variables and
//! structures.
//!
//! The profiler reports hot spots as `(partition, address bucket)` pairs;
//! executing a split needs the concrete things bound there — flat
//! [`PVar`](partstm_core::PVar) handles and/or whole arena-backed
//! structures ([`MigratableCollection`]). The runtime deliberately does
//! not track which variables live in a partition (that would put a
//! registry write on the allocation path), so the application registers
//! what it wants the repartitioner to be able to move — typically at
//! allocation time, next to `Partition::tvar`, or via each structure's
//! `attach_directory`.
//!
//! Buckets the profiler flags but no registered variable or structure
//! maps to are *controller misses*: the analyzer sees heat the directory
//! cannot act on. Both directories report those through
//! [`partstm_core::rtlog`] so misconfigured registration is observable
//! instead of silently degrading the loop — rate-limited to one message
//! per [`MISS_REPORT_INTERVAL`] per directory (with a suppressed-count
//! fold), so an aliasing storm that makes the controller retry every
//! window cannot flood the log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use partstm_core::profiler::bucket_of;
use partstm_core::{
    rtlog, CollectionRegistry, Migratable, MigratableCollection, MigrationSource, PVarBinding,
    PartitionId, TearableCollection, PROFILE_BUCKETS,
};

/// Bucket-coverage set: one flag per profile bucket. A fixed array beats
/// accumulating one `u16` per registered *address* (a big structure
/// contributes thousands) and sorting them to answer 256 membership
/// questions.
type Covered = [bool; PROFILE_BUCKETS as usize];

/// What a directory hands the controller for one migration: flat variable
/// handles plus whole collections. Usable directly as the
/// [`MigrationSource`] of `Stm::split_partition_batch` /
/// `Stm::migrate_batch`.
#[derive(Default)]
pub struct MoverSet {
    /// Flat registered variables to rebind.
    pub vars: Vec<Arc<dyn Migratable>>,
    /// Whole collections (arena + roots) to rebind.
    pub collections: Vec<Arc<dyn MigratableCollection>>,
}

impl MoverSet {
    /// True when there is nothing to move.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.collections.is_empty()
    }

    /// Flat vars plus live nodes of every collection (the `moved` count
    /// reported in controller events).
    pub fn moved_count(&self) -> usize {
        self.vars.len()
            + self
                .collections
                .iter()
                .map(|c| c.live_nodes())
                .sum::<usize>()
    }
}

impl MigrationSource for MoverSet {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        // Collections first: each visits its arena home before its slots
        // (the ordering contract of `MigrationSource`).
        for c in &self.collections {
            c.for_each_binding(f);
        }
        for v in &self.vars {
            f(v.pvar_binding());
        }
    }
}

impl core::fmt::Debug for MoverSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MoverSet")
            .field("vars", &self.vars.len())
            .field("collections", &self.collections.len())
            .finish()
    }
}

/// One slot subset torn (or tearable) out of a collection: the collection
/// handle plus the raw slot tokens to move. Usable directly as the
/// [`MigrationSource`] of `Stm::split_partition_batch` /
/// `Stm::migrate_batch` — only the named slots' fields move; the
/// collection's home binding and roots stay put.
#[derive(Clone)]
pub struct TearSet {
    /// The collection the slots belong to.
    pub coll: Arc<dyn TearableCollection>,
    /// Raw slot tokens (sorted, deduplicated) to move.
    pub raw: Vec<u32>,
    /// The collection's live-node count when the set was assembled (for
    /// "subset, not the whole structure" accounting in reports).
    pub total_live: usize,
}

impl MigrationSource for TearSet {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        self.coll.for_each_slot_binding(&self.raw, f);
    }
}

impl core::fmt::Debug for TearSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TearSet")
            .field("raw", &self.raw.len())
            .field("total_live", &self.total_live)
            .finish()
    }
}

/// Several [`TearSet`]s (one per collection) as a single migration source,
/// so one quiesce window moves every collection's celebrity slots at once.
pub struct TearMovers<'a>(pub &'a [TearSet]);

impl MigrationSource for TearMovers<'_> {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        for s in self.0 {
            s.for_each_binding(f);
        }
    }
}

/// Source of movable handles for the controller.
pub trait PVarDirectory: Send + Sync {
    /// Movers currently bound to `part` whose profile buckets intersect
    /// `buckets` (`buckets` is sorted). Requested buckets that map to
    /// nothing registered are reported through `rtlog` as controller
    /// misses.
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet;

    /// All registered movers currently bound to `part`.
    fn collect_all(&self, part: PartitionId) -> MoverSet;

    /// Slot subsets of tearable collections homed at `part` whose fields
    /// land in `buckets` (sorted) — the celebrity keys. A collection only
    /// yields a set when the subset is *small*: at most `max_fraction` of
    /// its live nodes (a hot set spanning the whole structure is a split,
    /// not a tear). Already-torn slots are excluded. The default (for
    /// directories without per-slot attribution) tears nothing.
    fn collect_tears(&self, part: PartitionId, buckets: &[u16], max_fraction: f64) -> Vec<TearSet> {
        let _ = (part, buckets, max_fraction);
        Vec::new()
    }

    /// Records that `set`'s slots were torn out: their buckets must no
    /// longer be attributed to the origin collection, and they must not be
    /// proposed for tearing again until healed.
    fn mark_torn(&self, set: &TearSet) {
        let _ = set;
    }

    /// Reverses [`PVarDirectory::mark_torn`] after a heal re-merged the
    /// slots into their origin.
    fn unmark_torn(&self, set: &TearSet) {
        let _ = set;
    }
}

/// Floor between unmapped-bucket warnings per directory: roughly one per
/// controller window at the default interval, instead of one per retried
/// action (suppressed repeats are counted and folded into the next
/// message — see [`rtlog::Limiter`]).
pub const MISS_REPORT_INTERVAL: Duration = Duration::from_secs(1);

/// Counts how many of the requested `buckets` no candidate address hashes
/// into, and warns (rate-limited) through `rtlog` if any.
fn report_unmapped(
    limiter: &rtlog::Limiter,
    kind: &str,
    part: PartitionId,
    buckets: &[u16],
    covered: &Covered,
) {
    let unmapped = buckets.iter().filter(|&&b| !covered[b as usize]).count();
    if unmapped > 0 {
        limiter.warn(&format!(
            "{kind}: {unmapped} of {} hot buckets in partition {} map to \
             nothing registered; the controller cannot act on them",
            buckets.len(),
            part.0
        ));
    }
}

/// Cached bucket index of a [`StaticDirectory`]: per-bucket candidate var
/// indices (into the registry vec, which only grows) plus the registered
/// bucket-coverage set. Invalidated by registration, reused across
/// controller windows — collection cost drops from O(registered vars) per
/// window to O(requested buckets' candidates).
struct BucketIndex {
    by_bucket: Vec<Vec<u32>>,
    covered: Covered,
}

/// The straightforward directory: a flat registry of handles, filtered on
/// demand by current binding and bucket. Registration is cheap
/// (amortized push under a write lock); collection consults a cached
/// bucket index (the private `BucketIndex`) that registration invalidates.
pub struct StaticDirectory {
    vars: RwLock<Vec<Arc<dyn Migratable>>>,
    index: RwLock<Option<BucketIndex>>,
    rebuilds: AtomicU64,
    miss_limiter: rtlog::Limiter,
}

impl Default for StaticDirectory {
    fn default() -> Self {
        StaticDirectory {
            vars: RwLock::default(),
            index: RwLock::new(None),
            rebuilds: AtomicU64::new(0),
            miss_limiter: rtlog::Limiter::new(MISS_REPORT_INTERVAL),
        }
    }
}

impl StaticDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one variable.
    pub fn register(&self, var: Arc<dyn Migratable>) {
        self.vars.write().push(var);
        *self.index.write() = None;
    }

    /// Registers a batch of variables.
    pub fn register_all<I: IntoIterator<Item = Arc<dyn Migratable>>>(&self, vars: I) {
        self.vars.write().extend(vars);
        *self.index.write() = None;
    }

    /// How many times the bucket index has been (re)built. Registration
    /// invalidates it; collection windows reuse it — so this stays flat
    /// across repeated `collect` calls. Diagnostic (used by tests to pin
    /// the caching contract).
    pub fn index_rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.vars.read().is_empty()
    }

    /// Shared filter body: vars currently bound to `part` whose profile
    /// bucket is in `buckets`, via the cached [`BucketIndex`] (rebuilt
    /// here if registration invalidated it) — only the requested buckets'
    /// candidates are touched, and only their *bindings* are re-read.
    /// `covered` is OR-merged with the cached coverage set, which spans
    /// every *registered* var (not just those currently bound to `part`):
    /// the unmapped-bucket report is a registration diagnostic, and
    /// addresses don't change bucket when they migrate. Used by this
    /// directory's `collect` and by [`ArenaDirectory`]'s embedded var
    /// registry.
    fn collect_vars_into(
        &self,
        part: PartitionId,
        buckets: &[u16],
        covered: &mut Covered,
    ) -> Vec<Arc<dyn Migratable>> {
        // Lock order vars -> index, same as the (non-nested) registration
        // path. Indices stay valid across the lock because the registry
        // vec only ever grows.
        let vars = self.vars.read();
        let mut slot = self.index.write();
        let idx = slot.get_or_insert_with(|| {
            self.rebuilds.fetch_add(1, Ordering::Relaxed);
            let mut by_bucket: Vec<Vec<u32>> = vec![Vec::new(); PROFILE_BUCKETS as usize];
            let mut cov: Covered = [false; PROFILE_BUCKETS as usize];
            for (i, v) in vars.iter().enumerate() {
                let b = bucket_of(v.var_addr()) as usize;
                by_bucket[b].push(i as u32);
                cov[b] = true;
            }
            BucketIndex {
                by_bucket,
                covered: cov,
            }
        });
        for (c, cached) in covered.iter_mut().zip(idx.covered.iter()) {
            *c |= cached;
        }
        let mut out = Vec::new();
        for &b in buckets {
            for &i in &idx.by_bucket[b as usize] {
                let v = &vars[i as usize];
                if v.pvar_binding().partition_id() == part {
                    out.push(Arc::clone(v));
                }
            }
        }
        out
    }
}

impl PVarDirectory for StaticDirectory {
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet {
        let mut covered: Covered = [false; PROFILE_BUCKETS as usize];
        let vars = self.collect_vars_into(part, buckets, &mut covered);
        report_unmapped(
            &self.miss_limiter,
            "StaticDirectory",
            part,
            buckets,
            &covered,
        );
        MoverSet {
            vars,
            collections: Vec::new(),
        }
    }

    fn collect_all(&self, part: PartitionId) -> MoverSet {
        MoverSet {
            vars: self
                .vars
                .read()
                .iter()
                .filter(|v| v.pvar_binding().partition_id() == part)
                .map(Arc::clone)
                .collect(),
            collections: Vec::new(),
        }
    }
}

impl core::fmt::Debug for StaticDirectory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StaticDirectory")
            .field("vars", &self.len())
            .finish()
    }
}

/// Over-representation factor for collection selection: a collection is
/// considered hot when its live fields land in the requested buckets at
/// least this many times more often than a uniform address spray would.
const HOT_OVERREP: f64 = 2.0;

/// Cached reverse map of one registered collection: live-field count per
/// profile bucket (`hist`, torn slots excluded), total counted fields,
/// and — for tearable collections — the raw slot tokens with a field in
/// each bucket. Rebuilt lazily after registration or a tear/heal
/// invalidates it, reused across controller windows: the per-window cost
/// drops from O(live fields) per collection to O(requested buckets).
struct RevMap {
    hist: [u32; PROFILE_BUCKETS as usize],
    total: usize,
    by_bucket: Option<Vec<Vec<u32>>>,
}

/// One registered collection with its tear state and reverse-map cache.
struct CollEntry {
    coll: Arc<dyn MigratableCollection>,
    tearable: Option<Arc<dyn TearableCollection>>,
    /// Raw slot tokens currently torn out (sorted). Excluded from the
    /// reverse map so their buckets are no longer attributed here — a
    /// stale attribution would re-propose tearing already-torn slots.
    torn: Vec<u32>,
    rev: Option<RevMap>,
}

impl CollEntry {
    fn rebuild_rev(&mut self, rebuilds: &AtomicU64) {
        rebuilds.fetch_add(1, Ordering::Relaxed);
        let mut hist = [0u32; PROFILE_BUCKETS as usize];
        let mut total = 0usize;
        let by_bucket = match &self.tearable {
            Some(t) => {
                let torn = &self.torn;
                let mut bb: Vec<Vec<u32>> = vec![Vec::new(); PROFILE_BUCKETS as usize];
                t.for_each_live_slot_addr(&mut |raw, addr| {
                    if torn.binary_search(&raw).is_ok() {
                        return;
                    }
                    let b = bucket_of(addr) as usize;
                    hist[b] += 1;
                    total += 1;
                    bb[b].push(raw);
                });
                // One token per bucket per slot: a slot with two fields in
                // the same bucket is still one candidate.
                for v in &mut bb {
                    v.sort_unstable();
                    v.dedup();
                }
                Some(bb)
            }
            None => {
                self.coll.for_each_live_addr(&mut |addr| {
                    let b = bucket_of(addr) as usize;
                    hist[b] += 1;
                    total += 1;
                });
                None
            }
        };
        self.rev = Some(RevMap {
            hist,
            total,
            by_bucket,
        });
    }
}

/// Structure-aware directory: registered [`MigratableCollection`]s (each
/// structure's `attach_directory` lands here) plus an embedded flat-var
/// registry with [`StaticDirectory`] semantics.
///
/// ## Bucket-to-structure mapping
///
/// A large structure's fields spray across *all* 256 profile buckets, so
/// "has an address in a hot bucket" selects everything. What separates
/// the structure the workload is hammering from an innocent bystander is
/// *over-representation*: the share of the structure's live fields inside
/// the hot buckets, compared against the share of bucket space the hot
/// set covers (`|buckets| / 256`). The hammered structure's addresses
/// concentrate there; a bystander's match it only proportionally.
/// Collections at least 2× over-represented (`HOT_OVERREP`) are selected
/// and migrated *whole* (arena home, every slot, roots) — an arena-level
/// split.
///
/// ## Per-slot attribution (tears)
///
/// Collections registered through
/// [`CollectionRegistry::register_tearable`] additionally keep a reverse
/// map from profile buckets to live slot tokens, so
/// [`PVarDirectory::collect_tears`] can name the *individual slots* whose
/// fields land in the hot buckets — the celebrity keys — instead of the
/// whole structure. Torn slots are evicted from the reverse map
/// ([`PVarDirectory::mark_torn`]) until a heal brings them home.
pub struct ArenaDirectory {
    collections: RwLock<Vec<CollEntry>>,
    vars: StaticDirectory,
    rebuilds: AtomicU64,
    miss_limiter: rtlog::Limiter,
}

impl Default for ArenaDirectory {
    fn default() -> Self {
        ArenaDirectory {
            collections: RwLock::default(),
            vars: StaticDirectory::default(),
            rebuilds: AtomicU64::new(0),
            miss_limiter: rtlog::Limiter::new(MISS_REPORT_INTERVAL),
        }
    }
}

impl ArenaDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one flat variable (as in [`StaticDirectory::register`]).
    pub fn register(&self, var: Arc<dyn Migratable>) {
        self.vars.register(var);
    }

    /// Number of registered collections.
    pub fn collections_len(&self) -> usize {
        self.collections.read().len()
    }

    /// Number of registered flat variables.
    pub fn vars_len(&self) -> usize {
        self.vars.len()
    }

    /// How many times any collection's reverse map has been (re)built.
    /// Registration and tear/heal invalidate; collection windows reuse —
    /// so this stays flat across repeated `collect` calls. Diagnostic
    /// (used by tests to pin the caching contract).
    pub fn rev_rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Drops every cached reverse map, forcing a rebuild on the next
    /// window — for workloads whose live-slot population churns enough
    /// that the heat attribution drifts.
    pub fn refresh(&self) {
        for e in self.collections.write().iter_mut() {
            e.rev = None;
        }
    }
}

impl CollectionRegistry for ArenaDirectory {
    fn register_collection(&self, c: Arc<dyn MigratableCollection>) {
        self.collections.write().push(CollEntry {
            coll: c,
            tearable: None,
            torn: Vec::new(),
            rev: None,
        });
    }

    fn register_tearable(&self, c: Arc<dyn TearableCollection>) {
        self.collections.write().push(CollEntry {
            coll: Arc::clone(&c) as Arc<dyn MigratableCollection>,
            tearable: Some(c),
            torn: Vec::new(),
            rev: None,
        });
    }
}

impl PVarDirectory for ArenaDirectory {
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet {
        let mut covered: Covered = [false; PROFILE_BUCKETS as usize];
        let mut collections = Vec::new();
        for e in self.collections.write().iter_mut() {
            if e.coll.home_partition().id() != part {
                continue;
            }
            if e.rev.is_none() {
                e.rebuild_rev(&self.rebuilds);
            }
            let rev = e.rev.as_ref().expect("just built");
            if rev.total == 0 {
                continue;
            }
            for (c, &n) in covered.iter_mut().zip(rev.hist.iter()) {
                *c |= n > 0;
            }
            let hits: usize = buckets.iter().map(|&b| rev.hist[b as usize] as usize).sum();
            let share = hits as f64 / rev.total as f64;
            let uniform = buckets.len() as f64 / f64::from(partstm_core::PROFILE_BUCKETS);
            if share >= uniform * HOT_OVERREP {
                collections.push(Arc::clone(&e.coll));
            }
        }
        // Flat vars ride along exactly as in the static directory; its
        // unmapped-bucket report is folded into ours below.
        let vars = self.vars.collect_vars_into(part, buckets, &mut covered);
        report_unmapped(
            &self.miss_limiter,
            "ArenaDirectory",
            part,
            buckets,
            &covered,
        );
        MoverSet { vars, collections }
    }

    fn collect_all(&self, part: PartitionId) -> MoverSet {
        let mut set = self.vars.collect_all(part);
        set.collections = self
            .collections
            .read()
            .iter()
            .filter(|e| e.coll.home_partition().id() == part)
            .map(|e| Arc::clone(&e.coll))
            .collect();
        set
    }

    fn collect_tears(&self, part: PartitionId, buckets: &[u16], max_fraction: f64) -> Vec<TearSet> {
        let mut out = Vec::new();
        for e in self.collections.write().iter_mut() {
            if e.tearable.is_none() || e.coll.home_partition().id() != part {
                continue;
            }
            if e.rev.is_none() {
                e.rebuild_rev(&self.rebuilds);
            }
            let rev = e.rev.as_ref().expect("just built");
            let Some(bb) = &rev.by_bucket else { continue };
            let mut raw: Vec<u32> = buckets
                .iter()
                .flat_map(|&b| bb[b as usize].iter().copied())
                .collect();
            raw.sort_unstable();
            raw.dedup();
            let live = e.coll.live_nodes();
            // Celebrity criterion: a hot subset spanning more than
            // `max_fraction` of the structure is not a tear — moving it
            // slot-by-slot would cost more than the whole-structure split
            // the caller falls back to.
            if raw.is_empty() || (raw.len() as f64) > max_fraction * live as f64 {
                continue;
            }
            out.push(TearSet {
                coll: Arc::clone(e.tearable.as_ref().expect("checked above")),
                raw,
                total_live: live,
            });
        }
        out
    }

    fn mark_torn(&self, set: &TearSet) {
        for e in self.collections.write().iter_mut() {
            let same = e
                .tearable
                .as_ref()
                .is_some_and(|t| Arc::ptr_eq(t, &set.coll));
            if !same {
                continue;
            }
            e.torn.extend_from_slice(&set.raw);
            e.torn.sort_unstable();
            e.torn.dedup();
            e.rev = None;
            return;
        }
    }

    fn unmark_torn(&self, set: &TearSet) {
        for e in self.collections.write().iter_mut() {
            let same = e
                .tearable
                .as_ref()
                .is_some_and(|t| Arc::ptr_eq(t, &set.coll));
            if !same {
                continue;
            }
            e.torn.retain(|r| set.raw.binary_search(r).is_err());
            e.rev = None;
            return;
        }
    }
}

impl core::fmt::Debug for ArenaDirectory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArenaDirectory")
            .field("collections", &self.collections_len())
            .field("vars", &self.vars_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{Arena, PVar, PVarFields, PartitionConfig, Stm};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn directory_filters_by_binding_and_bucket() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let dir = StaticDirectory::new();
        let xs: Vec<Arc<partstm_core::PVar<u64>>> =
            (0..32).map(|i| Arc::new(a.tvar(i as u64))).collect();
        let y = Arc::new(b.tvar(7u64));
        for x in &xs {
            dir.register(Arc::clone(x) as Arc<dyn Migratable>);
        }
        dir.register(Arc::clone(&y) as Arc<dyn Migratable>);
        assert_eq!(dir.len(), 33);
        assert!(!dir.is_empty());

        assert_eq!(dir.collect_all(a.id()).vars.len(), 32);
        assert_eq!(dir.collect_all(b.id()).vars.len(), 1);

        // Bucket filtering returns exactly the vars hashing there.
        let mut buckets: Vec<u16> = xs
            .iter()
            .take(4)
            .map(|x| bucket_of(Migratable::var_addr(&**x)))
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        let got = dir.collect(a.id(), &buckets);
        assert!(
            got.vars.len() >= 4,
            "at least the four seeds: {}",
            got.vars.len()
        );
        for v in &got.vars {
            assert!(buckets.binary_search(&bucket_of(v.var_addr())).is_ok());
        }
    }

    /// Buckets nothing is registered under are reported through rtlog.
    #[test]
    fn unmapped_buckets_are_reported() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let me = std::thread::current().id();
        partstm_core::rtlog::set_handler(Some(Box::new(move |m| {
            // `warn` runs on the caller's thread: counting only our own
            // keeps concurrently running tests out of the tally.
            if std::thread::current().id() == me
                && m.contains("hot buckets")
                && m.contains("nothing registered")
            {
                h.fetch_add(1, Ordering::Relaxed);
            }
        })));

        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let x = Arc::new(a.tvar(1u64));
        let sdir = StaticDirectory::new();
        sdir.register(Arc::clone(&x) as Arc<dyn Migratable>);
        // Ask for the var's own bucket plus one that cannot be covered by
        // a single registered address.
        let own = bucket_of(Migratable::var_addr(&*x));
        let missing = if own == 0 { 1 } else { own - 1 };
        let mut buckets = vec![own, missing];
        buckets.sort_unstable();
        let got = sdir.collect(a.id(), &buckets);
        assert_eq!(got.vars.len(), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1, "one rtlog miss report");

        // Fully mapped requests stay silent.
        let got = sdir.collect(a.id(), &[own]);
        assert_eq!(got.vars.len(), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1, "no new report");

        // The arena directory reports the same way.
        let adir = ArenaDirectory::new();
        adir.register(Arc::clone(&x) as Arc<dyn Migratable>);
        let _ = adir.collect(a.id(), &buckets);
        assert_eq!(hits.load(Ordering::Relaxed), 2);

        // Miss reports are rate-limited per directory: back-to-back
        // misses inside the window fold into the first emission instead
        // of flooding the log (one per window, not one per retry).
        let sdir2 = StaticDirectory::new();
        sdir2.register(Arc::clone(&x) as Arc<dyn Migratable>);
        let _ = sdir2.collect(a.id(), &buckets);
        assert_eq!(hits.load(Ordering::Relaxed), 3, "fresh limiter emits");
        let _ = sdir2.collect(a.id(), &buckets);
        let _ = sdir2.collect(a.id(), &buckets);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            3,
            "repeats inside the window are suppressed"
        );

        partstm_core::rtlog::set_handler(None);
    }

    /// Over-representation selects the structure the buckets concentrate
    /// in and leaves proportional bystanders alone.
    #[test]
    fn arena_directory_selects_overrepresented_collections() {
        struct Probe {
            part: Arc<partstm_core::Partition>,
            arena: Arena<PVar<u64>>,
        }
        impl Probe {
            fn new(part: &Arc<partstm_core::Partition>, n: usize) -> Arc<Self> {
                let arena = Arena::new_bound(part, |p| p.tvar(0u64));
                for _ in 0..n {
                    let _ = arena.alloc_raw();
                }
                Arc::new(Probe {
                    part: Arc::clone(part),
                    arena,
                })
            }
        }
        impl MigrationSource for Probe {
            fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
                MigrationSource::for_each_binding(&self.arena, f);
            }
        }
        impl MigratableCollection for Probe {
            fn home_partition(&self) -> Arc<partstm_core::Partition> {
                Arc::clone(&self.part)
            }
            fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
                self.arena
                    .for_each_live_slot(|_, n| n.for_each_pvar(&mut |m| f(m.var_addr())));
            }
            fn live_nodes(&self) -> usize {
                self.arena.live()
            }
        }

        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("mixed"));
        let small = Probe::new(&part, 24);
        let big = Probe::new(&part, 4096);
        let dir = ArenaDirectory::new();
        dir.register_collection(Arc::clone(&small) as Arc<dyn MigratableCollection>);
        dir.register_collection(Arc::clone(&big) as Arc<dyn MigratableCollection>);
        assert_eq!(dir.collections_len(), 2);

        // Hot buckets := exactly the small structure's buckets. The small
        // structure is 100% inside them; the big one only proportionally.
        let mut buckets: Vec<u16> = Vec::new();
        small.for_each_live_addr(&mut |a| buckets.push(bucket_of(a)));
        buckets.sort_unstable();
        buckets.dedup();
        // Every requested bucket is covered by the small structure, so no
        // unmapped-bucket warning fires (keeps this test off the global
        // rtlog sink, which `unmapped_buckets_are_reported` owns).
        let got = dir.collect(part.id(), &buckets);
        assert_eq!(got.collections.len(), 1, "only the hot structure");
        assert_eq!(got.collections[0].live_nodes(), small.live_nodes());
        assert!(!got.is_empty());
        assert_eq!(got.moved_count(), 24);

        // collect_all returns both.
        assert_eq!(dir.collect_all(part.id()).collections.len(), 2);
    }

    /// Satellite of the hot-key PR: collection windows must reuse the
    /// cached bucket index / reverse map instead of rebuilding them from
    /// the full registry every tick; registration invalidates.
    #[test]
    fn indexes_are_cached_across_collect_windows() {
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("p"));

        // Flat registry: the bucket index survives repeated collects.
        let sdir = StaticDirectory::new();
        let vars: Vec<Arc<PVar<u64>>> = (0..16).map(|i| Arc::new(part.tvar(i))).collect();
        for v in &vars {
            sdir.register(Arc::clone(v) as Arc<dyn Migratable>);
        }
        assert_eq!(sdir.index_rebuilds(), 0, "built lazily");
        let b0 = bucket_of(Migratable::var_addr(&*vars[0]));
        let before = {
            let _ = sdir.collect(part.id(), &[b0]);
            sdir.index_rebuilds()
        };
        let _ = sdir.collect(part.id(), &[b0]);
        let _ = sdir.collect(part.id(), &[b0]);
        assert_eq!(sdir.index_rebuilds(), before, "windows reuse the index");
        sdir.register(Arc::new(part.tvar(99u64)) as Arc<dyn Migratable>);
        let _ = sdir.collect(part.id(), &[b0]);
        assert_eq!(sdir.index_rebuilds(), before + 1, "registration rebuilds");

        // Collection registry: the reverse map survives repeated collects
        // and is shared between `collect` and `collect_tears`.
        let adir = ArenaDirectory::new();
        let arena = Arc::new(Arena::new_bound(&part, |p| p.tvar(0u64)));
        for _ in 0..32 {
            let _ = arena.alloc_raw();
        }
        adir.register_tearable(Arc::clone(&arena) as Arc<dyn TearableCollection>);
        let mut buckets = Vec::new();
        arena.for_each_live_slot(|_, n| {
            n.for_each_pvar(&mut |m| buckets.push(bucket_of(m.var_addr())))
        });
        buckets.sort_unstable();
        buckets.dedup();
        let _ = adir.collect(part.id(), &buckets);
        assert_eq!(adir.rev_rebuilds(), 1);
        let _ = adir.collect(part.id(), &buckets);
        let _ = adir.collect_tears(part.id(), &buckets, 1.0);
        assert_eq!(adir.rev_rebuilds(), 1, "windows and tears share the map");
        adir.refresh();
        let _ = adir.collect(part.id(), &buckets);
        assert_eq!(adir.rev_rebuilds(), 2, "refresh forces a rebuild");
    }

    /// Satellite of the hot-key PR: tearing slots out must evict them from
    /// the origin's reverse map (or the controller would re-propose
    /// tearing already-torn slots forever); healing restores them.
    #[test]
    fn torn_slots_are_evicted_until_healed() {
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("p"));
        let arena = Arc::new(Arena::new_bound(&part, |p| p.tvar(0u64)));
        for _ in 0..64 {
            let _ = arena.alloc_raw();
        }
        let dir = ArenaDirectory::new();
        dir.register_tearable(Arc::clone(&arena) as Arc<dyn TearableCollection>);

        // Hot buckets := the buckets of the first four live slots.
        let mut hot: Vec<u16> = Vec::new();
        let mut seen = 0;
        arena.for_each_live_slot(|_, n| {
            if seen < 4 {
                n.for_each_pvar(&mut |m| hot.push(bucket_of(m.var_addr())));
                seen += 1;
            }
        });
        hot.sort_unstable();
        hot.dedup();

        let sets = dir.collect_tears(part.id(), &hot, 0.5);
        assert_eq!(sets.len(), 1);
        let set = &sets[0];
        assert!(set.raw.len() >= 4, "at least the four seeds: {set:?}");
        assert!(set.raw.len() <= 32, "a subset, not the structure");
        assert_eq!(set.total_live, 64);
        // The concentrated subset also over-represents the collection for
        // a whole-structure split before the tear...
        assert_eq!(dir.collect(part.id(), &hot).collections.len(), 1);

        dir.mark_torn(set);
        assert!(
            dir.collect_tears(part.id(), &hot, 0.5).is_empty(),
            "torn slots are not re-proposed"
        );
        // ...and after the tear the heat attribution is gone too.
        assert_eq!(dir.collect(part.id(), &hot).collections.len(), 0);

        dir.unmark_torn(set);
        let again = dir.collect_tears(part.id(), &hot, 0.5);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].raw, set.raw, "heal restores attribution");
    }
}
