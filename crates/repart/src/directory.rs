//! Migration directories: mapping profiler reports back to variables and
//! structures.
//!
//! The profiler reports hot spots as `(partition, address bucket)` pairs;
//! executing a split needs the concrete things bound there — flat
//! [`PVar`](partstm_core::PVar) handles and/or whole arena-backed
//! structures ([`MigratableCollection`]). The runtime deliberately does
//! not track which variables live in a partition (that would put a
//! registry write on the allocation path), so the application registers
//! what it wants the repartitioner to be able to move — typically at
//! allocation time, next to `Partition::tvar`, or via each structure's
//! `attach_directory`.
//!
//! Buckets the profiler flags but no registered variable or structure
//! maps to are *controller misses*: the analyzer sees heat the directory
//! cannot act on. Both directories report those through
//! [`partstm_core::rtlog`] so misconfigured registration is observable
//! instead of silently degrading the loop — rate-limited to one message
//! per [`MISS_REPORT_INTERVAL`] per directory (with a suppressed-count
//! fold), so an aliasing storm that makes the controller retry every
//! window cannot flood the log.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use partstm_core::profiler::bucket_of;
use partstm_core::{
    rtlog, CollectionRegistry, Migratable, MigratableCollection, MigrationSource, PVarBinding,
    PartitionId, PROFILE_BUCKETS,
};

/// Bucket-coverage set: one flag per profile bucket. A fixed array beats
/// accumulating one `u16` per registered *address* (a big structure
/// contributes thousands) and sorting them to answer 256 membership
/// questions.
type Covered = [bool; PROFILE_BUCKETS as usize];

/// What a directory hands the controller for one migration: flat variable
/// handles plus whole collections. Usable directly as the
/// [`MigrationSource`] of `Stm::split_partition_batch` /
/// `Stm::migrate_batch`.
#[derive(Default)]
pub struct MoverSet {
    /// Flat registered variables to rebind.
    pub vars: Vec<Arc<dyn Migratable>>,
    /// Whole collections (arena + roots) to rebind.
    pub collections: Vec<Arc<dyn MigratableCollection>>,
}

impl MoverSet {
    /// True when there is nothing to move.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.collections.is_empty()
    }

    /// Flat vars plus live nodes of every collection (the `moved` count
    /// reported in controller events).
    pub fn moved_count(&self) -> usize {
        self.vars.len()
            + self
                .collections
                .iter()
                .map(|c| c.live_nodes())
                .sum::<usize>()
    }
}

impl MigrationSource for MoverSet {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        // Collections first: each visits its arena home before its slots
        // (the ordering contract of `MigrationSource`).
        for c in &self.collections {
            c.for_each_binding(f);
        }
        for v in &self.vars {
            f(v.pvar_binding());
        }
    }
}

impl core::fmt::Debug for MoverSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MoverSet")
            .field("vars", &self.vars.len())
            .field("collections", &self.collections.len())
            .finish()
    }
}

/// Source of movable handles for the controller.
pub trait PVarDirectory: Send + Sync {
    /// Movers currently bound to `part` whose profile buckets intersect
    /// `buckets` (`buckets` is sorted). Requested buckets that map to
    /// nothing registered are reported through `rtlog` as controller
    /// misses.
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet;

    /// All registered movers currently bound to `part`.
    fn collect_all(&self, part: PartitionId) -> MoverSet;
}

/// Floor between unmapped-bucket warnings per directory: roughly one per
/// controller window at the default interval, instead of one per retried
/// action (suppressed repeats are counted and folded into the next
/// message — see [`rtlog::Limiter`]).
pub const MISS_REPORT_INTERVAL: Duration = Duration::from_secs(1);

/// Counts how many of the requested `buckets` no candidate address hashes
/// into, and warns (rate-limited) through `rtlog` if any.
fn report_unmapped(
    limiter: &rtlog::Limiter,
    kind: &str,
    part: PartitionId,
    buckets: &[u16],
    covered: &Covered,
) {
    let unmapped = buckets.iter().filter(|&&b| !covered[b as usize]).count();
    if unmapped > 0 {
        limiter.warn(&format!(
            "{kind}: {unmapped} of {} hot buckets in partition {} map to \
             nothing registered; the controller cannot act on them",
            buckets.len(),
            part.0
        ));
    }
}

/// The straightforward directory: a flat registry of handles, filtered on
/// demand by current binding and bucket. Registration is cheap
/// (amortized push under a write lock); collection walks the registry —
/// fine for control-plane use.
pub struct StaticDirectory {
    vars: RwLock<Vec<Arc<dyn Migratable>>>,
    miss_limiter: rtlog::Limiter,
}

impl Default for StaticDirectory {
    fn default() -> Self {
        StaticDirectory {
            vars: RwLock::default(),
            miss_limiter: rtlog::Limiter::new(MISS_REPORT_INTERVAL),
        }
    }
}

impl StaticDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one variable.
    pub fn register(&self, var: Arc<dyn Migratable>) {
        self.vars.write().push(var);
    }

    /// Registers a batch of variables.
    pub fn register_all<I: IntoIterator<Item = Arc<dyn Migratable>>>(&self, vars: I) {
        self.vars.write().extend(vars);
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.vars.read().is_empty()
    }

    /// Shared filter body: vars currently bound to `part`, each pushing
    /// its profile bucket into `covered`, kept when that bucket is in
    /// `buckets`. Used by this directory's `collect` and by
    /// [`ArenaDirectory`]'s embedded var registry.
    fn collect_vars_into(
        &self,
        part: PartitionId,
        buckets: &[u16],
        covered: &mut Covered,
    ) -> Vec<Arc<dyn Migratable>> {
        self.vars
            .read()
            .iter()
            .filter(|v| {
                if v.pvar_binding().partition_id() != part {
                    return false;
                }
                let b = bucket_of(v.var_addr());
                covered[b as usize] = true;
                buckets.binary_search(&b).is_ok()
            })
            .map(Arc::clone)
            .collect()
    }
}

impl PVarDirectory for StaticDirectory {
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet {
        let mut covered: Covered = [false; PROFILE_BUCKETS as usize];
        let vars = self.collect_vars_into(part, buckets, &mut covered);
        report_unmapped(
            &self.miss_limiter,
            "StaticDirectory",
            part,
            buckets,
            &covered,
        );
        MoverSet {
            vars,
            collections: Vec::new(),
        }
    }

    fn collect_all(&self, part: PartitionId) -> MoverSet {
        MoverSet {
            vars: self
                .vars
                .read()
                .iter()
                .filter(|v| v.pvar_binding().partition_id() == part)
                .map(Arc::clone)
                .collect(),
            collections: Vec::new(),
        }
    }
}

impl core::fmt::Debug for StaticDirectory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StaticDirectory")
            .field("vars", &self.len())
            .finish()
    }
}

/// Over-representation factor for collection selection: a collection is
/// considered hot when its live fields land in the requested buckets at
/// least this many times more often than a uniform address spray would.
const HOT_OVERREP: f64 = 2.0;

/// Structure-aware directory: registered [`MigratableCollection`]s (each
/// structure's `attach_directory` lands here) plus an embedded flat-var
/// registry with [`StaticDirectory`] semantics.
///
/// ## Bucket-to-structure mapping
///
/// A large structure's fields spray across *all* 256 profile buckets, so
/// "has an address in a hot bucket" selects everything. What separates
/// the structure the workload is hammering from an innocent bystander is
/// *over-representation*: the share of the structure's live fields inside
/// the hot buckets, compared against the share of bucket space the hot
/// set covers (`|buckets| / 256`). The hammered structure's addresses
/// concentrate there; a bystander's match it only proportionally.
/// Collections at least 2× over-represented (`HOT_OVERREP`) are selected
/// and migrated *whole* (arena home, every slot, roots) — an arena-level
/// split.
pub struct ArenaDirectory {
    collections: RwLock<Vec<Arc<dyn MigratableCollection>>>,
    vars: StaticDirectory,
    miss_limiter: rtlog::Limiter,
}

impl Default for ArenaDirectory {
    fn default() -> Self {
        ArenaDirectory {
            collections: RwLock::default(),
            vars: StaticDirectory::default(),
            miss_limiter: rtlog::Limiter::new(MISS_REPORT_INTERVAL),
        }
    }
}

impl ArenaDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one flat variable (as in [`StaticDirectory::register`]).
    pub fn register(&self, var: Arc<dyn Migratable>) {
        self.vars.register(var);
    }

    /// Number of registered collections.
    pub fn collections_len(&self) -> usize {
        self.collections.read().len()
    }

    /// Number of registered flat variables.
    pub fn vars_len(&self) -> usize {
        self.vars.len()
    }
}

impl CollectionRegistry for ArenaDirectory {
    fn register_collection(&self, c: Arc<dyn MigratableCollection>) {
        self.collections.write().push(c);
    }
}

impl PVarDirectory for ArenaDirectory {
    fn collect(&self, part: PartitionId, buckets: &[u16]) -> MoverSet {
        let mut covered: Covered = [false; PROFILE_BUCKETS as usize];
        let mut collections = Vec::new();
        for c in self.collections.read().iter() {
            if c.home_partition().id() != part {
                continue;
            }
            let mut hits = 0usize;
            let mut total = 0usize;
            c.for_each_live_addr(&mut |addr| {
                let b = bucket_of(addr);
                covered[b as usize] = true;
                total += 1;
                if buckets.binary_search(&b).is_ok() {
                    hits += 1;
                }
            });
            if total == 0 {
                continue;
            }
            let share = hits as f64 / total as f64;
            let uniform = buckets.len() as f64 / f64::from(partstm_core::PROFILE_BUCKETS);
            if share >= uniform * HOT_OVERREP {
                collections.push(Arc::clone(c));
            }
        }
        // Flat vars ride along exactly as in the static directory; its
        // unmapped-bucket report is folded into ours below.
        let vars = self.vars.collect_vars_into(part, buckets, &mut covered);
        report_unmapped(
            &self.miss_limiter,
            "ArenaDirectory",
            part,
            buckets,
            &covered,
        );
        MoverSet { vars, collections }
    }

    fn collect_all(&self, part: PartitionId) -> MoverSet {
        let mut set = self.vars.collect_all(part);
        set.collections = self
            .collections
            .read()
            .iter()
            .filter(|c| c.home_partition().id() == part)
            .map(Arc::clone)
            .collect();
        set
    }
}

impl core::fmt::Debug for ArenaDirectory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArenaDirectory")
            .field("collections", &self.collections_len())
            .field("vars", &self.vars_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{Arena, PVar, PVarFields, PartitionConfig, Stm};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn directory_filters_by_binding_and_bucket() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let dir = StaticDirectory::new();
        let xs: Vec<Arc<partstm_core::PVar<u64>>> =
            (0..32).map(|i| Arc::new(a.tvar(i as u64))).collect();
        let y = Arc::new(b.tvar(7u64));
        for x in &xs {
            dir.register(Arc::clone(x) as Arc<dyn Migratable>);
        }
        dir.register(Arc::clone(&y) as Arc<dyn Migratable>);
        assert_eq!(dir.len(), 33);
        assert!(!dir.is_empty());

        assert_eq!(dir.collect_all(a.id()).vars.len(), 32);
        assert_eq!(dir.collect_all(b.id()).vars.len(), 1);

        // Bucket filtering returns exactly the vars hashing there.
        let mut buckets: Vec<u16> = xs
            .iter()
            .take(4)
            .map(|x| bucket_of(Migratable::var_addr(&**x)))
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        let got = dir.collect(a.id(), &buckets);
        assert!(
            got.vars.len() >= 4,
            "at least the four seeds: {}",
            got.vars.len()
        );
        for v in &got.vars {
            assert!(buckets.binary_search(&bucket_of(v.var_addr())).is_ok());
        }
    }

    /// Buckets nothing is registered under are reported through rtlog.
    #[test]
    fn unmapped_buckets_are_reported() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let me = std::thread::current().id();
        partstm_core::rtlog::set_handler(Some(Box::new(move |m| {
            // `warn` runs on the caller's thread: counting only our own
            // keeps concurrently running tests out of the tally.
            if std::thread::current().id() == me
                && m.contains("hot buckets")
                && m.contains("nothing registered")
            {
                h.fetch_add(1, Ordering::Relaxed);
            }
        })));

        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let x = Arc::new(a.tvar(1u64));
        let sdir = StaticDirectory::new();
        sdir.register(Arc::clone(&x) as Arc<dyn Migratable>);
        // Ask for the var's own bucket plus one that cannot be covered by
        // a single registered address.
        let own = bucket_of(Migratable::var_addr(&*x));
        let missing = if own == 0 { 1 } else { own - 1 };
        let mut buckets = vec![own, missing];
        buckets.sort_unstable();
        let got = sdir.collect(a.id(), &buckets);
        assert_eq!(got.vars.len(), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1, "one rtlog miss report");

        // Fully mapped requests stay silent.
        let got = sdir.collect(a.id(), &[own]);
        assert_eq!(got.vars.len(), 1);
        assert_eq!(hits.load(Ordering::Relaxed), 1, "no new report");

        // The arena directory reports the same way.
        let adir = ArenaDirectory::new();
        adir.register(Arc::clone(&x) as Arc<dyn Migratable>);
        let _ = adir.collect(a.id(), &buckets);
        assert_eq!(hits.load(Ordering::Relaxed), 2);

        // Miss reports are rate-limited per directory: back-to-back
        // misses inside the window fold into the first emission instead
        // of flooding the log (one per window, not one per retry).
        let sdir2 = StaticDirectory::new();
        sdir2.register(Arc::clone(&x) as Arc<dyn Migratable>);
        let _ = sdir2.collect(a.id(), &buckets);
        assert_eq!(hits.load(Ordering::Relaxed), 3, "fresh limiter emits");
        let _ = sdir2.collect(a.id(), &buckets);
        let _ = sdir2.collect(a.id(), &buckets);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            3,
            "repeats inside the window are suppressed"
        );

        partstm_core::rtlog::set_handler(None);
    }

    /// Over-representation selects the structure the buckets concentrate
    /// in and leaves proportional bystanders alone.
    #[test]
    fn arena_directory_selects_overrepresented_collections() {
        struct Probe {
            part: Arc<partstm_core::Partition>,
            arena: Arena<PVar<u64>>,
        }
        impl Probe {
            fn new(part: &Arc<partstm_core::Partition>, n: usize) -> Arc<Self> {
                let arena = Arena::new_bound(part, |p| p.tvar(0u64));
                for _ in 0..n {
                    let _ = arena.alloc_raw();
                }
                Arc::new(Probe {
                    part: Arc::clone(part),
                    arena,
                })
            }
        }
        impl MigrationSource for Probe {
            fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
                MigrationSource::for_each_binding(&self.arena, f);
            }
        }
        impl MigratableCollection for Probe {
            fn home_partition(&self) -> Arc<partstm_core::Partition> {
                Arc::clone(&self.part)
            }
            fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
                self.arena
                    .for_each_live_slot(|_, n| n.for_each_pvar(&mut |m| f(m.var_addr())));
            }
            fn live_nodes(&self) -> usize {
                self.arena.live()
            }
        }

        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("mixed"));
        let small = Probe::new(&part, 24);
        let big = Probe::new(&part, 4096);
        let dir = ArenaDirectory::new();
        dir.register_collection(Arc::clone(&small) as Arc<dyn MigratableCollection>);
        dir.register_collection(Arc::clone(&big) as Arc<dyn MigratableCollection>);
        assert_eq!(dir.collections_len(), 2);

        // Hot buckets := exactly the small structure's buckets. The small
        // structure is 100% inside them; the big one only proportionally.
        let mut buckets: Vec<u16> = Vec::new();
        small.for_each_live_addr(&mut |a| buckets.push(bucket_of(a)));
        buckets.sort_unstable();
        buckets.dedup();
        // Every requested bucket is covered by the small structure, so no
        // unmapped-bucket warning fires (keeps this test off the global
        // rtlog sink, which `unmapped_buckets_are_reported` owns).
        let got = dir.collect(part.id(), &buckets);
        assert_eq!(got.collections.len(), 1, "only the hot structure");
        assert_eq!(got.collections[0].live_nodes(), small.live_nodes());
        assert!(!got.is_empty());
        assert_eq!(got.moved_count(), 24);

        // collect_all returns both.
        assert_eq!(dir.collect_all(part.id()).collections.len(), 2);
    }
}
