//! The global version clock (TL2/TinySTM style).
//!
//! A single monotonically increasing counter orders all update commits.
//! Transactions snapshot it at start (`rv`, the read version) and advance it
//! at commit (`wv`, the write version). Invisible reads are consistent iff
//! the orec version is `<= rv`; the lazy-snapshot-algorithm extension lets a
//! transaction move `rv` forward mid-flight after revalidating its reads.

use core::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Global commit-ordering clock.
#[derive(Debug, Default)]
pub struct GlobalClock {
    value: CachePadded<AtomicU64>,
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time. Acquire pairs with [`GlobalClock::advance`]'s AcqRel so
    /// that a transaction that reads time `t` also observes every write-back
    /// published by commits at times `<= t`.
    #[inline(always)]
    pub fn now(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Reserves the next commit timestamp (returns the *new* time).
    #[inline(always)]
    pub fn advance(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_advances_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..10_000).map(|_| c.advance()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 80_000, "timestamps must be unique");
        assert_eq!(c.now(), 80_000);
    }
}
