//! Sampled access profiling: the measurement half of the dynamic
//! repartitioning loop.
//!
//! The paper's full system is a *loop* — static analysis seeds the
//! partitioning, then the runtime observes real access behaviour and
//! re-partitions while the program runs. This module provides the
//! observation side: a cheap, sampled recorder of which partitions (and
//! which *address buckets* within them) each transaction touches.
//!
//! ## Cost model
//!
//! Profiling piggybacks on the per-attempt partition-view table the engine
//! already maintains (see the `txn` module docs). Sampling is decided once
//! per attempt from the thread's transaction serial (`serial % period ==
//! 0` — one relaxed load plus a branch when profiling is off); only
//! *sampled* attempts pay for address recording (a `Vec` push per access),
//! and only sampled *commits* are folded into a [`TxSample`] and pushed
//! into the profiler's bounded ring. The fast path of the other `period -
//! 1` transactions is untouched.
//!
//! ## Buckets
//!
//! Individual variables are too numerous to report, so addresses are
//! hashed into [`PROFILE_BUCKETS`] stable buckets ([`bucket_of`]). The
//! bucket function is independent of any partition's orec table, so a
//! migration directory can compute the same bucket for a candidate
//! [`PVar`](crate::PVar) (via
//! [`Migratable::var_addr`](crate::pvar::Migratable::var_addr)) and map a
//! "bucket 17 of partition 3 is hot" report back to the concrete variables
//! to migrate.

use core::sync::atomic::{AtomicU64, Ordering};
use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::partition::PartitionId;

/// Number of address buckets the profiler distinguishes (per partition).
pub const PROFILE_BUCKETS: u16 = 256;

/// Stable address→bucket mapping shared by the profiler and migration
/// directories. Independent of partitions, granularities and orec tables.
#[inline(always)]
pub fn bucket_of(addr: usize) -> u16 {
    // Fibonacci hash of the word index; top bits select one of 256 buckets.
    ((((addr as u64) >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 56) as u16
}

/// Access counts of one address bucket within one sampled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketTouch {
    /// Bucket index (`bucket_of` of the accessed addresses).
    pub bucket: u16,
    /// Transactional reads that landed in the bucket.
    pub reads: u32,
    /// Transactional writes that landed in the bucket.
    pub writes: u32,
}

/// One partition's slice of a sampled transaction.
#[derive(Debug, Clone)]
pub struct SampleTouch {
    /// The touched partition.
    pub partition: PartitionId,
    /// Reads served from the partition.
    pub reads: u32,
    /// Writes into the partition.
    pub writes: u32,
    /// Per-bucket breakdown (sorted by bucket, merged).
    pub buckets: Vec<BucketTouch>,
}

/// One sampled, committed transaction.
#[derive(Debug, Clone)]
pub struct TxSample {
    /// Failed attempts the transaction burned before this commit (its
    /// conflict pressure at the moment of sampling).
    pub failed_attempts: u32,
    /// Partitions touched, with per-bucket access counts.
    pub touched: Vec<SampleTouch>,
}

impl TxSample {
    /// True if the transaction touched more than one partition.
    pub fn spans_partitions(&self) -> bool {
        self.touched.len() > 1
    }
}

/// Bounded sink of [`TxSample`]s, installed via
/// [`Stm::set_profiler`](crate::Stm::set_profiler) and drained by the
/// online analyzer / repartition controller.
#[derive(Debug)]
pub struct AccessProfiler {
    period: u64,
    capacity: usize,
    ring: Mutex<VecDeque<TxSample>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl AccessProfiler {
    /// A profiler sampling one in `period` transactions (per thread),
    /// retaining at most `capacity` samples between drains (oldest samples
    /// are dropped first and counted in [`AccessProfiler::dropped`]).
    pub fn new(period: u64, capacity: usize) -> Self {
        AccessProfiler {
            period: period.max(1),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The sampling period (1 in `period` transactions).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Takes all buffered samples, oldest first.
    pub fn drain(&self) -> Vec<TxSample> {
        self.ring.lock().drain(..).collect()
    }

    /// Samples recorded since creation (including later-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Samples dropped because the ring was full between drains.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Engine-side: push one sampled commit.
    pub(crate) fn record(&self, sample: TxSample) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_function_is_stable_and_in_range() {
        let a = bucket_of(0x7f00_1234_5678);
        assert_eq!(a, bucket_of(0x7f00_1234_5678), "deterministic");
        for i in 0..4096usize {
            assert!(bucket_of(i * 8) < PROFILE_BUCKETS);
        }
        // Neighbouring words spread across buckets.
        let distinct: std::collections::HashSet<u16> =
            (0..256usize).map(|i| bucket_of(0x1000 + i * 8)).collect();
        assert!(distinct.len() > 100, "only {} buckets", distinct.len());
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let p = AccessProfiler::new(1, 2);
        for i in 0..5u32 {
            p.record(TxSample {
                failed_attempts: i,
                touched: Vec::new(),
            });
        }
        assert_eq!(p.recorded(), 5);
        assert_eq!(p.dropped(), 3);
        let got = p.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].failed_attempts, 3, "oldest surviving sample");
        assert!(p.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn sample_span_helper() {
        let one = TxSample {
            failed_attempts: 0,
            touched: vec![SampleTouch {
                partition: PartitionId(0),
                reads: 1,
                writes: 0,
                buckets: vec![],
            }],
        };
        assert!(!one.spans_partitions());
    }
}
