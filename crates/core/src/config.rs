//! Per-partition concurrency-control configuration.
//!
//! This is the heart of the paper's approach: every partition carries its own
//! STM configuration — read visibility, lock-acquisition time, conflict
//! detection granularity and contention-management policy — and the runtime
//! tuner may change the dynamic parts while the application runs.
//!
//! The dynamic configuration is packed into a single `AtomicU64` (the
//! *config word*) so transactions can snapshot it with one load on first
//! touch of a partition. Layout:
//!
//! ```text
//! bits  0     read mode        (0 = invisible, 1 = visible)
//! bits  1     acquire mode     (0 = encounter-time, 1 = commit-time)
//! bits  2-3   granularity kind (0 = word, 1 = stripe, 2 = partition lock)
//! bits  8-13  stripe shift     (log2 bytes per stripe, for Stripe)
//! bits 16     cm kind          (0 = suicide+backoff, 1 = delay-then-abort)
//! bits 17     reader arb       (0 = writer-wins-kill, 1 = reader-wins)
//! bit  30     privatized flag  (the partition is privately held; always
//!                               set together with the switching flag)
//! bit  31     switching flag   (a reconfiguration is in progress)
//! bits 32-63  generation       (incremented on every switch)
//! ```

/// How readers announce themselves (the classic STM design axis the paper
/// tunes per partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// Readers leave no trace; consistency is ensured by timestamp
    /// validation with lazy snapshot extension (LSA). Cheap reads, but
    /// writers cannot detect readers, so read-write conflicts surface late.
    Invisible,
    /// Readers set a per-orec bitmap bit. Writers detect readers eagerly and
    /// arbitration (kill or yield) resolves the conflict. More expensive
    /// reads, but profitable for update-heavy, contended partitions.
    Visible,
}

/// When writers acquire ownership records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcquireMode {
    /// Encounter-time locking (TinySTM default): acquire at first write.
    /// Detects write-write conflicts early.
    Encounter,
    /// Commit-time locking (TL2 style): buffer writes, acquire during
    /// commit. Shorter lock hold times, later conflict detection.
    Commit,
}

/// Conflict-detection granularity: how addresses map to ownership records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One orec per word (finest; subject to the table's hash aliasing).
    Word,
    /// One orec per `2^shift`-byte stripe. With arena-allocated nodes whose
    /// size matches the stripe this approximates per-object detection.
    Stripe {
        /// log2 of the stripe size in bytes (3..=20).
        shift: u8,
    },
    /// A single orec for the whole partition (coarsest: the partition
    /// degenerates into one versioned lock — optimal under extreme
    /// contention, terrible otherwise).
    PartitionLock,
}

/// Contention management on locked-orec conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmPolicy {
    /// Abort immediately and back off exponentially (randomized).
    SuicideBackoff,
    /// Spin a bounded number of iterations waiting for the lock to be
    /// released, then abort.
    DelayThenAbort,
}

/// Arbitration between a writer and visible readers of an orec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReaderArb {
    /// The writer kills the visible readers and waits for their bits to
    /// clear (TinySTM visible-read behaviour).
    WriterWinsKill,
    /// The writer aborts itself, favouring readers.
    ReaderWins,
}

/// Smallest orec table a resize may install. A floor of 8 keeps the
/// degenerate single-orec table reachable only by explicit construction
/// (`PartitionConfig::orecs(1)`), never by a runtime controller decision.
pub const MIN_ORECS: usize = 8;

/// Largest orec table a resize may install (2^20 records × 64 B = 64 MiB;
/// past that, aliasing pressure is better answered by a partition split).
pub const MAX_ORECS: usize = 1 << 20;

/// Smallest per-orec version-ring depth. One slot still gives snapshot
/// readers the single most recent overwritten value, which covers the
/// common "reader raced one commit" case; depth 0 would force every
/// protected publication into the overflow list.
pub const MIN_RING_DEPTH: usize = 1;

/// Largest per-orec version-ring depth a configuration may request. Rings
/// are allocated as `orec_count × depth` slots of 32 bytes; at depth 64 a
/// default 2048-orec table already costs 4 MiB — beyond that, history
/// should come from a coarser table, not a deeper ring.
pub const MAX_RING_DEPTH: usize = 64;

/// Full (user-facing) partition configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Human-readable partition name (used in reports).
    pub name: String,
    /// Initial number of ownership records (rounded up to a power of
    /// two). No longer fixed for the partition's lifetime: the runtime may
    /// grow or shrink the table in place via
    /// [`Stm::resize_orecs`](crate::Stm::resize_orecs) (clamped to
    /// [`MIN_ORECS`]..=[`MAX_ORECS`]).
    pub orec_count: usize,
    /// Initial read visibility.
    pub read_mode: ReadMode,
    /// Initial lock-acquisition time.
    pub acquire: AcquireMode,
    /// Initial conflict-detection granularity.
    pub granularity: Granularity,
    /// Contention-management policy.
    pub cm: CmPolicy,
    /// Writer-vs-visible-readers arbitration.
    pub reader_arb: ReaderArb,
    /// Per-orec version-ring depth: how many overwritten `(address, value,
    /// overwritten-at)` records each orec retains for the snapshot read
    /// path (see [`crate::snapshot`]). Clamped to
    /// [`MIN_RING_DEPTH`]..=[`MAX_RING_DEPTH`]. Memory cost is
    /// `orec_count × ring_depth × 32` bytes per partition.
    pub ring_depth: usize,
    /// Whether the runtime tuner may reconfigure this partition.
    pub tune: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            name: String::new(),
            orec_count: 1 << 11,
            read_mode: ReadMode::Invisible,
            acquire: AcquireMode::Encounter,
            granularity: Granularity::Word,
            cm: CmPolicy::SuicideBackoff,
            reader_arb: ReaderArb::WriterWinsKill,
            ring_depth: 4,
            tune: false,
        }
    }
}

impl PartitionConfig {
    /// Start from defaults with a name.
    pub fn named(name: impl Into<String>) -> Self {
        PartitionConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder-style setter for [`ReadMode`].
    pub fn read_mode(mut self, m: ReadMode) -> Self {
        self.read_mode = m;
        self
    }

    /// Builder-style setter for [`AcquireMode`].
    pub fn acquire(mut self, a: AcquireMode) -> Self {
        self.acquire = a;
        self
    }

    /// Builder-style setter for [`Granularity`].
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Builder-style setter for the orec table size.
    pub fn orecs(mut self, n: usize) -> Self {
        self.orec_count = n;
        self
    }

    /// Builder-style setter for [`CmPolicy`].
    pub fn cm(mut self, cm: CmPolicy) -> Self {
        self.cm = cm;
        self
    }

    /// Builder-style setter for [`ReaderArb`].
    pub fn reader_arb(mut self, arb: ReaderArb) -> Self {
        self.reader_arb = arb;
        self
    }

    /// Builder-style setter for the per-orec version-ring depth (clamped
    /// to [`MIN_RING_DEPTH`]..=[`MAX_RING_DEPTH`] at partition creation).
    pub fn ring(mut self, depth: usize) -> Self {
        self.ring_depth = depth;
        self
    }

    /// Enable runtime tuning for this partition.
    pub fn tunable(mut self) -> Self {
        self.tune = true;
        self
    }
}

/// The dynamic (tunable) slice of a partition configuration — everything
/// encoded in the config word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynConfig {
    /// Read visibility.
    pub read_mode: ReadMode,
    /// Lock-acquisition time.
    pub acquire: AcquireMode,
    /// Conflict-detection granularity.
    pub granularity: Granularity,
    /// Contention management.
    pub cm: CmPolicy,
    /// Reader/writer arbitration.
    pub reader_arb: ReaderArb,
}

impl From<&PartitionConfig> for DynConfig {
    fn from(c: &PartitionConfig) -> Self {
        DynConfig {
            read_mode: c.read_mode,
            acquire: c.acquire,
            granularity: c.granularity,
            cm: c.cm,
            reader_arb: c.reader_arb,
        }
    }
}

const READ_MODE_BIT: u64 = 1 << 0;
const ACQUIRE_BIT: u64 = 1 << 1;
const GRAN_SHIFT: u32 = 2;
const GRAN_MASK: u64 = 0b11 << GRAN_SHIFT;
const STRIPE_SHIFT: u32 = 8;
const STRIPE_MASK: u64 = 0x3f << STRIPE_SHIFT;
const CM_BIT: u64 = 1 << 16;
const ARB_BIT: u64 = 1 << 17;
/// Switching flag bit (public: the transaction path tests it on touch).
pub const SWITCHING_BIT: u64 = 1 << 31;
/// Privatized flag bit: the partition is held by a
/// [`PrivateGuard`](crate::PrivateGuard) and every transactional attempt
/// must abort-and-back-off. Only ever set *together with*
/// [`SWITCHING_BIT`] — the switching flag carries the mutual exclusion
/// (transactions and other control-plane operations already honour it);
/// this bit merely classifies the hold so collisions can be counted
/// separately and observers can tell a privatization from a switch.
pub const PRIVATIZED_BIT: u64 = 1 << 30;
const GEN_SHIFT: u32 = 32;

/// Encodes a [`DynConfig`] plus generation into a config word (switching
/// flag clear).
pub fn encode(cfg: DynConfig, generation: u32) -> u64 {
    let mut w = 0u64;
    if cfg.read_mode == ReadMode::Visible {
        w |= READ_MODE_BIT;
    }
    if cfg.acquire == AcquireMode::Commit {
        w |= ACQUIRE_BIT;
    }
    match cfg.granularity {
        Granularity::Word => {}
        Granularity::Stripe { shift } => {
            w |= 1 << GRAN_SHIFT;
            w |= ((shift as u64) << STRIPE_SHIFT) & STRIPE_MASK;
        }
        Granularity::PartitionLock => w |= 2 << GRAN_SHIFT,
    }
    if cfg.cm == CmPolicy::DelayThenAbort {
        w |= CM_BIT;
    }
    if cfg.reader_arb == ReaderArb::ReaderWins {
        w |= ARB_BIT;
    }
    w |= (generation as u64) << GEN_SHIFT;
    w
}

/// Decodes a config word (ignores the switching flag).
pub fn decode(word: u64) -> DynConfig {
    let granularity = match (word & GRAN_MASK) >> GRAN_SHIFT {
        0 => Granularity::Word,
        1 => Granularity::Stripe {
            shift: ((word & STRIPE_MASK) >> STRIPE_SHIFT) as u8,
        },
        _ => Granularity::PartitionLock,
    };
    DynConfig {
        read_mode: if word & READ_MODE_BIT != 0 {
            ReadMode::Visible
        } else {
            ReadMode::Invisible
        },
        acquire: if word & ACQUIRE_BIT != 0 {
            AcquireMode::Commit
        } else {
            AcquireMode::Encounter
        },
        granularity,
        cm: if word & CM_BIT != 0 {
            CmPolicy::DelayThenAbort
        } else {
            CmPolicy::SuicideBackoff
        },
        reader_arb: if word & ARB_BIT != 0 {
            ReaderArb::ReaderWins
        } else {
            ReaderArb::WriterWinsKill
        },
    }
}

/// Extracts the generation counter from a config word.
#[inline(always)]
pub fn generation(word: u64) -> u32 {
    (word >> GEN_SHIFT) as u32
}

/// Returns `true` if the switching flag is set.
#[inline(always)]
pub fn is_switching(word: u64) -> bool {
    word & SWITCHING_BIT != 0
}

/// Returns `true` if the privatized flag is set (the partition is held by
/// a [`PrivateGuard`](crate::PrivateGuard)).
#[inline(always)]
pub fn is_privatized(word: u64) -> bool {
    word & PRIVATIZED_BIT != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_dyn_configs() -> Vec<DynConfig> {
        let mut v = Vec::new();
        for rm in [ReadMode::Invisible, ReadMode::Visible] {
            for aq in [AcquireMode::Encounter, AcquireMode::Commit] {
                for g in [
                    Granularity::Word,
                    Granularity::Stripe { shift: 3 },
                    Granularity::Stripe { shift: 8 },
                    Granularity::Stripe { shift: 20 },
                    Granularity::PartitionLock,
                ] {
                    for cm in [CmPolicy::SuicideBackoff, CmPolicy::DelayThenAbort] {
                        for arb in [ReaderArb::WriterWinsKill, ReaderArb::ReaderWins] {
                            v.push(DynConfig {
                                read_mode: rm,
                                acquire: aq,
                                granularity: g,
                                cm,
                                reader_arb: arb,
                            });
                        }
                    }
                }
            }
        }
        v
    }

    #[test]
    fn config_word_roundtrips_all_combinations() {
        for cfg in all_dyn_configs() {
            for generation_in in [0u32, 1, 77, u32::MAX] {
                let w = encode(cfg, generation_in);
                assert_eq!(decode(w), cfg, "cfg {cfg:?}");
                assert_eq!(generation(w), generation_in);
                assert!(!is_switching(w));
                assert!(is_switching(w | SWITCHING_BIT));
                assert_eq!(decode(w | SWITCHING_BIT), cfg, "switching bit is ignored");
                assert!(!is_privatized(w));
                assert!(is_privatized(w | PRIVATIZED_BIT));
                assert_eq!(
                    decode(w | SWITCHING_BIT | PRIVATIZED_BIT),
                    cfg,
                    "privatized bit is ignored by decode"
                );
                assert_eq!(
                    generation(w | SWITCHING_BIT | PRIVATIZED_BIT),
                    generation_in
                );
            }
        }
    }

    #[test]
    fn default_config_is_tinystm_like() {
        let c = PartitionConfig::default();
        assert_eq!(c.read_mode, ReadMode::Invisible);
        assert_eq!(c.acquire, AcquireMode::Encounter);
        assert_eq!(c.granularity, Granularity::Word);
        assert_eq!(c.orec_count, 2048);
        assert_eq!(c.ring_depth, 4);
        assert!(!c.tune);
    }

    #[test]
    fn builder_setters_compose() {
        let c = PartitionConfig::named("tree")
            .read_mode(ReadMode::Visible)
            .acquire(AcquireMode::Commit)
            .granularity(Granularity::Stripe { shift: 6 })
            .orecs(128)
            .cm(CmPolicy::DelayThenAbort)
            .reader_arb(ReaderArb::ReaderWins)
            .ring(8)
            .tunable();
        assert_eq!(c.name, "tree");
        assert_eq!(c.read_mode, ReadMode::Visible);
        assert_eq!(c.acquire, AcquireMode::Commit);
        assert_eq!(c.granularity, Granularity::Stripe { shift: 6 });
        assert_eq!(c.orec_count, 128);
        assert_eq!(c.cm, CmPolicy::DelayThenAbort);
        assert_eq!(c.reader_arb, ReaderArb::ReaderWins);
        assert_eq!(c.ring_depth, 8);
        assert!(c.tune);
    }

    #[test]
    fn generation_does_not_bleed_into_flags() {
        let cfg = DynConfig::from(&PartitionConfig::default());
        let w = encode(cfg, u32::MAX);
        assert!(
            !is_switching(w),
            "generation must not set the switching bit"
        );
        assert!(
            !is_privatized(w),
            "generation must not set the privatized bit"
        );
        assert_eq!(decode(w), cfg);
    }
}
