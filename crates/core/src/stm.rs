//! The STM runtime: thread registration, partition creation and the
//! configuration-switch (quiesce) protocol.

use core::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, RwLock};

use crate::clock::GlobalClock;
use crate::config::{self, DynConfig, PartitionConfig};
use crate::partition::{Partition, PartitionId};
use crate::profiler::AccessProfiler;
use crate::rtlog;
use crate::telemetry::{self, EventKind};
use crate::tuner::TuningPolicy;
use crate::txn::TxScratch;

/// Upper bound on registered threads (reader bitmaps are 64 bits wide).
pub const MAX_THREADS: usize = 64;

/// Default for how long a configuration switch or repartition may wait for
/// quiescence before the runtime assumes a stuck transaction and gives up
/// (a healthy workload quiesces in microseconds). Giving up rolls the
/// switch back and reports [`SwitchOutcome::TimedOut`]; under
/// `debug_assertions` it panics instead, as a stuck transaction is a bug
/// worth a backtrace. Override per runtime with
/// [`StmBuilder::quiesce_timeout`].
pub(crate) const QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

/// Result of [`Stm::switch_partition`], [`Stm::resize_orecs`] and of the
/// repartition entry points ([`Stm::migrate_pvars`],
/// [`Stm::split_partition`], [`Stm::merge_partitions`]).
///
/// Marked `#[must_use]`: a dropped outcome silently ignores a rolled-back
/// or contended switch — callers must at least decide that they don't care
/// (`let _ = ...`).
#[must_use = "a switch may be rolled back (Contended/TimedOut); check or explicitly ignore the outcome"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOutcome {
    /// The new configuration was installed (generation bumped).
    Switched,
    /// The requested configuration equals the current one; nothing to do.
    Unchanged,
    /// Another switch of the same partition is in progress; retryable.
    Contended,
    /// Quiescence was not reached within the timeout: the switch was rolled
    /// back (flag cleared, configuration untouched) and may be retried. A
    /// transaction is likely stuck or extremely long-running; the event is
    /// logged to stderr. Release builds only — debug builds panic here.
    TimedOut,
}

impl SwitchOutcome {
    /// `true` iff the new configuration was installed.
    #[inline]
    pub fn switched(self) -> bool {
        matches!(self, SwitchOutcome::Switched)
    }
}

/// Per-thread slot, visible to all threads (for kills and quiescence).
#[derive(Debug, Default)]
pub(crate) struct ThreadSlot {
    /// Attempt sequence: even = outside any transaction, odd = inside.
    pub(crate) seq: AtomicU64,
    /// Value of the global switch epoch when the current attempt began.
    pub(crate) start_epoch: AtomicU64,
    /// Serial number of the thread's current transaction attempt.
    pub(crate) serial: AtomicU64,
    /// Kill request: the serial of the attempt that should abort (0 = none).
    pub(crate) kill: AtomicU64,
    /// Snapshot timestamp pinned by an in-flight read-only transaction on
    /// this thread (`u64::MAX` = none pinned). Published *before* the
    /// snapshot's clock read so the eviction floor never overtakes a
    /// concurrent pin — see the hazard argument in [`crate::snapshot`].
    pub(crate) ro_snap: AtomicU64,
    /// Whether the slot is currently assigned to a live thread.
    pub(crate) registered: AtomicBool,
}

pub(crate) struct StmInner {
    pub(crate) id: u64,
    pub(crate) clock: GlobalClock,
    pub(crate) slots: Box<[CachePadded<ThreadSlot>]>,
    free_slots: Mutex<Vec<usize>>,
    /// Bumped at the start of every configuration switch.
    pub(crate) switch_epoch: CachePadded<AtomicU64>,
    partitions: Mutex<Vec<Arc<Partition>>>,
    next_partition: AtomicU32,
    pub(crate) tuner: RwLock<Option<Arc<dyn TuningPolicy>>>,
    /// How long switches/repartitions wait for quiescence before rolling
    /// back (see [`StmBuilder::quiesce_timeout`]).
    pub(crate) quiesce_timeout: Duration,
    /// Soft rescue deadline inside a quiesce drain: past this, the drain
    /// raises the kill flags of the blocking slots (see
    /// [`StmBuilder::kill_after`] and [`bump_epoch_and_quiesce`]). At or
    /// above `quiesce_timeout`, rescue is disabled.
    pub(crate) kill_after: Duration,
    /// Installed access profiler (see [`crate::profiler`]).
    pub(crate) profiler: RwLock<Option<Arc<AccessProfiler>>>,
    /// Sampling period copy, readable with one relaxed load on the
    /// transaction begin path (0 = profiling off).
    pub(crate) profile_period: CachePadded<AtomicU64>,
    /// Cached lower bound on every pinned snapshot timestamp: a ring
    /// victim with close stamp `to <= ro_floor` can be recycled without
    /// consulting the overflow list. Conservative by construction (capped
    /// at the clock value read *before* the slot scan), so a stale cache
    /// only diverts more records to overflow, never discards a needed one.
    /// Recomputed on demand by [`StmInner::ro_floor_recompute`].
    pub(crate) ro_floor: CachePadded<AtomicU64>,
}

impl StmInner {
    /// Recomputes and caches the snapshot eviction floor: the minimum over
    /// every registered thread's pinned snapshot timestamp, capped at the
    /// clock value read *before* the scan.
    ///
    /// The cap is what makes the cache sound with no pinned readers: a pin
    /// established after the scan re-reads the clock *after* publishing
    /// itself (see [`crate::snapshot`]), so its timestamp is at least the
    /// clock at publish time; any record such a reader could need closes at
    /// a stamp strictly greater than its timestamp ≥ clock-at-scan ≥ the
    /// returned floor, and therefore fails the `to <= floor` recycling test.
    pub(crate) fn ro_floor_recompute(&self) -> u64 {
        let cap = self.clock.now();
        let mut floor = cap;
        for slot in self.slots.iter() {
            if !slot.registered.load(Ordering::SeqCst) {
                continue;
            }
            floor = floor.min(slot.ro_snap.load(Ordering::SeqCst));
        }
        self.ro_floor.store(floor, Ordering::SeqCst);
        floor
    }
}

impl core::fmt::Debug for StmInner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StmInner")
            .field("id", &self.id)
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}

static STM_IDS: AtomicU64 = AtomicU64::new(1);

/// Builder for [`Stm`].
#[derive(Debug, Clone)]
pub struct StmBuilder {
    max_threads: usize,
    quiesce_timeout: Duration,
    kill_after: Option<Duration>,
}

impl Default for StmBuilder {
    fn default() -> Self {
        StmBuilder {
            max_threads: MAX_THREADS,
            quiesce_timeout: QUIESCE_TIMEOUT,
            kill_after: None,
        }
    }
}

impl StmBuilder {
    /// Maximum number of concurrently registered threads (1..=64; reader
    /// bitmaps are 64 bits wide).
    pub fn max_threads(mut self, n: usize) -> Self {
        assert!(
            (1..=MAX_THREADS).contains(&n),
            "max_threads must be in 1..={MAX_THREADS}"
        );
        self.max_threads = n;
        self
    }

    /// How long a configuration switch or repartition may wait for every
    /// in-flight transaction to finish before rolling the operation back
    /// as [`SwitchOutcome::TimedOut`] (default 10 s). A healthy workload
    /// quiesces in microseconds; lower values make control-plane failure
    /// tests practical, higher ones tolerate extremely long transactions.
    pub fn quiesce_timeout(mut self, timeout: Duration) -> Self {
        self.quiesce_timeout = timeout;
        self
    }

    /// Soft rescue deadline inside a quiesce drain (default: a quarter of
    /// the quiesce timeout). A drain that has waited this long raises the
    /// kill flag of every transaction still blocking it; cooperative
    /// transactions (anything actually executing STM operations) observe
    /// the flag at their next read/write/validate/backoff boundary,
    /// abort through the ordinary lock-releasing abort path, and retry —
    /// unblocking the control plane long before the hard deadline. A
    /// genuinely unresponsive thread (descheduled, dead, or parked in
    /// user code) never polls its flag, so the hard
    /// [`quiesce_timeout`](StmBuilder::quiesce_timeout) still applies and
    /// produces a structured stuck-slot diagnostic. Set this at or above
    /// the quiesce timeout to disable kill rescue entirely.
    pub fn kill_after(mut self, deadline: Duration) -> Self {
        self.kill_after = Some(deadline);
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Stm {
        let mut slots = Vec::with_capacity(self.max_threads);
        slots.resize_with(self.max_threads, || CachePadded::new(ThreadSlot::default()));
        Stm {
            inner: Arc::new(StmInner {
                id: STM_IDS.fetch_add(1, Ordering::Relaxed),
                clock: GlobalClock::new(),
                slots: slots.into_boxed_slice(),
                free_slots: Mutex::new((0..self.max_threads).rev().collect()),
                switch_epoch: CachePadded::new(AtomicU64::new(0)),
                partitions: Mutex::new(Vec::new()),
                next_partition: AtomicU32::new(0),
                tuner: RwLock::new(None),
                quiesce_timeout: self.quiesce_timeout,
                kill_after: self.kill_after.unwrap_or(self.quiesce_timeout / 4),
                profiler: RwLock::new(None),
                profile_period: CachePadded::new(AtomicU64::new(0)),
                ro_floor: CachePadded::new(AtomicU64::new(0)),
            }),
        }
    }
}

/// The partitioned STM runtime. Cheap to clone (an `Arc`).
#[derive(Debug, Clone)]
pub struct Stm {
    pub(crate) inner: Arc<StmInner>,
}

impl Stm {
    /// Runtime with default settings.
    pub fn new() -> Self {
        StmBuilder::default().build()
    }

    /// Builder for custom settings.
    pub fn builder() -> StmBuilder {
        StmBuilder::default()
    }

    /// Creates a new partition with the given configuration.
    pub fn new_partition(&self, cfg: PartitionConfig) -> Arc<Partition> {
        let id = PartitionId(self.inner.next_partition.fetch_add(1, Ordering::Relaxed));
        let p = Partition::new(id, self.inner.id, &cfg);
        self.inner.partitions.lock().push(Arc::clone(&p));
        p
    }

    /// Creates one partition per configuration, in order. The building
    /// block for materializing a computed partitioning plan (see the
    /// `MaterializePlan` glue in `partstm-analysis`).
    pub fn new_partitions<I>(&self, cfgs: I) -> Vec<Arc<Partition>>
    where
        I: IntoIterator<Item = PartitionConfig>,
    {
        cfgs.into_iter().map(|c| self.new_partition(c)).collect()
    }

    /// All partitions created so far (for reports).
    pub fn partitions(&self) -> Vec<Arc<Partition>> {
        self.inner.partitions.lock().clone()
    }

    /// Current global clock value.
    pub fn clock_now(&self) -> u64 {
        self.inner.clock.now()
    }

    /// Installs (or replaces) the runtime tuning policy. Partitions created
    /// with [`PartitionConfig::tunable`] will be evaluated every
    /// `policy.window()` commits.
    pub fn set_tuner(&self, policy: Arc<dyn TuningPolicy>) {
        *self.inner.tuner.write() = Some(policy);
    }

    /// Removes the tuning policy.
    pub fn clear_tuner(&self) {
        *self.inner.tuner.write() = None;
    }

    /// Installs (or replaces) the sampled access profiler. One in
    /// `profiler.period()` transactions per thread records which
    /// partitions and address buckets it touched (see [`crate::profiler`]);
    /// the other transactions pay one relaxed load at begin.
    pub fn set_profiler(&self, profiler: Arc<AccessProfiler>) {
        let period = profiler.period();
        *self.inner.profiler.write() = Some(profiler);
        self.inner.profile_period.store(period, Ordering::SeqCst);
    }

    /// Stops profiling (in-flight sampled attempts may still record).
    pub fn clear_profiler(&self) {
        self.inner.profile_period.store(0, Ordering::SeqCst);
        *self.inner.profiler.write() = None;
    }

    /// The installed profiler, if any.
    pub fn profiler(&self) -> Option<Arc<AccessProfiler>> {
        self.inner.profiler.read().clone()
    }

    /// Registers the calling thread, reserving a slot. The handle is the
    /// entry point for running transactions ([`ThreadCtx::run`]). Dropping
    /// it frees the slot.
    ///
    /// # Panics
    ///
    /// If more than `max_threads` threads are registered simultaneously.
    /// Callers that would rather back off than crash (thread pools sized
    /// independently of the STM) should use [`Stm::try_register_thread`].
    pub fn register_thread(&self) -> ThreadCtx {
        self.try_register_thread()
            .expect("all STM thread slots in use; raise max_threads")
    }

    /// Registers the calling thread if a slot is free, `None` otherwise.
    ///
    /// The non-panicking twin of [`Stm::register_thread`]: a thread-pool
    /// worker that loses the race for the last slot can park, shed load, or
    /// retry with backoff instead of killing the process.
    pub fn try_register_thread(&self) -> Option<ThreadCtx> {
        let slot = self.inner.free_slots.lock().pop()?;
        // No snapshot pinned: MAX keeps a recycled slot (whose `Default`
        // left 0 here) from dragging the snapshot eviction floor to zero.
        self.inner.slots[slot]
            .ro_snap
            .store(u64::MAX, Ordering::SeqCst);
        self.inner.slots[slot]
            .registered
            .store(true, Ordering::Release);
        Some(ThreadCtx {
            stm: self.clone(),
            slot,
            scratch: core::cell::RefCell::new(TxScratch::new(slot as u64)),
        })
    }

    /// Switches a partition to a new dynamic configuration using the
    /// quiesce protocol, guaranteeing that at no instant do two transactions
    /// run the partition under different configurations:
    ///
    /// 1. set the partition's *switching* flag — transactions that now
    ///    first-touch the partition abort and retry (abort-not-spin keeps
    ///    the protocol deadlock-free);
    /// 2. bump the global switch epoch and wait for every registered thread
    ///    to be outside a transaction at least once, or inside one that
    ///    started after the bump (such transactions observe the flag);
    /// 3. install the new configuration with generation+1 and clear the
    ///    flag.
    ///
    /// Returns the [`SwitchOutcome`]: [`Unchanged`](SwitchOutcome::Unchanged)
    /// / [`Contended`](SwitchOutcome::Contended) without waiting when there
    /// is nothing to do or another switch owns the partition, and
    /// [`TimedOut`](SwitchOutcome::TimedOut) (release builds; debug builds
    /// panic) when quiescence cannot be reached — the switch is rolled back
    /// and retryable, so a stuck transaction degrades tuning instead of
    /// killing the process.
    ///
    /// Must not be called from inside a transaction (the engine invokes it
    /// only between transactions; external callers run it from ordinary
    /// code).
    pub fn switch_partition(&self, partition: &Partition, new: DynConfig) -> SwitchOutcome {
        assert_eq!(
            partition.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        switch_partition_impl(&self.inner, partition, new)
    }

    /// Resizes a partition's orec table in place to `new_count` records
    /// (clamped to [`MIN_ORECS`](crate::config::MIN_ORECS)..=
    /// [`MAX_ORECS`](crate::config::MAX_ORECS), rounded up to a power of
    /// two), changing its conflict-detection granularity *live*: more
    /// orecs mean fewer unrelated addresses aliasing onto the same record
    /// (fewer false conflicts), fewer orecs mean a leaner table.
    ///
    /// Runs under the same quiesce protocol as [`Stm::switch_partition`]:
    /// flag → quiesce → install a fresh table stamped with the current
    /// clock → generation+1, flag clear. A fresh stamped table (rather
    /// than rehashing old versions, which is impossible — the mapping is
    /// lossy) forces old-snapshot readers to extend-or-abort on first
    /// contact, exactly as a granularity switch does. The old table is
    /// parked for pointer liveness; in-flight transactions never observe
    /// the swap (they were drained, or abort on the flag).
    ///
    /// The partition's tuning window is reset afterwards so an installed
    /// [`TuningPolicy`] evaluates the resized table
    /// on post-resize statistics instead of a straddling delta.
    ///
    /// Returns [`Unchanged`](SwitchOutcome::Unchanged) when the table
    /// already has the requested size,
    /// [`Contended`](SwitchOutcome::Contended) when another
    /// switch/resize/repartition owns the partition, and
    /// [`TimedOut`](SwitchOutcome::TimedOut) (release builds; debug builds
    /// panic) when quiescence cannot be reached — the resize is rolled
    /// back: old table, old versions, old generation, in-flight
    /// transactions untouched.
    ///
    /// Must not be called from inside a transaction.
    pub fn resize_orecs(&self, partition: &Partition, new_count: usize) -> SwitchOutcome {
        assert_eq!(
            partition.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        resize_orecs_impl(&self.inner, partition, new_count)
    }

    /// Changes a partition's version-ring depth *live* (clamped to
    /// [`MIN_RING_DEPTH`](crate::config::MIN_RING_DEPTH)..=
    /// [`MAX_RING_DEPTH`](crate::config::MAX_RING_DEPTH)): deeper rings
    /// keep more committed versions per orec, so snapshot readers
    /// ([`crate::ThreadCtx::snapshot_read`]) find history in the ring
    /// instead of forcing writers onto the overflow list — the knob to turn
    /// when [`Partition::overflow_len`] or the `ring_overflow_pushes`
    /// counter stays high. Memory cost: `orec_count × depth × 32` bytes.
    ///
    /// Runs under the same quiesce protocol as [`Stm::resize_orecs`]:
    /// flag → quiesce → install a fresh (empty) ring of the new depth →
    /// generation+1, flag clear. Discarding accumulated history is safe —
    /// see the migration/resize argument in [`crate::snapshot`] — and
    /// merely costs post-switch snapshot readers their history until
    /// writers repopulate it.
    ///
    /// Returns [`Unchanged`](SwitchOutcome::Unchanged) when the depth is
    /// already the requested one, [`Contended`](SwitchOutcome::Contended)
    /// when another switch owns the partition, and
    /// [`TimedOut`](SwitchOutcome::TimedOut) (release builds; debug builds
    /// panic) when quiescence cannot be reached — rolled back, retryable.
    ///
    /// Must not be called from inside a transaction.
    pub fn set_ring_depth(&self, partition: &Partition, depth: usize) -> SwitchOutcome {
        assert_eq!(
            partition.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        set_ring_depth_impl(&self.inner, partition, depth)
    }
}

/// The quiesce-based switch protocol (shared by the public API and the
/// engine's tuning hook). See [`Stm::switch_partition`] for the contract.
pub(crate) fn switch_partition_impl(
    inner: &StmInner,
    partition: &Partition,
    new: DynConfig,
) -> SwitchOutcome {
    let out = switch_partition_body(inner, partition, new);
    telemetry::control_event(
        EventKind::ConfigSwitch,
        partition.id.0 as u64,
        telemetry::outcome_code(out),
        0,
    );
    out
}

fn switch_partition_body(inner: &StmInner, partition: &Partition, new: DynConfig) -> SwitchOutcome {
    let old = partition.config.load(Ordering::SeqCst);
    if config::is_switching(old) {
        return SwitchOutcome::Contended;
    }
    if config::decode(old) == new {
        return SwitchOutcome::Unchanged;
    }
    if partition
        .config
        .compare_exchange(
            old,
            old | config::SWITCHING_BIT,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_err()
    {
        return SwitchOutcome::Contended;
    }
    if !bump_epoch_and_quiesce(inner, partition.id.0) {
        // Roll the switch back: clear the flag so future switches (and
        // first-touches) proceed, leave config + generation untouched. We
        // own the word while the flag is set, so a plain store of the
        // pre-switch word is race-free.
        partition.config.store(old, Ordering::SeqCst);
        let timeout = inner.quiesce_timeout;
        if cfg!(debug_assertions) {
            panic!(
                "partition switch could not quiesce in {timeout:?}: \
                 a transaction appears stuck"
            );
        }
        rtlog::warn(&format!(
            "switch of partition '{}' rolled back: quiescence not reached \
             in {timeout:?} (stuck transaction?); retryable",
            partition.name()
        ));
        return SwitchOutcome::TimedOut;
    }
    // Stamp every orec with the current clock before the new configuration
    // becomes visible: a remapped orec may otherwise carry a version that
    // is stale for its new coverage, letting an old-snapshot reader accept
    // a value committed after its read version (see Partition::reset_orecs).
    partition.reset_orecs(inner.clock.now());
    let word = config::encode(new, config::generation(old).wrapping_add(1));
    partition.config.store(word, Ordering::SeqCst);
    SwitchOutcome::Switched
}

/// The quiesce-based orec-table resize (see [`Stm::resize_orecs`] for the
/// contract). Structurally the same flag→quiesce→mutate→gen+1 window as
/// the configuration switch; the mutation installs a fresh table instead
/// of re-stamping the existing one.
pub(crate) fn resize_orecs_impl(
    inner: &StmInner,
    partition: &Partition,
    new_count: usize,
) -> SwitchOutcome {
    let out = resize_orecs_body(inner, partition, new_count);
    telemetry::control_event(
        EventKind::OrecResize,
        partition.id.0 as u64,
        telemetry::outcome_code(out),
        new_count as u64,
    );
    out
}

fn resize_orecs_body(inner: &StmInner, partition: &Partition, new_count: usize) -> SwitchOutcome {
    let n = new_count
        .clamp(config::MIN_ORECS, config::MAX_ORECS)
        .next_power_of_two();
    let old = partition.config.load(Ordering::SeqCst);
    if config::is_switching(old) {
        return SwitchOutcome::Contended;
    }
    if partition.orec_count() == n {
        return SwitchOutcome::Unchanged;
    }
    if partition
        .config
        .compare_exchange(
            old,
            old | config::SWITCHING_BIT,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_err()
    {
        return SwitchOutcome::Contended;
    }
    // Re-check under the flag: the pre-CAS size read may have raced an
    // interleaved resize that already installed `n`.
    if partition.orec_count() == n {
        partition.config.store(old, Ordering::SeqCst);
        return SwitchOutcome::Unchanged;
    }
    if !bump_epoch_and_quiesce(inner, partition.id.0) {
        // Roll back: clear the flag, leave table/versions/config exactly
        // as found (we mutate nothing before this point).
        partition.config.store(old, Ordering::SeqCst);
        let timeout = inner.quiesce_timeout;
        if cfg!(debug_assertions) {
            panic!(
                "orec resize could not quiesce in {timeout:?}: \
                 a transaction appears stuck"
            );
        }
        rtlog::warn(&format!(
            "orec resize of partition '{}' rolled back: quiescence not \
             reached in {timeout:?} (stuck transaction?); retryable",
            partition.name()
        ));
        return SwitchOutcome::TimedOut;
    }
    // Quiesced: no transaction holds pointers into the old table, and new
    // attempts abort on the flag before touching it. Install the fresh
    // table stamped with the current clock (same staleness argument as
    // reset_orecs), then publish generation+1 with the flag clear.
    partition.install_table(n, inner.clock.now());
    partition.reset_tuning_window();
    let word = config::encode(config::decode(old), config::generation(old).wrapping_add(1));
    partition.config.store(word, Ordering::SeqCst);
    SwitchOutcome::Switched
}

/// The quiesce-based ring-depth change (see [`Stm::set_ring_depth`] for
/// the contract). Same flag→quiesce→mutate→gen+1 window as the orec-table
/// resize; the mutation installs a fresh ring of the new depth.
pub(crate) fn set_ring_depth_impl(
    inner: &StmInner,
    partition: &Partition,
    depth: usize,
) -> SwitchOutcome {
    let out = set_ring_depth_body(inner, partition, depth);
    telemetry::control_event(
        EventKind::RingDepth,
        partition.id.0 as u64,
        telemetry::outcome_code(out),
        depth as u64,
    );
    out
}

fn set_ring_depth_body(inner: &StmInner, partition: &Partition, depth: usize) -> SwitchOutcome {
    let d = depth.clamp(config::MIN_RING_DEPTH, config::MAX_RING_DEPTH);
    let old = partition.config.load(Ordering::SeqCst);
    if config::is_switching(old) {
        return SwitchOutcome::Contended;
    }
    if partition.ring_depth() == d {
        return SwitchOutcome::Unchanged;
    }
    if partition
        .config
        .compare_exchange(
            old,
            old | config::SWITCHING_BIT,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_err()
    {
        return SwitchOutcome::Contended;
    }
    // Re-check under the flag (same race as the resize path).
    if partition.ring_depth() == d {
        partition.config.store(old, Ordering::SeqCst);
        return SwitchOutcome::Unchanged;
    }
    if !bump_epoch_and_quiesce(inner, partition.id.0) {
        partition.config.store(old, Ordering::SeqCst);
        let timeout = inner.quiesce_timeout;
        if cfg!(debug_assertions) {
            panic!(
                "ring-depth change could not quiesce in {timeout:?}: \
                 a transaction appears stuck"
            );
        }
        rtlog::warn(&format!(
            "ring-depth change of partition '{}' rolled back: quiescence \
             not reached in {timeout:?} (stuck transaction?); retryable",
            partition.name()
        ));
        return SwitchOutcome::TimedOut;
    }
    partition.install_ring(d);
    let word = config::encode(config::decode(old), config::generation(old).wrapping_add(1));
    partition.config.store(word, Ordering::SeqCst);
    SwitchOutcome::Switched
}

/// Bumps the global switch epoch and waits for every registered thread to
/// be outside a transaction at least once, or inside one begun after the
/// bump (such attempts observe the switching flags set by the caller).
/// Returns `false` on quiesce timeout — the caller must roll its flags
/// back. Shared by the single-partition switch and the multi-partition
/// repartition protocol (see [`crate::repartition`]).
///
/// ## Two-stage deadline (kill-based rescue)
///
/// The drain runs against two deadlines:
///
/// 1. **Soft** ([`StmBuilder::kill_after`], default `quiesce_timeout/4`):
///    once crossed, [`raise_kills`] sweeps the slot table once and raises
///    the kill flag of every transaction still blocking the drain (slot
///    registered, sequence odd, attempt begun before this window's
///    epoch). A cooperative victim observes the flag at its next
///    read/write/acquire/validate/backoff boundary and unwinds with
///    [`AbortKind::Killed`](crate::AbortKind::Killed) through the
///    ordinary abort path, which releases every encounter lock and
///    reader bit it held — see the "Kill safety" section of
///    [`crate::txn`]'s module docs for why aborting at those boundaries
///    can never observe or publish torn state. One sweep suffices:
///    attempts begun after the epoch bump satisfy the drain predicate by
///    construction, so the set of blockers can only shrink.
/// 2. **Hard** ([`StmBuilder::quiesce_timeout`]): the window fails and
///    the caller rolls back, exactly as before — but first
///    [`report_stuck_slots`] emits one structured diagnostic per
///    still-blocking slot (thread slot, attempt serial, held encounter
///    locks per partition scan) through [`rtlog`] and the telemetry
///    `StuckSlot` event/counter, replacing the old bare "stuck
///    transaction?" guess. Only a thread that is *not running STM code*
///    (descheduled, dead, or parked in user code mid-transaction) can
///    reach this stage, because every STM boundary polls the kill flag.
///
/// Raising a kill flag is always safe, even against a mis-identified
/// victim: the flag names one attempt serial, the victim merely
/// aborts-and-retries (counted as `aborts_killed`), and `Tx::begin`
/// clears the flag before publishing the next serial, so a stale kill
/// can never leak into a later attempt.
pub(crate) fn bump_epoch_and_quiesce(inner: &StmInner, tele_part: u32) -> bool {
    // `tele_part` only attributes the telemetry events below to the
    // partition (or destination) whose window this is; the drain itself is
    // global.
    let tele_t0 = telemetry::enabled().then(|| {
        telemetry::control_event(EventKind::QuiesceBegin, tele_part as u64, 0, 0);
        Instant::now()
    });
    if crate::fault::enabled() {
        if let Some(delay) = crate::fault::quiesce_delay_budget(inner.id) {
            std::thread::sleep(delay);
        }
    }
    let epoch = inner.switch_epoch.fetch_add(1, Ordering::SeqCst) + 1;
    let start = Instant::now();
    let soft = inner.kill_after;
    // Rescue disabled when the soft deadline cannot precede the hard one.
    let mut kills_raised = soft >= inner.quiesce_timeout;
    let mut ok = true;
    'drain: for slot in inner.slots.iter() {
        if !slot.registered.load(Ordering::Acquire) {
            continue;
        }
        loop {
            let seq = slot.seq.load(Ordering::SeqCst);
            if seq % 2 == 0 || slot.start_epoch.load(Ordering::SeqCst) >= epoch {
                break;
            }
            let waited = start.elapsed();
            if waited > inner.quiesce_timeout {
                ok = false;
                break 'drain;
            }
            if !kills_raised && waited > soft {
                kills_raised = true;
                raise_kills(inner, epoch, tele_part, waited);
            }
            std::thread::yield_now();
        }
    }
    if !ok {
        report_stuck_slots(inner, epoch, tele_part);
    }
    if telemetry::enabled() {
        let t = telemetry::global();
        t.quiesce_total.inc();
        if !ok {
            t.quiesce_timeouts.inc();
        }
    }
    if let Some(t0) = tele_t0 {
        let us = t0.elapsed().as_micros() as u64;
        telemetry::global().quiesce_us.record(us);
        telemetry::control_event(EventKind::QuiesceEnd, tele_part as u64, us, ok as u64);
    }
    ok
}

/// Soft-deadline stage of [`bump_epoch_and_quiesce`]: one sweep over the
/// slot table raising the kill flag of every attempt still blocking the
/// drain for `epoch`. Racing a victim's attempt turnover is benign — the
/// stored serial then names a finished attempt and no one ever matches
/// it. Cold by construction (a healthy drain finishes in microseconds).
#[cold]
fn raise_kills(inner: &StmInner, epoch: u64, tele_part: u32, waited: Duration) {
    let mut killed = 0u64;
    for slot in inner.slots.iter() {
        if !slot.registered.load(Ordering::SeqCst) {
            continue;
        }
        if slot.seq.load(Ordering::SeqCst) % 2 == 0
            || slot.start_epoch.load(Ordering::SeqCst) >= epoch
        {
            continue;
        }
        slot.kill
            .store(slot.serial.load(Ordering::SeqCst), Ordering::SeqCst);
        killed += 1;
    }
    if killed > 0 && telemetry::enabled() {
        telemetry::global().kill_rescue_kills.add(killed);
        telemetry::control_event(
            EventKind::KillRescue,
            tele_part as u64,
            killed,
            waited.as_micros() as u64,
        );
    }
}

fn stuck_limiter() -> &'static rtlog::Limiter {
    static L: std::sync::OnceLock<rtlog::Limiter> = std::sync::OnceLock::new();
    L.get_or_init(|| rtlog::Limiter::new(Duration::from_secs(5)))
}

/// Hard-deadline stage of [`bump_epoch_and_quiesce`]: one structured
/// diagnostic per slot still blocking the drain — thread slot index,
/// attempt serial, and how many encounter locks it holds in each
/// partition — via [`rtlog`] (rate-limited) and the telemetry
/// `StuckSlot` event + counter. Such a slot survived the kill sweep, so
/// its thread cannot be executing STM code; the held-lock count tells the
/// operator whether it is wedging writers too or merely the control
/// plane.
#[cold]
fn report_stuck_slots(inner: &StmInner, epoch: u64, tele_part: u32) {
    // `try_lock`: this runs inside an already-failing control-plane
    // window, and deadlocking the diagnostic on the partition list would
    // be worse than reporting without held-lock counts.
    let parts: Vec<Arc<Partition>> = inner
        .partitions
        .try_lock()
        .map(|g| g.clone())
        .unwrap_or_default();
    for (i, slot) in inner.slots.iter().enumerate() {
        if !slot.registered.load(Ordering::SeqCst) {
            continue;
        }
        if slot.seq.load(Ordering::SeqCst) % 2 == 0
            || slot.start_epoch.load(Ordering::SeqCst) >= epoch
        {
            continue;
        }
        let serial = slot.serial.load(Ordering::SeqCst);
        let held: Vec<(PartitionId, usize)> = parts
            .iter()
            .map(|p| (p.id(), p.held_locks_of(i)))
            .filter(|(_, n)| *n > 0)
            .collect();
        let held_total: usize = held.iter().map(|(_, n)| n).sum();
        if telemetry::enabled() {
            telemetry::global().stuck_slots.inc();
        }
        telemetry::control_event(
            EventKind::StuckSlot,
            tele_part as u64,
            i as u64,
            held_total as u64,
        );
        stuck_limiter().warn(&format!(
            "stuck transaction: thread slot {i} (attempt serial {serial}) \
             ignored its kill flag past the hard quiesce deadline; it holds \
             {held_total} encounter lock(s) {held:?} — the thread is \
             descheduled, dead, or parked in user code mid-transaction"
        ));
    }
}

impl Default for Stm {
    fn default() -> Self {
        Self::new()
    }
}

/// A registered thread's handle into the runtime. Not `Sync`: one per
/// thread. Movable across threads (`Send`) while no transaction is active.
#[derive(Debug)]
pub struct ThreadCtx {
    pub(crate) stm: Stm,
    pub(crate) slot: usize,
    pub(crate) scratch: core::cell::RefCell<TxScratch>,
}

// SAFETY: `TxScratch` contains raw pointers into partition tables and
// arenas, but they are only dereferenced between `begin` and the end of the
// same attempt, which cannot span a move of the `ThreadCtx` (moving requires
// ownership, which `run` holds by borrow for the whole attempt).
unsafe impl Send for ThreadCtx {}

impl ThreadCtx {
    /// The runtime this thread is registered with.
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// The thread's slot index (for diagnostics).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        self.stm.inner.slots[self.slot]
            .registered
            .store(false, Ordering::Release);
        self.stm.inner.free_slots.lock().push(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReadMode;

    #[test]
    fn builder_enforces_thread_bounds() {
        let stm = Stm::builder().max_threads(2).build();
        let a = stm.register_thread();
        let b = stm.register_thread();
        assert_ne!(a.slot(), b.slot());
        drop(a);
        let c = stm.register_thread();
        drop(b);
        drop(c);
        // Slots are recycled.
        let d = stm.register_thread();
        assert!(d.slot() < 2);
    }

    #[test]
    #[should_panic(expected = "max_threads")]
    fn builder_rejects_oversized_thread_count() {
        let _ = Stm::builder().max_threads(65);
    }

    #[test]
    #[should_panic(expected = "slots in use")]
    fn registration_beyond_capacity_panics() {
        let stm = Stm::builder().max_threads(1).build();
        let _a = stm.register_thread();
        let _b = stm.register_thread();
    }

    #[test]
    fn partition_ids_are_sequential() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::default());
        let b = stm.new_partition(PartitionConfig::default());
        assert_eq!(a.id(), PartitionId(0));
        assert_eq!(b.id(), PartitionId(1));
        assert_eq!(stm.partitions().len(), 2);
    }

    #[test]
    fn switch_partition_updates_config_and_generation() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        assert_eq!(p.current_config().read_mode, ReadMode::Invisible);
        let mut cfg = p.current_config();
        cfg.read_mode = ReadMode::Visible;
        assert!(stm.switch_partition(&p, cfg).switched());
        assert_eq!(p.current_config().read_mode, ReadMode::Visible);
        assert_eq!(p.generation(), 1);
        // Switching to the identical config is a no-op.
        assert_eq!(stm.switch_partition(&p, cfg), SwitchOutcome::Unchanged);
        assert_eq!(p.generation(), 1);
    }

    #[test]
    fn resize_orecs_swaps_table_and_bumps_generation() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default().orecs(256));
        assert_eq!(p.orec_count(), 256);
        assert!(stm.resize_orecs(&p, 4096).switched());
        assert_eq!(p.orec_count(), 4096);
        assert_eq!(p.generation(), 1);
        assert_eq!(p.resize_count(), 1);
        // Same size: no-op, no generation bump.
        assert_eq!(stm.resize_orecs(&p, 4096), SwitchOutcome::Unchanged);
        assert_eq!(p.generation(), 1);
        // Rounded up to a power of two; shrink works.
        assert!(stm.resize_orecs(&p, 100).switched());
        assert_eq!(p.orec_count(), 128);
        assert_eq!(p.generation(), 2);
    }

    #[test]
    fn resize_orecs_clamps_to_bounds() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        assert!(stm.resize_orecs(&p, 1).switched());
        assert_eq!(p.orec_count(), crate::config::MIN_ORECS);
        assert!(stm.resize_orecs(&p, usize::MAX).switched());
        assert_eq!(p.orec_count(), crate::config::MAX_ORECS);
    }

    #[test]
    fn resize_orecs_preserves_data_under_load() {
        // Values live in TVars, not orecs: a resize must not disturb
        // committed state or lose updates racing the quiesce.
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default().orecs(64));
        let x = std::sync::Arc::new(p.tvar(0u64));
        let iters = 2000u64;
        std::thread::scope(|s| {
            for _ in 0..3 {
                let ctx = stm.register_thread();
                let x = std::sync::Arc::clone(&x);
                s.spawn(move || {
                    for _ in 0..iters {
                        ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
                    }
                });
            }
            let stm2 = stm.clone();
            let p2 = std::sync::Arc::clone(&p);
            s.spawn(move || {
                for i in 0..24 {
                    let n = if i % 2 == 0 { 1024 } else { 64 };
                    let _ = stm2.resize_orecs(&p2, n);
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(x.load_direct(), 3 * iters, "no update lost across resizes");
        assert!(p.resize_count() > 0, "at least one resize executed");
    }

    #[test]
    #[should_panic(expected = "different Stm")]
    fn cross_stm_resize_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let p = stm1.new_partition(PartitionConfig::default());
        let _ = stm2.resize_orecs(&p, 512);
    }

    #[test]
    fn try_register_thread_backs_off_instead_of_panicking() {
        let stm = Stm::builder().max_threads(2).build();
        let a = stm.try_register_thread().expect("slot 1");
        let b = stm.try_register_thread().expect("slot 2");
        assert!(stm.try_register_thread().is_none(), "pool exhausted");
        drop(a);
        let c = stm.try_register_thread().expect("slot recycled");
        drop(b);
        drop(c);
    }

    #[test]
    fn new_partitions_creates_in_order() {
        let stm = Stm::new();
        let parts = stm.new_partitions([
            PartitionConfig::named("a"),
            PartitionConfig::named("b"),
            PartitionConfig::named("c"),
        ]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].name(), "a");
        assert_eq!(parts[2].name(), "c");
        assert!(parts[0].id() < parts[1].id() && parts[1].id() < parts[2].id());
    }

    #[test]
    #[should_panic(expected = "different Stm")]
    fn cross_stm_switch_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let p = stm1.new_partition(PartitionConfig::default());
        let cfg = p.current_config();
        let _ = stm2.switch_partition(&p, cfg);
    }

    #[test]
    fn set_ring_depth_swaps_ring_and_bumps_generation() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default().ring(4));
        assert_eq!(p.ring_depth(), 4);
        assert!(stm.set_ring_depth(&p, 16).switched());
        assert_eq!(p.ring_depth(), 16);
        assert_eq!(p.generation(), 1);
        assert_eq!(stm.set_ring_depth(&p, 16), SwitchOutcome::Unchanged);
        assert_eq!(p.generation(), 1);
        // Clamped at both ends.
        assert!(stm.set_ring_depth(&p, 0).switched());
        assert_eq!(p.ring_depth(), crate::config::MIN_RING_DEPTH);
        assert!(stm.set_ring_depth(&p, usize::MAX).switched());
        assert_eq!(p.ring_depth(), crate::config::MAX_RING_DEPTH);
    }

    #[test]
    fn ro_floor_is_capped_by_the_clock_and_tracks_pins() {
        let stm = Stm::new();
        // No registered threads: the floor equals the clock, never MAX.
        stm.inner.clock.advance();
        stm.inner.clock.advance();
        assert_eq!(stm.inner.ro_floor_recompute(), 2);
        // An idle registered thread (ro_snap = MAX) does not lower it.
        let ctx = stm.register_thread();
        assert_eq!(stm.inner.ro_floor_recompute(), 2);
        // A pinned snapshot drags the floor down to its timestamp.
        stm.inner.slots[ctx.slot()]
            .ro_snap
            .store(1, Ordering::SeqCst);
        assert_eq!(stm.inner.ro_floor_recompute(), 1);
        stm.inner.slots[ctx.slot()]
            .ro_snap
            .store(u64::MAX, Ordering::SeqCst);
        assert_eq!(stm.inner.ro_floor_recompute(), 2);
    }

    #[test]
    fn switch_waits_for_idle_threads_only() {
        // A registered but idle thread must not block the switch.
        let stm = Stm::new();
        let _ctx = stm.register_thread();
        let p = stm.new_partition(PartitionConfig::default());
        let mut cfg = p.current_config();
        cfg.read_mode = ReadMode::Visible;
        assert!(stm.switch_partition(&p, cfg).switched());
    }
}
