//! # partstm-core — partitioned software transactional memory
//!
//! A word-based STM runtime (in the TinySTM family) whose concurrency-
//! control metadata is *partitioned*: every [`Partition`] owns its own
//! ownership-record table and its own configuration — read visibility
//! (invisible timestamp-validated reads vs. visible reader bitmaps), lock
//! acquisition time (encounter vs. commit), conflict-detection granularity
//! (per-word, per-stripe, or one lock for the whole partition) and
//! contention management. A pluggable [`TuningPolicy`] may reconfigure each
//! partition at runtime based on its observed statistics.
//!
//! This is a from-scratch reproduction of the system described in
//! *"Automatic Data Partitioning in Software Transactional Memories"*
//! (Riegel, Fetzer, Felber — SPAA 2008). The compile-time partitioning
//! analysis that assigns data structures to partitions lives in the sibling
//! crate `partstm-analysis`; heuristic tuning policies live in
//! `partstm-tuning`.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use partstm_core::{PartitionConfig, Stm, TVar};
//!
//! let stm = Stm::new();
//! let accounts = stm.new_partition(PartitionConfig::named("accounts"));
//! let a = TVar::new(100i64);
//! let b = TVar::new(0i64);
//!
//! let ctx = stm.register_thread();
//! ctx.run(|tx| {
//!     let va = tx.read(&accounts, &a)?;
//!     let vb = tx.read(&accounts, &b)?;
//!     tx.write(&accounts, &a, va - 30)?;
//!     tx.write(&accounts, &b, vb + 30)?;
//!     Ok(())
//! });
//! assert_eq!(a.load_direct(), 70);
//! assert_eq!(b.load_direct(), 30);
//! ```
//!
//! ## Soundness contract
//!
//! Each [`TVar`] must always be accessed through the *same* partition: the
//! partition's orec table is what detects conflicts, so routing one
//! variable through two partitions would miss conflicts. In the paper this
//! invariant is established by the compile-time partitioning analysis; in
//! this library it is upheld by construction when data structures carry
//! their partition (as everything in `partstm-structures` does), and the
//! `partstm-analysis` crate reproduces the analysis that derives sound
//! assignments automatically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod clock;
pub mod cm;
pub mod config;
pub mod error;
pub mod orec;
pub mod partition;
pub mod stats;
pub mod stm;
pub mod tuner;
pub mod tvar;
pub mod txn;
pub mod word;

pub use arena::{Arena, Handle};
pub use config::{
    AcquireMode, CmPolicy, DynConfig, Granularity, PartitionConfig, ReadMode, ReaderArb,
};
pub use error::{Abort, AbortKind, TxResult};
pub use partition::{Partition, PartitionId};
pub use stats::StatCounters;
pub use stm::{Stm, StmBuilder, ThreadCtx, MAX_THREADS};
pub use tuner::{TuneInput, TuningPolicy};
pub use tvar::TVar;
pub use txn::Tx;
pub use word::TxWord;
