//! # partstm-core — partitioned software transactional memory
//!
//! A word-based STM runtime (in the TinySTM family) whose concurrency-
//! control metadata is *partitioned*: every [`Partition`] owns its own
//! ownership-record table and its own configuration — read visibility
//! (invisible timestamp-validated reads vs. visible reader bitmaps), lock
//! acquisition time (encounter vs. commit), conflict-detection granularity
//! (per-word, per-stripe, or one lock for the whole partition) and
//! contention management. A pluggable [`TuningPolicy`] may reconfigure each
//! partition at runtime based on its observed statistics.
//!
//! This is a from-scratch reproduction of the system described in
//! *"Automatic Data Partitioning in Software Transactional Memories"*
//! (Riegel, Fetzer, Felber — SPAA 2008). The compile-time partitioning
//! analysis that assigns data structures to partitions lives in the sibling
//! crate `partstm-analysis`; heuristic tuning policies live in
//! `partstm-tuning`.
//!
//! ## Quickstart
//!
//! Variables are *bound to their partition at allocation*
//! ([`Partition::tvar`] returns a [`PVar`]); access sites then name only
//! the variable:
//!
//! ```
//! use partstm_core::{PartitionConfig, Stm};
//!
//! let stm = Stm::new();
//! let accounts = stm.new_partition(PartitionConfig::named("accounts"));
//! let a = accounts.tvar(100i64);
//! let b = accounts.tvar(0i64);
//!
//! let ctx = stm.register_thread();
//! ctx.run(|tx| {
//!     let va = tx.read(&a)?;
//!     let vb = tx.read(&b)?;
//!     tx.write(&a, va - 30)?;
//!     tx.write(&b, vb + 30)?;
//!     Ok(())
//! });
//! assert_eq!(a.load_direct(), 70);
//! assert_eq!(b.load_direct(), 30);
//! ```
//!
//! ## Soundness contract
//!
//! Each transactional variable must always be accessed through the *same*
//! partition: the partition's orec table is what detects conflicts, so
//! routing one variable through two partitions would miss conflicts. In
//! the paper this invariant is established by the compile-time
//! partitioning analysis; in this library it holds *by construction* for
//! [`PVar`]s (the binding is fixed at allocation and the access sites
//! cannot name a partition at all). The raw tier — bare [`TVar`]s accessed
//! via [`Tx::read_raw`](txn::Tx::read_raw) and friends — leaves the
//! invariant to the caller, and the `partstm-analysis` crate reproduces
//! the analysis that derives sound assignments automatically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod clock;
pub mod cm;
pub mod config;
pub mod error;
pub mod fault;
pub mod orec;
pub mod partition;
pub mod privatize;
pub mod profiler;
pub mod pvar;
pub mod repartition;
pub mod rtlog;
pub mod snapshot;
pub mod stats;
pub mod stm;
pub mod telemetry;
pub mod tuner;
pub mod tvar;
pub mod txn;
pub mod word;

pub use arena::{Arena, ArenaSlots, Handle};
pub use config::{
    AcquireMode, CmPolicy, DynConfig, Granularity, PartitionConfig, ReadMode, ReaderArb,
};
pub use error::{Abort, AbortKind, TxResult};
pub use fault::{FaultPlan, FaultSite};
pub use partition::{Partition, PartitionId};
pub use privatize::{PrivateGuard, PrivatizeError};
pub use profiler::{AccessProfiler, BucketTouch, SampleTouch, TxSample, PROFILE_BUCKETS};
pub use pvar::{retired_binding_count, Migratable, PVar, PVarBinding, PVarFields};
pub use repartition::{
    CollectionRegistry, MigratableCollection, MigrationSource, TearableCollection,
};
pub use snapshot::ReadTx;
pub use stats::StatCounters;
pub use stm::{Stm, StmBuilder, SwitchOutcome, ThreadCtx, MAX_THREADS};
pub use tuner::{TuneInput, TuningPolicy};
pub use tvar::TVar;
pub use txn::Tx;
pub use word::TxWord;
