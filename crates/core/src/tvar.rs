//! Transactional variables.
//!
//! A [`TVar<T>`] is one transactional 64-bit word (see [`crate::word`]).
//! The backing store is an `AtomicU64`, so non-transactional code can never
//! observe a torn value; consistency of *groups* of words is what the STM
//! protocol provides.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicU64, Ordering};

use crate::word::TxWord;

/// A transactional variable holding a `T` packed into a 64-bit word.
///
/// `TVar` is the *raw tier*: it carries no partition, so every
/// transactional access ([`crate::Tx::read_raw`] and friends) must name
/// the partition whose concurrency-control metadata guards the variable —
/// and must always name the same one. Most code should use
/// [`crate::PVar`] instead (created with [`crate::Partition::tvar`]),
/// which binds the variable to its partition at allocation, the way the
/// paper's compiler pass (Tanger + the data-structure analysis) assigns
/// variables to partitions ahead of execution.
#[repr(transparent)]
pub struct TVar<T> {
    pub(crate) cell: AtomicU64,
    _m: PhantomData<T>,
}

impl<T: TxWord> TVar<T> {
    /// Creates a variable with an initial value.
    pub fn new(value: T) -> Self {
        TVar {
            cell: AtomicU64::new(value.to_word()),
            _m: PhantomData,
        }
    }

    /// Non-transactional read. Safe at any time (single atomic load) but
    /// sees only one word: use it for initialization, teardown, or
    /// statistics — never to derive multi-word invariants.
    #[inline]
    pub fn load_direct(&self) -> T {
        T::from_word(self.cell.load(Ordering::Acquire))
    }

    /// Non-transactional write. Only safe while no transaction may access
    /// the variable (setup/teardown): it bypasses ownership records, so a
    /// concurrent transaction would not detect the change.
    #[inline]
    pub fn store_direct(&self, value: T) {
        self.cell.store(value.to_word(), Ordering::Release);
    }

    /// Address used as the conflict-detection key for this variable.
    #[inline(always)]
    pub(crate) fn addr(&self) -> usize {
        &self.cell as *const AtomicU64 as usize
    }
}

impl<T: TxWord + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T: TxWord + core::fmt::Debug> core::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("TVar").field(&self.load_direct()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_roundtrip() {
        let v = TVar::new(41u64);
        assert_eq!(v.load_direct(), 41);
        v.store_direct(42);
        assert_eq!(v.load_direct(), 42);
    }

    #[test]
    fn default_and_debug() {
        let v: TVar<u32> = TVar::default();
        assert_eq!(v.load_direct(), 0);
        assert_eq!(format!("{v:?}"), "TVar(0)");
    }

    #[test]
    fn tvar_is_one_word_plus_nothing() {
        assert_eq!(core::mem::size_of::<TVar<u64>>(), 8);
        assert_eq!(core::mem::size_of::<TVar<bool>>(), 8);
    }

    #[test]
    fn negative_values_survive() {
        let v = TVar::new(-7i64);
        assert_eq!(v.load_direct(), -7);
    }
}
