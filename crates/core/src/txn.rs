//! The transaction engine: begin / read / write / commit / abort.
//!
//! The protocol is TinySTM's word-based design extended with per-partition
//! metadata:
//!
//! * snapshot at begin (`rv` = global clock), lazy snapshot extension (LSA)
//!   on reads past `rv`;
//! * invisible reads: the `l1 / value / l2` seqlock sandwich against the
//!   covering ownership record, entry recorded for commit-time validation;
//! * visible reads: reader bit in the orec's bitmap; writers arbitrate
//!   (kill or yield) at acquisition time; no commit-time validation needed;
//! * writes: buffered (write-back) with the orec acquired either at
//!   encounter time or commit time, per the partition's configuration;
//! * commit: acquire remaining locks, take `wv` from the clock, validate
//!   invisible reads (skipped when `rv + 1 == wv`), write back, release
//!   with `wv`.
//!
//! ## Lifetimes
//!
//! [`Tx<'e, 's>`] carries two lifetimes: `'e` is the *environment* — every
//! `&PVar`/`&TVar`/`&Arc<Partition>` passed to transactional operations must
//! outlive the whole [`ThreadCtx::run`] call (so the engine's internal
//! pointers stay valid through commit even if user code drops its own
//! handles early), and `'s` is the engine's internal borrow of its scratch
//! state. User closures are generic over `'s` only.
//!
//! ## Partition views: one config decode per attempt
//!
//! Every attempt keeps a *partition view* table: the first touch of a
//! partition loads its config word (one `SeqCst` load), rejects the attempt
//! if the switching flag is set, and caches the decoded [`DynConfig`] plus
//! generation — and, since orec tables became resizable, the table's base
//! pointer and index mask — in the view. Every later access to that
//! partition — bound ([`Tx::read`]) or raw ([`Tx::read_raw`]) — resolves to
//! the cached view (a one-entry MRU fast path backed by a stamped hash
//! index) and never re-reads the config word or the table registers.
//!
//! **Soundness.** Caching the decode (and the table pointer/mask) for the
//! whole attempt is sound because the quiesce-based switch protocol (see
//! [`crate::Stm::switch_partition`]; [`crate::Stm::resize_orecs`] runs the
//! identical window) guarantees no attempt spans a configuration switch or
//! table resize:
//!
//! 1. the switcher sets the partition's *switching* flag **before** bumping
//!    the global switch epoch, so any attempt that begins after the bump
//!    (its `start_epoch` is past the bump) observes the flag at first touch
//!    — all the loads involved are `SeqCst` — and aborts without caching
//!    anything;
//! 2. the switcher waits for every attempt begun **before** the bump (odd
//!    `seq`, older `start_epoch`) to finish before it resets (or swaps)
//!    the orec table and installs the new config word.
//!
//! Hence a view snapshotted at first touch is, for the rest of the attempt,
//! identical to what a per-access decode would produce, and the cached
//! generation — and every orec pointer derived from the cached table —
//! is stable until the attempt's `seq` returns to even. (Tables retired by
//! a resize are additionally *parked*, never freed, so even a stale orec
//! pointer could only read stale telemetry, never freed memory.)
//!
//! ## Aliasing telemetry
//!
//! On every conflict abort where the engine knows both the address it was
//! accessing and the conflicting orec, it classifies the conflict by the
//! orec's acquisition hint (see [`crate::orec::Orec`]): hint == our address
//! → a *true* data conflict; hint naming a different address → an *aliased*
//! (false) conflict, two unrelated words hashed onto one orec. The
//! classification is one relaxed load plus a compare, paid only on abort
//! paths (never on the commit fast path), and feeds the per-partition
//! `conflicts_true` / `conflicts_aliased` counters the online analyzer's
//! orec-table resize proposals are built on.
//!
//! ## Kill safety
//!
//! A transaction can be asked to die remotely: writers kill visible
//! readers during arbitration, and the quiesce rescue stage (see
//! [`crate::stm`]'s `bump_epoch_and_quiesce`) kills attempts that block a
//! structural window past its soft deadline. The request is one store
//! into the victim's slot (`kill := serial of the attempt to abort`); the
//! victim polls it at every *check-point boundary* — transactional read
//! ([`Tx::read`]/[`Tx::read_raw`]), write, orec acquisition (both the
//! loop head and the bounded `wait_or_fail` spin), visible-reader
//! arbitration waits, and commit entry — and unwinds with
//! [`AbortKind::Killed`] through the ordinary `fail` → `rollback` path.
//!
//! Aborting at exactly those boundaries can never observe or publish torn
//! state:
//!
//! * **Nothing is published before commit.** Writes are buffered in the
//!   private write set; memory is only written back inside `try_commit`
//!   *after* every lock is held and validation has passed — and the kill
//!   flag is not consulted anywhere past that point, so a kill either
//!   lands before the attempt is irreversibly committed (it aborts
//!   cleanly) or it is too late and the attempt commits as if the kill
//!   had never happened. There is no in-between.
//! * **The abort path releases everything.** `rollback` restores every
//!   encounter-acquired orec to its pre-acquisition word, clears the
//!   victim's visible-reader bits, reclaims transactional allocations and
//!   flips the slot's `seq` back to even — the same path every
//!   conflict abort takes, exercised constantly; a killed abort is not a
//!   special case.
//! * **The victim cannot observe torn data either.** Between check
//!   points the attempt only reads through the seqlock sandwich /
//!   reader-bit protocols, which are kill-oblivious; the kill merely
//!   decides *whether to continue*, never *what was read*.
//! * **Stale kills are harmless.** The flag names one attempt serial;
//!   `Tx::begin` clears it before publishing the next serial, so a kill
//!   that loses the race with attempt turnover matches no current attempt
//!   and is ignored.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cm::{self, XorShift64};
use crate::config::CmPolicy;
use crate::config::{self, AcquireMode, DynConfig, ReadMode, ReaderArb};
use crate::error::{Abort, AbortKind, TxResult};
use crate::orec::{is_locked, make_version, owner_of, reader_bit, version_of, Orec, RingSlot};
use crate::partition::{orec_index, Partition};
use crate::profiler::{self, BucketTouch, SampleTouch, TxSample};
use crate::pvar::{PVar, PVarBinding};
use crate::stats::LocalStats;
use crate::stm::{StmInner, ThreadCtx};
use crate::telemetry::{self, EventKind};
use crate::tuner::TuneInput;
use crate::tvar::TVar;
use crate::word::TxWord;

/// An invisible-read record: which orec was read, the lock word observed,
/// and the word address the read covered (for aliasing classification of
/// validation failures; 24 bytes, the validation pass touches only the
/// first 16 until an entry fails).
struct ReadEntry {
    orec: *const Orec,
    seen: u64,
    addr: usize,
}

/// A buffered write.
struct WriteEntry {
    var: *const AtomicU64,
    val: u64,
    orec: *const Orec,
    /// Lock word to restore on abort (valid iff `acquired_here`).
    prev: u64,
    /// Whether *this entry* performed the orec acquisition (first entry per
    /// orec does; later entries find it already owned).
    acquired_here: bool,
    /// Index into the partition-view table (partition attribution).
    touch: u16,
}

/// Per-partition state of one transaction attempt: the *partition view*.
///
/// The config word is loaded and decoded exactly once, on first touch (see
/// the module docs for why that is sound); every later access resolves to
/// this cached snapshot.
struct PartView {
    part: Arc<Partition>,
    /// `Arc::as_ptr(&part)`, cached for the MRU fast-path comparison.
    ptr: *const Partition,
    cfg: DynConfig,
    /// Orec-table base pointer, snapshotted with `mask` at view creation
    /// (stable for the attempt — see the module docs on resizes).
    table: *const Orec,
    /// Orec-table index mask (`orec_count - 1`).
    mask: usize,
    /// Version-ring base pointer and depth, snapshotted with the table at
    /// view creation (swapped only inside the same flag→quiesce windows,
    /// so equally stable for the attempt). Orec *i* owns ring slots
    /// `i*ring_depth..(i+1)*ring_depth`.
    ring: *const RingSlot,
    ring_depth: usize,
    /// Generation of the config word the view was decoded from. Stable for
    /// the whole attempt (quiesce protocol); kept for diagnostics and
    /// debug-mode verification at commit.
    generation: u32,
    stats: LocalStats,
    wrote: bool,
}

/// Type-erased deferred arena operation (see [`crate::arena`]).
struct ReclaimEntry {
    arena: *const (),
    raw: u32,
    /// Reuse tag: for alloc-log entries, the slot's original tag (restored
    /// on rollback); for free-log entries, filled with the commit version
    /// when the free executes.
    tag: u64,
    push_free: unsafe fn(*const (), u32, u64),
}

/// Stamped open-addressing map `usize key -> u32 index`, reused across
/// transactions without clearing (entries from older transactions are
/// recognizably stale by their stamp). Two instances per thread: the
/// write-set index (keyed by variable address) and the partition-view index
/// (keyed by partition pointer).
struct StampedMap {
    keys: Vec<usize>,
    vals: Vec<u32>,
    stamps: Vec<u64>,
    stamp: u64,
    mask: usize,
    len: usize,
}

impl StampedMap {
    fn new() -> Self {
        let cap = 64;
        StampedMap {
            keys: vec![0; cap],
            vals: vec![0; cap],
            stamps: vec![0; cap],
            stamp: 0,
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn begin_txn(&mut self) {
        self.stamp += 1;
        self.len = 0;
    }

    #[inline(always)]
    fn slot_of(&self, addr: usize) -> usize {
        ((addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & self.mask
    }

    #[inline]
    fn get(&self, addr: usize) -> Option<u32> {
        let mut i = self.slot_of(addr);
        while self.stamps[i] == self.stamp {
            if self.keys[i] == addr {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    fn insert(&mut self, addr: usize, val: u32) {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = self.slot_of(addr);
        while self.stamps[i] == self.stamp {
            if self.keys[i] == addr {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
        self.keys[i] = addr;
        self.vals[i] = val;
        self.stamps[i] = self.stamp;
        self.len += 1;
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let old_stamps = std::mem::take(&mut self.stamps);
        let cap = old_keys.len() * 2;
        self.keys = vec![0; cap];
        self.vals = vec![0; cap];
        self.stamps = vec![0; cap];
        self.mask = cap - 1;
        let live = self.stamp;
        self.len = 0;
        for i in 0..old_keys.len() {
            if old_stamps[i] == live {
                // Re-insert without growth recursion (cap just doubled).
                let mut j = self.slot_of(old_keys[i]);
                while self.stamps[j] == self.stamp {
                    j = (j + 1) & self.mask;
                }
                self.keys[j] = old_keys[i];
                self.vals[j] = old_vals[i];
                self.stamps[j] = self.stamp;
                self.len += 1;
            }
        }
    }
}

/// Reusable per-thread transaction state.
pub(crate) struct TxScratch {
    rv: u64,
    serial: u64,
    attempts: u32,
    in_attempt: bool,
    engine_fail: bool,
    read_set: Vec<ReadEntry>,
    write_set: Vec<WriteEntry>,
    visible: Vec<*const Orec>,
    views: Vec<PartView>,
    ws_index: StampedMap,
    view_index: StampedMap,
    /// Index of the most recently used view (MRU fast path); `u32::MAX`
    /// when no view has been touched this attempt.
    last_view: u32,
    alloc_log: Vec<ReclaimEntry>,
    free_log: Vec<ReclaimEntry>,
    rng: XorShift64,
    /// Whether the current attempt is being access-profiled (decided at
    /// begin from the thread serial; see [`crate::profiler`]).
    sampling: bool,
    /// Whether the current attempt records telemetry lifecycle events and
    /// latency histograms (1-in-N, decided at begin; see
    /// [`crate::telemetry`]).
    tele_sampling: bool,
    /// Begin timestamp of a telemetry-sampled attempt (stale otherwise).
    tele_begin: Instant,
    /// Sampled accesses: (view index, address bucket, is_write).
    sample_log: Vec<(u16, u16, bool)>,
    /// Partition views of the snapshot read path (reused across
    /// [`crate::ThreadCtx::snapshot_read`] attempts; see
    /// [`crate::snapshot`]).
    pub(crate) ro_views: Vec<crate::snapshot::RoView>,
}

impl core::fmt::Debug for TxScratch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TxScratch")
            .field("in_attempt", &self.in_attempt)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .finish_non_exhaustive()
    }
}

impl TxScratch {
    pub(crate) fn new(seed: u64) -> Self {
        TxScratch {
            rv: 0,
            serial: 0,
            attempts: 0,
            in_attempt: false,
            engine_fail: false,
            read_set: Vec::new(),
            write_set: Vec::new(),
            visible: Vec::new(),
            views: Vec::new(),
            ws_index: StampedMap::new(),
            view_index: StampedMap::new(),
            last_view: u32::MAX,
            alloc_log: Vec::new(),
            free_log: Vec::new(),
            rng: XorShift64::new(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) | 1),
            sampling: false,
            tele_sampling: false,
            tele_begin: Instant::now(),
            sample_log: Vec::new(),
            ro_views: Vec::new(),
        }
    }
}

/// An in-flight transaction. Obtained inside [`ThreadCtx::run`]; all
/// transactional operations go through it.
pub struct Tx<'e, 's> {
    stm: &'s StmInner,
    slot: usize,
    s: &'s mut TxScratch,
    /// Invariant in `'e`: references passed to transactional operations
    /// must outlive the whole `run` call.
    _env: PhantomData<fn(&'e ()) -> &'e ()>,
}

impl<'e, 's> Tx<'e, 's> {
    #[inline(always)]
    fn my_slot(&self) -> &crate::stm::ThreadSlot {
        &self.stm.slots[self.slot]
    }

    #[inline(always)]
    fn killed(&self) -> bool {
        self.my_slot().kill.load(Ordering::SeqCst) == self.s.serial
    }

    /// Number of failed attempts of the current transaction so far.
    pub fn attempts(&self) -> u32 {
        self.s.attempts
    }

    /// Debug aid: re-validates the invisible read set right now and
    /// reports `(still_valid, read_set_len, rv)`. Used by diagnostics to
    /// distinguish "stale view that validation would catch" from a genuine
    /// opacity hole.
    pub fn debug_validate(&self) -> (bool, usize, u64) {
        (
            self.validate_read_set().is_ok(),
            self.s.read_set.len(),
            self.s.rv,
        )
    }

    /// The snapshot (read version) of this attempt.
    pub fn read_version(&self) -> u64 {
        self.s.rv
    }

    /// The configuration generation of `part` as cached by this attempt's
    /// partition view, or `None` if the partition has not been touched in
    /// this attempt. Diagnostic: stable for the whole attempt (see the
    /// module docs on partition views).
    pub fn cached_generation(&self, part: &Arc<Partition>) -> Option<u32> {
        let ptr = Arc::as_ptr(part);
        self.s
            .views
            .iter()
            .find(|v| v.ptr == ptr)
            .map(|v| v.generation)
    }

    fn begin(&mut self) {
        let s = &mut *self.s;
        s.serial += 1;
        let slot = &self.stm.slots[self.slot];
        // Clear the kill word *before* publishing the new serial so a
        // killer that reads the new serial cannot have its request erased
        // (both SeqCst; see DESIGN.md reconfiguration notes).
        slot.kill.store(0, Ordering::SeqCst);
        slot.serial.store(s.serial, Ordering::SeqCst);
        let seq = slot.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert_q(seq.is_multiple_of(2), "begin from inside a transaction");
        slot.start_epoch.store(
            self.stm.switch_epoch.load(Ordering::SeqCst),
            Ordering::SeqCst,
        );
        s.rv = self.stm.clock.now();
        s.read_set.clear();
        s.write_set.clear();
        s.visible.clear();
        s.views.clear();
        s.alloc_log.clear();
        s.free_log.clear();
        s.ws_index.begin_txn();
        s.view_index.begin_txn();
        s.last_view = u32::MAX;
        s.engine_fail = false;
        s.in_attempt = true;
        let period = self.stm.profile_period.load(Ordering::Relaxed);
        s.sampling = period != 0 && s.serial.is_multiple_of(period);
        if s.sampling {
            s.sample_log.clear();
        }
        // Telemetry sampling mirrors the profiler's idiom: one relaxed
        // load decides, and everything costly (Instant reads, ring
        // writes) happens only on the 1-in-N sampled attempts.
        s.tele_sampling = telemetry::enabled() && {
            let p = telemetry::tx_sample_period();
            p != 0 && s.serial.is_multiple_of(p)
        };
        if s.tele_sampling {
            s.tele_begin = Instant::now();
            telemetry::lane_event(self.slot, EventKind::TxBegin, self.slot as u64, s.serial, 0);
        }
    }

    /// Looks up an already-created view for `ptr` (MRU fast path, then the
    /// stamped index).
    #[inline(always)]
    fn view_lookup(&mut self, ptr: *const Partition) -> Option<u16> {
        let li = self.s.last_view as usize;
        if li < self.s.views.len() && self.s.views[li].ptr == ptr {
            return Some(li as u16);
        }
        if let Some(i) = self.s.view_index.get(ptr as usize) {
            self.s.last_view = i;
            return Some(i as u16);
        }
        None
    }

    /// First contact with a partition this attempt: loads the config word
    /// once, decodes it and records the view. Aborts if the partition is
    /// mid-switch. See the module docs for why one decode per attempt is
    /// sound.
    fn view_create(&mut self, part: Arc<Partition>) -> Result<u16, Abort> {
        assert_eq!(
            part.stm_id, self.stm.id,
            "partition belongs to a different Stm"
        );
        let word = part.config_word();
        if config::is_switching(word) {
            // A privatization hold is a switching flag plus the privatized
            // classification bit: same abort-and-back-off path, counted
            // separately so operators can tell bulk-operation collisions
            // from tuning churn.
            if config::is_privatized(word) {
                part.stats.privatized_collisions(self.slot, 1);
            }
            part.stats.aborts_switching(self.slot, 1);
            part.stats.starts(self.slot, 1);
            self.s.engine_fail = true;
            return Err(Abort(()));
        }
        let ptr = Arc::as_ptr(&part);
        // Snapshot the orec-table registers *after* observing the flag
        // clear: the resize protocol swaps them only inside a flagged
        // window our attempt provably does not straddle (module docs).
        let (table, mask) = part.table_view();
        let (ring, ring_depth) = part.ring_view();
        let i = self.s.views.len() as u32;
        self.s.views.push(PartView {
            part,
            ptr,
            cfg: config::decode(word),
            table,
            mask,
            ring,
            ring_depth,
            generation: config::generation(word),
            stats: LocalStats::default(),
            wrote: false,
        });
        self.s.view_index.insert(ptr as usize, i);
        self.s.last_view = i;
        Ok(i as u16)
    }

    /// Resolves the partition view for `part` (raw tier: the caller names
    /// the partition).
    fn view_of(&mut self, part: &'e Arc<Partition>) -> Result<u16, Abort> {
        let ptr = Arc::as_ptr(part);
        if let Some(i) = self.view_lookup(ptr) {
            return Ok(i);
        }
        self.view_create(Arc::clone(part))
    }

    /// Resolves the partition view for a bound variable from its binding
    /// cell (bound tier).
    ///
    /// A repartition may rebind the variable concurrently — but only while
    /// every involved partition carries the switching flag, and the rebind
    /// happens strictly before the flags clear (see [`crate::repartition`]).
    /// So after creating a view with the flag observed *clear*, re-loading
    /// the binding and seeing the same pointer proves the binding is
    /// current for the rest of the attempt: any migration still in flight
    /// at view-creation time would have shown its flag, and any migration
    /// that starts later must wait for this attempt to quiesce. A mismatch
    /// means the load straddled a completing migration — the attempt
    /// aborts exactly as if it had caught the switching flag itself.
    ///
    /// A view-cache *hit* needs no recheck: the hit proves a flag-clear
    /// touch of that partition earlier in this attempt, and the fresh
    /// binding load equalling the view's pointer extends the same argument
    /// to this access.
    fn view_of_binding(&mut self, binding: &'e PVarBinding) -> Result<u16, Abort> {
        let ptr = binding.load();
        if let Some(i) = self.view_lookup(ptr) {
            return Ok(i);
        }
        let ti = self.view_create(PVarBinding::arc_of(ptr))?;
        if binding.load() != ptr {
            return Err(self.fail(ti, AbortKind::Switching));
        }
        Ok(ti)
    }

    /// Classifies a conflict against `orec` while accessing `addr` using
    /// the orec's acquisition hint: same address → true data conflict,
    /// different address → aliased (false) conflict. One relaxed load plus
    /// a compare, on abort paths only — see the module docs. A zero hint
    /// (no acquisition recorded yet) conservatively counts as true, so the
    /// aliased share never over-reports.
    #[inline]
    fn note_conflict(&mut self, ti: u16, orec: &Orec, addr: usize) {
        let hint = orec.hint_addr();
        let stats = &mut self.s.views[ti as usize].stats;
        if hint != 0 && hint != addr as u64 {
            stats.conflicts_aliased += 1;
        } else {
            stats.conflicts_true += 1;
        }
    }

    /// Records an abort cause against a partition and flags the attempt as
    /// engine-failed. Returns the `Abort` token to propagate.
    fn fail(&mut self, ti: u16, kind: AbortKind) -> Abort {
        let st = &self.s.views[ti as usize].part.stats;
        match kind {
            AbortKind::WLockConflict => st.aborts_wlock(self.slot, 1),
            AbortKind::RLockConflict => st.aborts_rlock(self.slot, 1),
            AbortKind::Validation => st.aborts_validation(self.slot, 1),
            AbortKind::Killed => st.aborts_killed(self.slot, 1),
            AbortKind::Switching => st.aborts_switching(self.slot, 1),
            AbortKind::User => st.aborts_user(self.slot, 1),
        }
        if self.s.tele_sampling {
            let reason = match kind {
                AbortKind::WLockConflict => telemetry::codes::ABORT_WLOCK,
                AbortKind::RLockConflict => telemetry::codes::ABORT_RLOCK,
                AbortKind::Validation => telemetry::codes::ABORT_VALIDATION,
                AbortKind::Killed => telemetry::codes::ABORT_KILLED,
                AbortKind::Switching => telemetry::codes::ABORT_SWITCHING,
                AbortKind::User => telemetry::codes::ABORT_USER,
            };
            telemetry::lane_event(
                self.slot,
                EventKind::TxAbort,
                self.slot as u64,
                reason,
                self.s.attempts as u64,
            );
        }
        self.s.engine_fail = true;
        Abort(())
    }

    /// Transactional read of a partition-bound variable.
    ///
    /// The partition is the one the variable is bound to
    /// ([`Partition::tvar`], possibly moved since by the repartitioner);
    /// no partition is named at the access site.
    #[inline]
    pub fn read<T: TxWord>(&mut self, var: &'e PVar<T>) -> TxResult<T> {
        let ti = self.view_of_binding(&var.binding)?;
        self.read_at(ti, &var.var)
    }

    /// Transactional write (buffered until commit) of a partition-bound
    /// variable.
    #[inline]
    pub fn write<T: TxWord>(&mut self, var: &'e PVar<T>, value: T) -> TxResult<()> {
        let ti = self.view_of_binding(&var.binding)?;
        self.write_at(ti, &var.var, value)
    }

    /// Read-modify-write convenience on a partition-bound variable.
    #[inline]
    pub fn modify<T: TxWord>(&mut self, var: &'e PVar<T>, f: impl FnOnce(T) -> T) -> TxResult<T> {
        let v = self.read(var)?;
        let nv = f(v);
        self.write(var, nv)?;
        Ok(nv)
    }

    /// Transactional read, raw tier: the caller names the partition that
    /// guards `var` and must always name the *same* partition for it (see
    /// the crate-level soundness contract). Prefer [`Tx::read`] on
    /// [`PVar`]s, which enforces the association by construction.
    pub fn read_raw<T: TxWord>(
        &mut self,
        part: &'e Arc<Partition>,
        var: &'e TVar<T>,
    ) -> TxResult<T> {
        let ti = self.view_of(part)?;
        self.read_at(ti, var)
    }

    /// Shared read body (bound and raw tiers) against a resolved view.
    fn read_at<T: TxWord>(&mut self, ti: u16, var: &'e TVar<T>) -> TxResult<T> {
        if self.killed() {
            return Err(self.fail(ti, AbortKind::Killed));
        }
        self.s.views[ti as usize].stats.reads += 1;
        let addr = var.addr();
        if self.s.sampling {
            self.s
                .sample_log
                .push((ti, profiler::bucket_of(addr), false));
        }
        if let Some(ei) = self.s.ws_index.get(addr) {
            let e = &self.s.write_set[ei as usize];
            assert_eq!(
                e.var as usize, addr,
                "ws_index returned entry for wrong address"
            );
            return Ok(T::from_word(e.val));
        }
        let (orec, read_mode) = {
            let v = &self.s.views[ti as usize];
            // SAFETY: index masked into the view's table, alive for the
            // partition's lifetime (module docs).
            let orec = unsafe { v.table.add(orec_index(v.mask, addr, v.cfg.granularity)) };
            (orec, v.cfg.read_mode)
        };
        let cell = &var.cell as *const AtomicU64;
        let w = match read_mode {
            ReadMode::Invisible => self.read_invisible(ti, orec, cell)?,
            ReadMode::Visible => self.read_visible(ti, orec, cell)?,
        };
        Ok(T::from_word(w))
    }

    /// Transactional write (buffered until commit), raw tier: see
    /// [`Tx::read_raw`] for the caller's obligations.
    pub fn write_raw<T: TxWord>(
        &mut self,
        part: &'e Arc<Partition>,
        var: &'e TVar<T>,
        value: T,
    ) -> TxResult<()> {
        let ti = self.view_of(part)?;
        self.write_at(ti, var, value)
    }

    /// Shared write body (bound and raw tiers) against a resolved view.
    fn write_at<T: TxWord>(&mut self, ti: u16, var: &'e TVar<T>, value: T) -> TxResult<()> {
        if self.killed() {
            return Err(self.fail(ti, AbortKind::Killed));
        }
        {
            let t = &mut self.s.views[ti as usize];
            t.stats.writes += 1;
            t.wrote = true;
        }
        let addr = var.addr();
        if self.s.sampling {
            self.s
                .sample_log
                .push((ti, profiler::bucket_of(addr), true));
        }
        if let Some(ei) = self.s.ws_index.get(addr) {
            let e = &mut self.s.write_set[ei as usize];
            assert_eq!(
                e.var as usize, addr,
                "ws_index returned entry for wrong address"
            );
            e.val = value.to_word();
            return Ok(());
        }
        let (orec, acquire) = {
            let v = &self.s.views[ti as usize];
            // SAFETY: as in `read_at`.
            let orec = unsafe { v.table.add(orec_index(v.mask, addr, v.cfg.granularity)) };
            (orec, v.cfg.acquire)
        };
        let wi = self.s.write_set.len();
        self.s.write_set.push(WriteEntry {
            var: &var.cell as *const AtomicU64,
            val: value.to_word(),
            orec,
            prev: 0,
            acquired_here: false,
            touch: ti,
        });
        self.s.ws_index.insert(addr, wi as u32);
        if acquire == AcquireMode::Encounter {
            self.acquire_orec(wi)?;
        }
        if crate::fault::enabled() && crate::fault::should_panic_mid_tx(self.stm.id) {
            // FaultSite::MidTxPanic: user code dying mid-attempt, possibly
            // holding encounter locks. `Drop for Tx` rolls back.
            panic!("injected mid-tx panic (fault plan)");
        }
        Ok(())
    }

    /// Read-modify-write convenience, raw tier.
    pub fn modify_raw<T: TxWord>(
        &mut self,
        part: &'e Arc<Partition>,
        var: &'e TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> TxResult<T> {
        let v = self.read_raw(part, var)?;
        let nv = f(v);
        self.write_raw(part, var, nv)?;
        Ok(nv)
    }

    fn read_invisible(
        &mut self,
        ti: u16,
        orec: *const Orec,
        cell: *const AtomicU64,
    ) -> Result<u64, Abort> {
        // SAFETY: `orec` points into the partition's table, kept alive by
        // the `Arc` in `views[ti]` for the rest of the attempt; `cell`
        // outlives `'e` by the signature of `read`.
        let orec_ref = unsafe { &*orec };
        loop {
            let l1 = orec_ref.load_lock();
            if is_locked(l1) {
                if owner_of(l1) == self.slot {
                    // My encounter-time lock covers this word (possibly via
                    // a different address). The committed value is stable
                    // while I hold the lock and was validated <= rv at
                    // acquisition.
                    // SAFETY: see above.
                    return Ok(unsafe { &*cell }.load(Ordering::Acquire));
                }
                self.wait_or_fail(ti, orec_ref, AbortKind::WLockConflict, cell as usize)?;
                continue;
            }
            // SAFETY: see above.
            let v = unsafe { &*cell }.load(Ordering::Acquire);
            let l2 = orec_ref.load_lock();
            if l1 != l2 {
                continue;
            }
            if version_of(l1) > self.s.rv {
                // The committed value is newer than our snapshot: extend the
                // snapshot and *restart the load*. Returning `v` here would
                // be unsound — it may have changed again between `l2` and
                // the extension's clock sample, and a read-only transaction
                // never revalidates (TinySTM restarts the load too).
                self.extend(ti)?;
                continue;
            }
            self.s.read_set.push(ReadEntry {
                orec,
                seen: l1,
                addr: cell as usize,
            });
            return Ok(v);
        }
    }

    fn read_visible(
        &mut self,
        ti: u16,
        orec: *const Orec,
        cell: *const AtomicU64,
    ) -> Result<u64, Abort> {
        // SAFETY: as in `read_invisible`.
        let orec_ref = unsafe { &*orec };
        let bit = reader_bit(self.slot);
        if orec_ref.add_reader(bit) {
            self.s.visible.push(orec);
        }
        loop {
            let l = orec_ref.lock.load(Ordering::SeqCst);
            if is_locked(l) && owner_of(l) != self.slot {
                // A writer owns the orec. It may be waiting for (or
                // killing) us; back off via the CM.
                self.wait_or_fail(ti, orec_ref, AbortKind::RLockConflict, cell as usize)?;
                continue;
            }
            // SAFETY: as in `read_invisible`.
            let v = unsafe { &*cell }.load(Ordering::Acquire);
            if !is_locked(l) && version_of(l) > self.s.rv {
                self.extend(ti)?;
            }
            // Protected by the reader bit from here on: no read-set entry.
            return Ok(v);
        }
    }

    /// Contention-managed wait on a locked orec; `Ok(())` means "retry the
    /// protocol loop", `Err` means the attempt failed. `addr` is the word
    /// address the caller was accessing, used to classify a final conflict
    /// abort as true or aliased against the holder's acquisition hint.
    fn wait_or_fail(&mut self, ti: u16, orec: &Orec, kind: AbortKind, addr: usize) -> TxResult<()> {
        match self.s.views[ti as usize].cfg.cm {
            CmPolicy::SuicideBackoff => {
                self.note_conflict(ti, orec, addr);
                Err(self.fail(ti, kind))
            }
            CmPolicy::DelayThenAbort => {
                let slot = self.my_slot();
                let serial = self.s.serial;
                let freed = cm::spin_until(cm::DELAY_SPIN_BOUND, || {
                    !is_locked(orec.lock.load(Ordering::SeqCst))
                        || slot.kill.load(Ordering::SeqCst) == serial
                });
                if self.killed() {
                    return Err(self.fail(ti, AbortKind::Killed));
                }
                if freed {
                    Ok(())
                } else {
                    self.note_conflict(ti, orec, addr);
                    Err(self.fail(ti, kind))
                }
            }
        }
    }

    /// Lazy snapshot extension: advance `rv` to the current clock after
    /// revalidating every invisible read.
    fn extend(&mut self, ti: u16) -> TxResult<()> {
        let new_rv = self.stm.clock.now();
        match self.validate_read_set() {
            Ok(()) => {
                self.s.rv = new_rv;
                self.s.views[ti as usize].stats.extensions += 1;
                Ok(())
            }
            Err(i) => {
                self.note_failed_entry(ti, i);
                Err(self.fail(ti, AbortKind::Validation))
            }
        }
    }

    /// Classifies the validation failure of read-set entry `i` (true vs
    /// aliased). The counters are attributed to the partition *owning the
    /// failing orec* — found by locating the view whose cached table
    /// contains the pointer (a linear scan over the handful of touched
    /// views, abort path only) — so a multi-partition transaction never
    /// charges aliasing to the wrong table. `ti` is the fallback when no
    /// view matches (cannot happen for entries recorded this attempt, but
    /// telemetry must not panic). The *abort* itself is still attributed
    /// by the caller's `fail(ti, ..)`, unchanged.
    fn note_failed_entry(&mut self, ti: u16, i: usize) {
        let (orec, addr) = {
            let e = &self.s.read_set[i];
            (e.orec, e.addr)
        };
        let owner = self
            .s
            .views
            .iter()
            .position(|v| {
                let lo = v.table as usize;
                let hi = lo + (v.mask + 1) * core::mem::size_of::<Orec>();
                (lo..hi).contains(&(orec as usize))
            })
            .map_or(ti, |p| p as u16);
        // SAFETY: read-set orecs belong to touched partitions, alive for
        // the attempt.
        self.note_conflict(owner, unsafe { &*orec }, addr);
    }

    /// Validates the invisible read set in one batched pass: the next
    /// entry's orec line is prefetched while the current one is checked,
    /// consecutive entries on the same orec with the same observed word
    /// collapse to one load (common under stripe granularity, where a
    /// structure walk maps neighbouring nodes onto one orec), and the
    /// first mismatching entry exits early.
    ///
    /// `Err(i)` reports the index of the failing entry (for aliasing
    /// classification on the abort path).
    fn validate_read_set(&self) -> Result<(), usize> {
        let rs = &self.s.read_set;
        let mut prev: *const Orec = core::ptr::null();
        let mut prev_seen = 0u64;
        for (i, e) in rs.iter().enumerate() {
            if let Some(next) = rs.get(i + 1) {
                prefetch_orec(next.orec);
            }
            if e.orec == prev && e.seen == prev_seen {
                continue;
            }
            // SAFETY: read-set orecs belong to touched partitions, alive
            // for the attempt.
            let l = unsafe { &*e.orec }.load_lock();
            if l == e.seen {
                prev = e.orec;
                prev_seen = e.seen;
                continue;
            }
            if is_locked(l) && owner_of(l) == self.slot {
                // Acquired by me after the read; acquisition validated the
                // version then, and it cannot change while I hold the lock.
                continue;
            }
            return Err(i);
        }
        Ok(())
    }

    /// Acquires the orec of write-set entry `wi` (encounter- or
    /// commit-time).
    fn acquire_orec(&mut self, wi: usize) -> TxResult<()> {
        let (orec_ptr, ti, addr) = {
            let e = &self.s.write_set[wi];
            (e.orec, e.touch, e.var as usize)
        };
        // SAFETY: as in `read_invisible`.
        let orec = unsafe { &*orec_ptr };
        let my_bit = reader_bit(self.slot);
        loop {
            if self.killed() {
                return Err(self.fail(ti, AbortKind::Killed));
            }
            let l = orec.lock.load(Ordering::SeqCst);
            if is_locked(l) {
                if owner_of(l) == self.slot {
                    // Already held via an earlier write entry.
                    return Ok(());
                }
                self.wait_or_fail(ti, orec, AbortKind::WLockConflict, addr)?;
                continue;
            }
            if version_of(l) > self.s.rv {
                self.extend(ti)?;
            }
            if orec.try_lock(l, self.slot).is_err() {
                continue;
            }
            {
                let e = &mut self.s.write_set[wi];
                e.prev = l;
                e.acquired_here = true;
            }
            // Validate my earlier invisible reads of this orec: they must
            // have seen exactly the pre-acquisition word. (Classified
            // against the hint *before* we overwrite it below — the hint
            // still names the writer whose commit moved the version.)
            for i in 0..self.s.read_set.len() {
                let e = &self.s.read_set[i];
                if e.orec == orec_ptr && e.seen != l {
                    self.note_failed_entry(ti, i);
                    return Err(self.fail(ti, AbortKind::Validation));
                }
            }
            // Publish the acquisition address (aliasing telemetry): the
            // CAS above made this line exclusively ours, so the store is
            // effectively free.
            orec.note_addr(addr);
            // Arbitrate with visible readers (TOCTOU-safe: checked after
            // the CAS, so any reader that registered before observing our
            // lock is seen here).
            let others = orec.readers_except(my_bit);
            if others != 0 {
                match self.s.views[ti as usize].cfg.reader_arb {
                    ReaderArb::ReaderWins => {
                        return Err(self.fail(ti, AbortKind::RLockConflict));
                    }
                    ReaderArb::WriterWinsKill => self.kill_readers(ti, orec, my_bit)?,
                }
            }
            if crate::fault::enabled() {
                self.fault_stall(ti)?;
            }
            return Ok(());
        }
    }

    /// Fault-injection site
    /// [`StallHoldingLocks`](crate::fault::FaultSite::StallHoldingLocks):
    /// stalls right after a successful orec acquisition, i.e. while
    /// holding an encounter lock — the exact shape of a stuck transaction
    /// blocking a quiesce. The stall is *cooperative*: it polls the kill
    /// flag, so the rescue stage can reach it the same way it reaches any
    /// transaction parked in the engine's own wait loops (a plain `sleep`
    /// would model a descheduled thread instead, which is what the hard
    /// deadline's `StuckSlot` path covers).
    #[cold]
    fn fault_stall(&mut self, ti: u16) -> TxResult<()> {
        let Some(budget) = crate::fault::stall_budget(self.stm.id) else {
            return Ok(());
        };
        let t0 = Instant::now();
        while t0.elapsed() < budget {
            if self.killed() {
                return Err(self.fail(ti, AbortKind::Killed));
            }
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Writer-wins arbitration: kill all visible readers of `orec` and wait
    /// for their bits to clear, aborting if we are killed ourselves. The
    /// wait is *bounded*: a writer that cannot drain readers after many
    /// rounds aborts instead of spinning — under heavy kill storms the
    /// unbounded wait is a fairness hazard (a worker can starve for
    /// minutes), and an abort+backoff resolves it.
    fn kill_readers(&mut self, ti: u16, orec: &Orec, my_bit: u64) -> TxResult<()> {
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            if rounds > 64 {
                return Err(self.fail(ti, AbortKind::RLockConflict));
            }
            let others = orec.readers_except(my_bit);
            if others == 0 {
                return Ok(());
            }
            let mut bits = others;
            while bits != 0 {
                let victim_slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if victim_slot < self.stm.slots.len() && victim_slot != self.slot {
                    let victim = &self.stm.slots[victim_slot];
                    let target = victim.serial.load(Ordering::SeqCst);
                    victim.kill.store(target, Ordering::SeqCst);
                    self.s.views[ti as usize].stats.kills += 1;
                }
            }
            // Wait for the drains; victims abort promptly (they poll their
            // kill word at every operation and in every CM spin).
            let slot = self.my_slot();
            let serial = self.s.serial;
            let drained = cm::spin_until(4096, || {
                orec.readers_except(my_bit) == 0 || slot.kill.load(Ordering::SeqCst) == serial
            });
            if self.killed() {
                return Err(self.fail(ti, AbortKind::Killed));
            }
            if !drained {
                std::thread::yield_now();
            }
        }
    }

    /// Commit the attempt. Returns `true` on success; on failure the
    /// attempt has been rolled back.
    ///
    /// Split into a read-transaction path (no write set: nothing to
    /// acquire, validate or publish — straight to [`Tx::finish_commit`])
    /// and an update path ([`Tx::commit_update`]), mirroring the snapshot
    /// read path's separate lifecycle (see [`crate::snapshot`]).
    fn try_commit(&mut self) -> bool {
        debug_assert_q(self.s.in_attempt, "commit without begin");
        if self.killed() {
            if !self.s.views.is_empty() {
                let _ = self.fail(0, AbortKind::Killed);
            }
            self.rollback();
            return false;
        }
        if self.s.write_set.is_empty() {
            // Read-only: invisible reads were validated <= rv at read time
            // (mutually consistent snapshot), visible reads are protected
            // by reader bits. Nothing to validate.
            self.finish_commit();
            return true;
        }
        self.commit_update()
    }

    /// The update-transaction half of the commit pipeline: commit-time
    /// acquisitions, version draw, read-set validation, history
    /// publication + write-back, release.
    fn commit_update(&mut self) -> bool {
        // Commit-time acquisitions for partitions configured CTL.
        for wi in 0..self.s.write_set.len() {
            let needs = {
                let e = &self.s.write_set[wi];
                self.s.views[e.touch as usize].cfg.acquire == AcquireMode::Commit
                    && !e.acquired_here
            };
            if needs && self.acquire_orec(wi).is_err() {
                self.rollback();
                return false;
            }
        }
        let wv = self.stm.clock.advance();
        if self.s.rv + 1 != wv && !self.s.read_set.is_empty() {
            if let Err(i) = self.validate_read_set() {
                let ti = self.s.write_set[0].touch;
                self.note_failed_entry(ti, i);
                let _ = self.fail(ti, AbortKind::Validation);
                self.rollback();
                return false;
            }
            if self.s.tele_sampling {
                let len = self.s.read_set.len() as u64;
                telemetry::global().validate_len.record(len);
                telemetry::lane_event(self.slot, EventKind::TxValidate, self.slot as u64, len, 0);
            }
        }
        // Point of no return: publish each overwritten value into its
        // orec's version ring (for snapshot readers — see
        // `crate::snapshot`), write back, then release with the commit
        // version. Value stores are Release so a reader observing the new
        // lock word also observes the data; the l1/value/l2 sandwich
        // rejects any value read concurrent with this window. The history
        // record is published *before* the cell store so a snapshot reader
        // that observes our commit (lock word = wv) can always find the
        // pre-image it needs.
        let mut floor = self.stm.ro_floor.load(Ordering::SeqCst);
        let mut floor_fresh = false;
        for wi in 0..self.s.write_set.len() {
            let (var, val, orec, ti) = {
                let e = &self.s.write_set[wi];
                (e.var, e.val, e.orec, e.touch)
            };
            // SAFETY: `var` outlives `'e` (signature of `write`); the
            // orec is held, so we are the only writer.
            let old = unsafe { &*var }.load(Ordering::Acquire);
            self.ring_publish(
                ti,
                orec,
                var as usize,
                old,
                wv,
                &mut floor,
                &mut floor_fresh,
            );
            // SAFETY: as above.
            unsafe { &*var }.store(val, Ordering::Release);
        }
        for e in &self.s.write_set {
            if e.acquired_here {
                // SAFETY: orec alive via the touched partition.
                unsafe { &*e.orec }.unlock(make_version(wv));
            }
        }
        self.finish_commit();
        true
    }

    /// Publishes one overwritten value into the version ring of `orec`
    /// (held by this transaction): the record `(addr, old, to = wv)` says
    /// "`addr` held `old` until commit `wv`". Victim slot: any empty slot,
    /// else the record with the smallest close stamp. A victim whose stamp
    /// is above the snapshot eviction floor may still be needed by a
    /// pinned reader, so the *new* record is diverted to the partition's
    /// overflow list instead and the ring is left untouched (records never
    /// migrate between the two — see `crate::snapshot` for why that
    /// matters). `floor` is the commit-local cached floor; it is recomputed
    /// at most once per commit (`floor_fresh`).
    #[allow(clippy::too_many_arguments)]
    fn ring_publish(
        &mut self,
        ti: u16,
        orec: *const Orec,
        addr: usize,
        old: u64,
        wv: u64,
        floor: &mut u64,
        floor_fresh: &mut bool,
    ) {
        let v = &self.s.views[ti as usize];
        let idx = (orec as usize - v.table as usize) / core::mem::size_of::<Orec>();
        debug_assert!(idx <= v.mask, "write-set orec outside the view's table");
        let depth = v.ring_depth;
        // SAFETY: the ring has `(mask + 1) * depth` slots and `idx <=
        // mask`; the allocation is alive for the partition's lifetime and
        // stable for the attempt (same argument as the orec table).
        let base = unsafe { v.ring.add(idx * depth) };
        let mut victim = base;
        let mut vmin = u64::MAX;
        for k in 0..depth {
            // SAFETY: `k < depth`, see above.
            let slot = unsafe { base.add(k) };
            // SAFETY: slot within the ring allocation.
            let to = unsafe { &*slot }.close_stamp();
            if to == 0 {
                victim = slot;
                vmin = 0;
                break;
            }
            if to < vmin {
                vmin = to;
                victim = slot;
            }
        }
        if vmin != 0 {
            if vmin > *floor && !*floor_fresh {
                *floor = self.stm.ro_floor_recompute();
                *floor_fresh = true;
            }
            if vmin > *floor {
                // Every ring record might still serve a pinned reader:
                // park the new record on the overflow list instead. The
                // divert still bumps the ring epoch — a snapshot lookup
                // reads ring and overflow as ONE epoch-stable observation,
                // so any history mutation for this orec must invalidate an
                // overlapping scan (see `crate::snapshot`).
                // SAFETY: orec alive via the touched partition.
                unsafe { &*orec }.ring_publish_begin();
                self.s.views[ti as usize]
                    .part
                    .overflow_push(addr, old, wv, *floor);
                // SAFETY: as above.
                unsafe { &*orec }.ring_publish_end();
                self.s.views[ti as usize].stats.ring_overflows += 1;
                return;
            }
        }
        // SAFETY: victim points into the ring allocation; the slot seqlock
        // in `publish` keeps the triple untorn, and the orec-level
        // ring-epoch bracket forces any snapshot ring scan that overlapped
        // this publish to retry — without it a scan could miss a record
        // published into a slot it had already visited (the marching
        // hazard, see `crate::snapshot`).
        unsafe { &*orec }.ring_publish_begin();
        // SAFETY: as above.
        unsafe { &*victim }.publish(addr as u64, old, wv);
        // SAFETY: as above.
        unsafe { &*orec }.ring_publish_end();
    }

    fn finish_commit(&mut self) {
        // Debug tripwire for the one-decode-per-attempt argument (module
        // docs): until our seq returns to even, no touched partition's
        // generation may have moved past the one the view cached.
        #[cfg(debug_assertions)]
        for t in &self.s.views {
            debug_assert_eq!(
                config::generation(t.part.config_word()),
                t.generation,
                "partition config switched mid-attempt (quiesce protocol violated)"
            );
        }
        let bit = reader_bit(self.slot);
        for &orec in &self.s.visible {
            // SAFETY: orecs alive via touched partitions.
            unsafe { &*orec }.remove_reader(bit);
        }
        // Freed slots become reusable only by transactions whose snapshot
        // is at least "now" (see ensure_snapshot_at_least).
        let free_tag = self.stm.clock.now();
        for f in &self.s.free_log {
            // SAFETY: logged by Arena::free with a matching reclaim fn; the
            // arena outlives `'e`.
            unsafe { (f.push_free)(f.arena, f.raw, free_tag) }
        }
        self.my_slot().seq.fetch_add(1, Ordering::SeqCst); // -> even
        for t in &self.s.views {
            let st = &t.part.stats;
            st.starts(self.slot, 1);
            st.commits(self.slot, 1);
            if t.wrote {
                st.update_commits(self.slot, 1);
            } else {
                st.ro_commits(self.slot, 1);
            }
            t.stats.flush(st, self.slot);
        }
        if self.s.sampling {
            self.flush_sample();
        }
        if self.s.tele_sampling {
            self.flush_telemetry();
        }
        self.s.in_attempt = false;
        self.s.attempts = 0;
    }

    /// Records a telemetry-sampled commit: begin→commit latency histogram
    /// plus a lifecycle event on this thread's flight-recorder lane. Off
    /// the fast path — runs only for the one in N attempts sampled at
    /// [`Tx::begin`] while telemetry is enabled.
    #[cold]
    fn flush_telemetry(&mut self) {
        let t = telemetry::global();
        let ns = self.s.tele_begin.elapsed().as_nanos() as u64;
        t.commit_latency_ns.record(ns);
        t.recorder.record(
            self.slot,
            telemetry::Event::now(
                EventKind::TxCommit,
                self.slot as u64,
                ns,
                self.s.read_set.len() as u64,
            ),
        );
    }

    /// Folds a sampled, committed attempt into a [`TxSample`] and hands it
    /// to the installed profiler. Off the fast path: runs only for the one
    /// in `period` attempts that was sampled at [`Tx::begin`].
    fn flush_sample(&mut self) {
        let Some(profiler) = self.stm.profiler.read().clone() else {
            return;
        };
        let s = &mut *self.s;
        let mut touched: Vec<SampleTouch> = s
            .views
            .iter()
            .map(|t| SampleTouch {
                partition: t.part.id(),
                reads: t.stats.reads,
                writes: t.stats.writes,
                buckets: Vec::new(),
            })
            .collect();
        // Group accesses by (view, bucket); the sort keeps buckets ordered
        // within each view.
        s.sample_log.sort_unstable();
        let mut i = 0;
        while i < s.sample_log.len() {
            let (ti, bucket, _) = s.sample_log[i];
            let (mut reads, mut writes) = (0u32, 0u32);
            while i < s.sample_log.len() && (s.sample_log[i].0, s.sample_log[i].1) == (ti, bucket) {
                if s.sample_log[i].2 {
                    writes += 1;
                } else {
                    reads += 1;
                }
                i += 1;
            }
            touched[ti as usize].buckets.push(BucketTouch {
                bucket,
                reads,
                writes,
            });
        }
        profiler.record(TxSample {
            failed_attempts: s.attempts,
            touched,
        });
    }

    /// Rolls the attempt back: releases held locks (restoring the previous
    /// version words), clears visible-reader bits, reclaims aborted
    /// allocations, flushes statistics.
    fn rollback(&mut self) {
        if !self.s.in_attempt {
            return;
        }
        for e in &self.s.write_set {
            if e.acquired_here {
                // SAFETY: orec alive via the touched partition; we hold it.
                unsafe { &*e.orec }.unlock(e.prev);
            }
        }
        let bit = reader_bit(self.slot);
        for &orec in &self.s.visible {
            // SAFETY: as above.
            unsafe { &*orec }.remove_reader(bit);
        }
        for a in &self.s.alloc_log {
            // SAFETY: logged by Arena::alloc with a matching reclaim fn.
            // The slot's original tag is restored: our aborted writes were
            // never published, so the pre-existing constraint still rules.
            unsafe { (a.push_free)(a.arena, a.raw, a.tag) }
        }
        self.my_slot().seq.fetch_add(1, Ordering::SeqCst); // -> even
        for t in &self.s.views {
            t.part.stats.starts(self.slot, 1);
            t.stats.flush(&t.part.stats, self.slot);
        }
        self.s.in_attempt = false;
        self.s.attempts += 1;
    }

    /// Logs a transactional allocation (reclaimed on abort, restoring the
    /// slot's original reuse tag).
    pub(crate) fn log_alloc(
        &mut self,
        arena: *const (),
        raw: u32,
        tag: u64,
        push_free: unsafe fn(*const (), u32, u64),
    ) {
        self.s.alloc_log.push(ReclaimEntry {
            arena,
            raw,
            tag,
            push_free,
        });
    }

    /// Logs a transactional free (executed on commit with the commit
    /// version as the reuse tag).
    pub(crate) fn log_free(
        &mut self,
        arena: *const (),
        raw: u32,
        push_free: unsafe fn(*const (), u32, u64),
    ) {
        self.s.free_log.push(ReclaimEntry {
            arena,
            raw,
            tag: 0,
            push_free,
        });
    }

    /// Extends the snapshot to at least `v` (revalidating the read set) if
    /// it is older. Used by the arena's recycling barrier: a slot freed at
    /// time `v` may only be reused by transactions whose snapshot is `>= v`
    /// (otherwise the slot is still a live node in their view).
    pub(crate) fn ensure_snapshot_at_least(&mut self, v: u64) -> TxResult<()> {
        if v <= self.s.rv {
            return Ok(());
        }
        let new_rv = self.stm.clock.now();
        debug_assert!(new_rv >= v, "free tags never exceed the clock");
        if self.validate_read_set().is_ok() {
            self.s.rv = new_rv;
            Ok(())
        } else {
            if let Some(t) = self.s.views.first() {
                t.part.stats.aborts_validation(self.slot, 1);
            }
            self.s.engine_fail = true;
            Err(Abort(()))
        }
    }

    /// Post-commit tuning hook: bump per-partition gates and, when a window
    /// fills, evaluate the installed policy and apply its decision.
    fn after_commit_tuning(&mut self) {
        for i in 0..self.s.views.len() {
            let part = Arc::clone(&self.s.views[i].part);
            if !part.tunable {
                continue;
            }
            let tuner = {
                let guard = self.stm.tuner.read();
                match &*guard {
                    Some(t) => Arc::clone(t),
                    None => return,
                }
            };
            let window = tuner.window().max(1);
            let n = part.tune_gate.fetch_add(1, Ordering::Relaxed) + 1;
            if n < window {
                continue;
            }
            part.tune_gate.store(0, Ordering::Relaxed);
            let (delta, seconds) = {
                let Some(mut st) = part.tune_state.try_lock() else {
                    continue;
                };
                let snap = part.stats.snapshot();
                let delta = snap.delta(&st.last);
                let seconds = st.last_at.elapsed().as_secs_f64();
                st.last = snap;
                st.last_at = Instant::now();
                (delta, seconds)
            };
            let input = TuneInput {
                partition: part.id(),
                name: part.name().to_string(),
                config: config::decode(part.config_word()),
                delta,
                seconds,
            };
            if let Some(new_cfg) = tuner.evaluate(&input) {
                // Contended/TimedOut switches are fine to drop here: the
                // tuner re-evaluates after the next window.
                let _ = self.stm.switch_partition_inner(&part, new_cfg);
            }
        }
    }
}

impl Drop for Tx<'_, '_> {
    fn drop(&mut self) {
        // Cleans up after a panic in user code mid-attempt.
        if self.s.in_attempt {
            self.rollback();
        }
    }
}

#[inline(always)]
fn debug_assert_q(cond: bool, msg: &str) {
    debug_assert!(cond, "{msg}");
}

/// Hints the hardware to pull an orec's cache line while the validation
/// pass still works on the previous entry. Advisory only: a no-op
/// architecture (or a stale pointer) costs nothing in correctness.
#[inline(always)]
fn prefetch_orec(p: *const Orec) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects and tolerates any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

impl ThreadCtx {
    /// Runs `f` as a transaction, retrying (with randomized exponential
    /// backoff) until it commits. Returns the closure's success value.
    ///
    /// Every `&TVar` / `&Arc<Partition>` passed to the transaction must
    /// outlive the whole call (the `'e` lifetime); in practice: keep your
    /// data structures alive outside the closure — the borrow checker
    /// enforces the rest.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside a transaction on the same
    /// thread (nesting is not supported; compose closures instead).
    pub fn run<'e, T, F>(&'e self, mut f: F) -> T
    where
        F: for<'s> FnMut(&mut Tx<'e, 's>) -> TxResult<T>,
    {
        let mut scratch = self
            .scratch
            .try_borrow_mut()
            .expect("nested ThreadCtx::run on the same thread");
        let mut tx = Tx {
            stm: &self.stm.inner,
            slot: self.slot,
            s: &mut scratch,
            _env: PhantomData,
        };
        loop {
            tx.begin();
            match f(&mut tx) {
                Ok(v) => {
                    if tx.try_commit() {
                        tx.after_commit_tuning();
                        return v;
                    }
                }
                Err(_) => {
                    if !tx.s.engine_fail {
                        if let Some(t) = tx.s.views.first() {
                            t.part.stats.aborts_user(tx.slot, 1);
                        }
                    }
                    tx.rollback();
                }
            }
            let attempts = tx.s.attempts;
            if tx.s.tele_sampling && attempts > 0 {
                // Sampled attempt aborted: time the contention-manager
                // backoff it pays before retrying.
                let t0 = Instant::now();
                cm::backoff(attempts, &mut tx.s.rng);
                telemetry::global()
                    .backoff_ns
                    .record(t0.elapsed().as_nanos() as u64);
            } else {
                cm::backoff(attempts, &mut tx.s.rng);
            }
        }
    }
}

impl StmInner {
    /// Internal switch entry point shared by `Stm::switch_partition` and
    /// the tuning hook. See `Stm::switch_partition` for the protocol.
    pub(crate) fn switch_partition_inner(
        &self,
        partition: &Partition,
        new: DynConfig,
    ) -> crate::stm::SwitchOutcome {
        crate::stm::switch_partition_impl(self, partition, new)
    }
}

impl<T: TxWord> TVar<T> {
    /// Transactional read (convenience wrapper over [`Tx::read_raw`]).
    #[inline]
    pub fn read<'e>(&'e self, tx: &mut Tx<'e, '_>, part: &'e Arc<Partition>) -> TxResult<T> {
        tx.read_raw(part, self)
    }

    /// Transactional write (convenience wrapper over [`Tx::write_raw`]).
    #[inline]
    pub fn write<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        part: &'e Arc<Partition>,
        value: T,
    ) -> TxResult<()> {
        tx.write_raw(part, self, value)
    }
}

impl<T: TxWord> PVar<T> {
    /// Transactional read (convenience wrapper over [`Tx::read`]).
    #[inline]
    pub fn read<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<T> {
        tx.read(self)
    }

    /// Transactional write (convenience wrapper over [`Tx::write`]).
    #[inline]
    pub fn write<'e>(&'e self, tx: &mut Tx<'e, '_>, value: T) -> TxResult<()> {
        tx.write(self, value)
    }

    /// Read-modify-write (convenience wrapper over [`Tx::modify`]).
    #[inline]
    pub fn modify<'e>(&'e self, tx: &mut Tx<'e, '_>, f: impl FnOnce(T) -> T) -> TxResult<T> {
        tx.modify(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Granularity, PartitionConfig};
    use crate::stm::Stm;

    fn setup() -> (Stm, Arc<Partition>) {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        (stm, p)
    }

    #[test]
    fn read_own_write_and_commit() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(1u64);
        let observed = ctx.run(|tx| {
            let v0 = tx.read(&x)?;
            tx.write(&x, v0 + 10)?;
            let v1 = tx.read(&x)?;
            Ok((v0, v1))
        });
        assert_eq!(observed, (1, 11));
        assert_eq!(x.load_direct(), 11);
        let s = p.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.update_commits, 1);
    }

    #[test]
    fn bound_and_raw_tiers_share_the_view() {
        // A bound access and a raw access to the same partition must hit
        // the same partition view (and therefore the same write set).
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(5u64);
        let v = ctx.run(|tx| {
            tx.write(&x, 6)?;
            // Raw read of the same variable through the same partition
            // observes the buffered write.
            tx.read_raw(&p, x.var())
        });
        assert_eq!(v, 6);
        assert_eq!(p.stats().commits, 1);
    }

    #[test]
    fn user_abort_rolls_back() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(5u64);
        let mut tries = 0;
        let v = ctx.run(|tx| {
            tries += 1;
            tx.write(&x, 99)?;
            if tries < 3 {
                return Err(Abort::retry());
            }
            tx.read(&x)
        });
        assert_eq!(v, 99);
        assert_eq!(x.load_direct(), 99);
        assert_eq!(p.stats().aborts_user, 2);
        assert_eq!(p.stats().commits, 1);
    }

    #[test]
    fn read_only_txn_counts_ro_commit() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(7u64);
        let v = ctx.run(|tx| tx.read(&x));
        assert_eq!(v, 7);
        let s = p.stats();
        assert_eq!(s.ro_commits, 1);
        assert_eq!(s.update_commits, 0);
    }

    #[test]
    fn modify_applies_function() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(10i64);
        let nv = ctx.run(|tx| tx.modify(&x, |v| v * -3));
        assert_eq!(nv, -30);
        assert_eq!(x.load_direct(), -30);
    }

    #[test]
    fn pvar_convenience_wrappers() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(3u64);
        let v = ctx.run(|tx| {
            x.write(tx, 4)?;
            x.modify(tx, |v| v + 1)?;
            x.read(tx)
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn clock_advances_only_for_update_txns() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(0u64);
        let c0 = stm.clock_now();
        ctx.run(|tx| tx.read(&x));
        assert_eq!(stm.clock_now(), c0, "read-only commit leaves clock alone");
        ctx.run(|tx| tx.write(&x, 1));
        assert_eq!(stm.clock_now(), c0 + 1);
    }

    #[test]
    fn counter_increments_across_threads_all_configs() {
        use crate::config::{AcquireMode, CmPolicy, ReadMode};
        for read_mode in [ReadMode::Invisible, ReadMode::Visible] {
            for acquire in [AcquireMode::Encounter, AcquireMode::Commit] {
                for cm_pol in [CmPolicy::SuicideBackoff, CmPolicy::DelayThenAbort] {
                    let stm = Stm::new();
                    let p = stm.new_partition(
                        PartitionConfig::default()
                            .read_mode(read_mode)
                            .acquire(acquire)
                            .cm(cm_pol),
                    );
                    let x = Arc::new(TVar::new(0u64));
                    let threads = 4;
                    let iters = 500;
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let ctx = stm.register_thread();
                            let p = Arc::clone(&p);
                            let x = Arc::clone(&x);
                            s.spawn(move || {
                                for _ in 0..iters {
                                    ctx.run(|tx| tx.modify_raw(&p, &x, |v| v + 1).map(|_| ()));
                                }
                            });
                        }
                    });
                    assert_eq!(
                        x.load_direct(),
                        threads * iters,
                        "lost updates under {read_mode:?}/{acquire:?}/{cm_pol:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_lock_granularity_serializes_correctly() {
        let stm = Stm::new();
        let p =
            stm.new_partition(PartitionConfig::default().granularity(Granularity::PartitionLock));
        let a = Arc::new(p.tvar(0u64));
        let b = Arc::new(p.tvar(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = stm.register_thread();
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    for _ in 0..300 {
                        ctx.run(|tx| {
                            let va = tx.read(&a)?;
                            let vb = tx.read(&b)?;
                            tx.write(&a, va + 1)?;
                            tx.write(&b, vb + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(a.load_direct(), 1200);
        assert_eq!(b.load_direct(), 1200);
    }

    #[test]
    fn atomicity_two_vars_invariant() {
        // Transfer between two vars: the sum is invariant at every commit.
        let (stm, p) = setup();
        let a = Arc::new(p.tvar(500i64));
        let b = Arc::new(p.tvar(500i64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..3 {
                let ctx = stm.register_thread();
                let (a, b, stop) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
                s.spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        i += 1;
                        let amt = (i * (t + 1)) % 17;
                        ctx.run(|tx| {
                            let va = tx.read(&a)?;
                            let vb = tx.read(&b)?;
                            tx.write(&a, va - amt)?;
                            tx.write(&b, vb + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            let ctx = stm.register_thread();
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                for _ in 0..2000 {
                    let sum = ctx.run(|tx| {
                        let va = tx.read(&a)?;
                        let vb = tx.read(&b)?;
                        Ok(va + vb)
                    });
                    assert_eq!(sum, 1000, "atomicity violated");
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        drop(p);
    }

    #[test]
    fn conflict_classification_separates_true_from_aliased() {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        // Single-orec partition: every address maps to orec 0, so a held
        // encounter lock on `x` conflicts with *any* access — touching `y`
        // is aliasing (the hint names x), touching `x` is a true conflict.
        let stm = Stm::new();
        let p = stm
            .new_partition(PartitionConfig::named("alias").granularity(Granularity::PartitionLock));
        let x = Arc::new(p.tvar(1u64));
        let y = Arc::new(p.tvar(2u64));
        let locked = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let ctx = stm.register_thread();
                let (x, locked, done) = (Arc::clone(&x), Arc::clone(&locked), Arc::clone(&done));
                s.spawn(move || {
                    ctx.run(|tx| {
                        tx.write(&x, 10)?; // encounter lock; hint = addr of x
                        locked.store(true, AOrd::Release);
                        while !done.load(AOrd::Acquire) {
                            std::thread::yield_now();
                        }
                        Ok(())
                    });
                });
            }
            while !locked.load(AOrd::Acquire) {
                std::thread::yield_now();
            }
            let ctx = stm.register_thread();
            // First attempt conflicts (and classifies); the second attempt
            // backs out without touching anything so the run terminates
            // while the writer still holds the lock.
            let v = ctx.run(|tx| {
                if tx.attempts() >= 1 {
                    return Ok(0);
                }
                tx.read(&y)
            });
            assert_eq!(v, 0, "first attempt must have conflicted");
            let v = ctx.run(|tx| {
                if tx.attempts() >= 1 {
                    return Ok(0);
                }
                tx.read(&x)
            });
            assert_eq!(v, 0, "first attempt must have conflicted");
            done.store(true, AOrd::Release);
        });
        let st = p.stats();
        assert_eq!(
            st.conflicts_aliased, 1,
            "conflict on y against a lock covering x is aliasing"
        );
        assert_eq!(
            st.conflicts_true, 1,
            "conflict on x against a lock covering x is a true conflict"
        );
        assert!((st.aliased_share() - 0.5).abs() < 1e-9);
        assert_eq!(x.load_direct(), 10, "writer committed after the probe");
    }

    #[test]
    fn validation_conflict_attributed_to_the_failing_orec_partition() {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        // A transaction reads partition B, writes partition A; a helper
        // commits a write to the same B variable mid-transaction, so
        // commit-time validation fails on one of *B's* orecs. The
        // aliasing telemetry must land on B (the failing orec's owner),
        // not on A (the write partition `fail()` charges the abort to).
        let stm = Stm::new();
        let pa = stm.new_partition(PartitionConfig::named("A"));
        let pb = stm.new_partition(PartitionConfig::named("B"));
        let a = Arc::new(pa.tvar(0u64));
        let b = Arc::new(pb.tvar(0u64));
        let read_done = Arc::new(AtomicBool::new(false));
        let helper_done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let ctx = stm.register_thread();
                let (b, read_done, helper_done) = (
                    Arc::clone(&b),
                    Arc::clone(&read_done),
                    Arc::clone(&helper_done),
                );
                s.spawn(move || {
                    while !read_done.load(AOrd::Acquire) {
                        std::thread::yield_now();
                    }
                    ctx.run(|tx| tx.modify(&b, |v| v + 1).map(|_| ()));
                    helper_done.store(true, AOrd::Release);
                });
            }
            let ctx = stm.register_thread();
            let v = ctx.run(|tx| {
                if tx.attempts() >= 1 {
                    // First attempt must have failed validation; stop.
                    return Ok(u64::MAX);
                }
                let vb = tx.read(&b)?;
                read_done.store(true, AOrd::Release);
                while !helper_done.load(AOrd::Acquire) {
                    std::thread::yield_now();
                }
                tx.write(&a, vb + 1)?;
                Ok(vb)
            });
            assert_eq!(v, u64::MAX, "first attempt must have aborted");
        });
        let (sa, sb) = (pa.stats(), pb.stats());
        assert_eq!(sa.aborts_validation, 1, "abort charged to the writer");
        assert_eq!(
            sb.conflicts_true + sb.conflicts_aliased,
            1,
            "classification charged to the failing orec's partition"
        );
        assert_eq!(
            sa.conflicts_true + sa.conflicts_aliased,
            0,
            "no classification on the write partition"
        );
    }

    #[test]
    fn panic_in_closure_rolls_back_and_releases_locks() {
        let (stm, p) = setup();
        let x = Arc::new(p.tvar(3u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = stm.register_thread();
            ctx.run(|tx| {
                tx.write(&x, 42)?;
                panic!("boom");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err());
        assert_eq!(x.load_direct(), 3, "write must not leak");
        // The orec must be unlocked again: a fresh transaction succeeds.
        let ctx = stm.register_thread();
        let v = ctx.run(|tx| tx.modify(&x, |v| v + 1));
        assert_eq!(v, 4);
    }

    #[test]
    fn ws_index_handles_many_writes_and_growth() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let vars: Vec<TVar<u64>> = (0..200).map(TVar::new).collect();
        ctx.run(|tx| {
            for (i, v) in vars.iter().enumerate() {
                tx.write_raw(&p, v, (i * 2) as u64)?;
            }
            // Overwrite half of them; read everything back.
            for v in vars.iter().step_by(2) {
                let cur = tx.read_raw(&p, v)?;
                tx.write_raw(&p, v, cur + 1)?;
            }
            Ok(())
        });
        for (i, v) in vars.iter().enumerate() {
            let expect = (i * 2) as u64 + if i % 2 == 0 { 1 } else { 0 };
            assert_eq!(v.load_direct(), expect, "var {i}");
        }
    }

    #[test]
    fn cross_partition_transaction_is_atomic() {
        let stm = Stm::new();
        let p1 = stm.new_partition(PartitionConfig::named("a"));
        let p2 =
            stm.new_partition(PartitionConfig::named("b").read_mode(config::ReadMode::Visible));
        let x = Arc::new(p1.tvar(0u64));
        let y = Arc::new(p2.tvar(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = stm.register_thread();
                let (x, y) = (Arc::clone(&x), Arc::clone(&y));
                s.spawn(move || {
                    for _ in 0..400 {
                        ctx.run(|tx| {
                            let vx = tx.read(&x)?;
                            let vy = tx.read(&y)?;
                            tx.write(&x, vx + 1)?;
                            tx.write(&y, vy + 1)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(x.load_direct(), 1600);
        assert_eq!(y.load_direct(), 1600);
    }

    #[test]
    fn many_partitions_resolve_through_view_index() {
        // Touch enough partitions in one transaction that lookups go
        // through the stamped index (not just the MRU fast path), and
        // interleave accesses so the MRU entry keeps changing.
        let stm = Stm::new();
        let parts: Vec<_> = (0..24)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let vars: Vec<_> = parts.iter().map(|p| p.tvar(1u64)).collect();
        let ctx = stm.register_thread();
        let total = ctx.run(|tx| {
            let mut sum = 0;
            for v in &vars {
                tx.modify(v, |x| x + 1)?;
            }
            // Second pass in reverse order: every lookup misses the MRU
            // entry and must hit the stamped index.
            for v in vars.iter().rev() {
                sum += tx.read(v)?;
            }
            Ok(sum)
        });
        assert_eq!(total, 48);
        for v in &vars {
            assert_eq!(v.load_direct(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_run_panics() {
        let (stm, p) = setup();
        let ctx = stm.register_thread();
        let x = p.tvar(0u64);
        ctx.run(|_tx| {
            let _ = ctx.run(|tx2| tx2.read(&x));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "different Stm")]
    fn bound_var_of_foreign_stm_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let p1 = stm1.new_partition(PartitionConfig::default());
        let x = p1.tvar(0u64);
        let ctx = stm2.register_thread();
        ctx.run(|tx| tx.read(&x));
    }

    #[test]
    fn switch_during_load_preserves_counter() {
        // Flip the partition's config under load; no updates may be lost.
        use crate::config::ReadMode;
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("hot").tunable());
        let x = Arc::new(p.tvar(0u64));
        let iters = 2000;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = stm.register_thread();
                let x = Arc::clone(&x);
                s.spawn(move || {
                    for _ in 0..iters {
                        ctx.run(|tx| tx.modify(&x, |v| v + 1).map(|_| ()));
                    }
                });
            }
            let stm2 = stm.clone();
            let p2 = Arc::clone(&p);
            s.spawn(move || {
                for i in 0..20 {
                    let mut cfg = p2.current_config();
                    cfg.read_mode = if i % 2 == 0 {
                        ReadMode::Visible
                    } else {
                        ReadMode::Invisible
                    };
                    cfg.granularity = if i % 3 == 0 {
                        Granularity::PartitionLock
                    } else {
                        Granularity::Word
                    };
                    let _ = stm2.switch_partition(&p2, cfg);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        });
        assert_eq!(x.load_direct(), 4 * iters);
        assert!(p.generation() > 0, "switches must have happened");
    }
}
