//! Deterministic fault injection for the control plane's failure modes.
//!
//! The stuck-transaction scenarios this crate must survive — a thread
//! preempted (or dead) while holding encounter locks, a panic mid
//! transaction, a quiesce window stretched across a reschedule, a
//! controller action bouncing off a wedged partition — are scheduling
//! accidents: on a loaded 1-core host they happen every few minutes, in a
//! test harness essentially never. This module turns them into *seeded,
//! replayable schedules* so the remediation machinery (kill-based quiesce
//! rescue, the controller's circuit breaker) is exercised by CI instead of
//! by luck.
//!
//! ## Model
//!
//! A [`FaultPlan`] names the sites to perturb ([`FaultSite`]), each with a
//! fire probability (permille), an optional fire-count cap, and (for the
//! delay-shaped faults) a duration. [`install`] publishes the plan
//! process-wide; the engine's hook sites then consult it at well-defined
//! points:
//!
//! - [`FaultSite::StallHoldingLocks`] — fires at the end of a successful
//!   encounter-lock acquisition: the transaction spins *inside* the
//!   attempt, locks held, until the stall budget elapses **or its kill
//!   flag is raised** (the stall is cooperative, exactly like a real
//!   preempted-but-running thread, so kill rescue can reach it).
//! - [`FaultSite::MidTxPanic`] — fires in the write path after the write
//!   entry is logged: the attempt panics, exercising the `Drop`-driven
//!   rollback (locks released, reader bits cleared).
//! - [`FaultSite::QuiesceDelay`] — sleeps at the head of a
//!   flag→quiesce drain, widening the window other threads must cross.
//! - [`FaultSite::CtrlActionFail`] — makes the repartition controller
//!   report a quiesce timeout for an approved action *without running
//!   it*, feeding the circuit breaker deterministically (and without
//!   tripping the debug-build stuck-transaction panic a real timeout
//!   causes).
//!
//! Decisions are a pure function of `(seed, site, per-site sequence
//! number)` — two runs of the same single-threaded schedule fire
//! identically, and concurrent runs are reproducible in distribution.
//! Plans are scoped to one [`Stm`](crate::Stm) with
//! [`FaultPlan::for_stm`], so a plan installed by one test cannot leak
//! faults into an unrelated `Stm` in the same process.
//!
//! ## Cost when off
//!
//! Identical to [`crate::telemetry`]: every hook site is gated on one
//! relaxed [`enabled`] load and a predictable branch; the plan lock is
//! only touched after that branch. No faults, no overhead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// The named injection points (see the [module docs](self) for where each
/// fires and what it does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// Stall inside a transaction right after encounter locks were taken.
    StallHoldingLocks = 0,
    /// Panic in the write path after the write entry is logged.
    MidTxPanic = 1,
    /// Sleep at the head of a flag→quiesce drain.
    QuiesceDelay = 2,
    /// Fail an approved controller action as if its quiesce timed out.
    CtrlActionFail = 3,
}

const SITES: usize = 4;

#[derive(Debug, Clone, Copy)]
struct SiteCfg {
    /// Fire probability in 0..=1000 (0 = site disabled).
    permille: u32,
    /// Hard cap on fires (`u64::MAX` = unlimited).
    max_fires: u64,
    /// Stall/delay budget for the duration-shaped sites, µs.
    dur_micros: u64,
}

const OFF: SiteCfg = SiteCfg {
    permille: 0,
    max_fires: u64::MAX,
    dur_micros: 0,
};

/// A seeded, per-site fault schedule. Build with the chained
/// configurators, then [`install`] it; the returned `Arc` handle observes
/// fire counts ([`FaultPlan::injected`]) while the plan runs.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// When set, only this `Stm` instance sees the plan's faults.
    stm_id: Option<u64>,
    sites: [SiteCfg; SITES],
    /// Per-site decision counter: every *consultation* of the site takes
    /// one sequence number, fired or not, which is what makes the
    /// schedule deterministic for a fixed arrival order.
    seqs: [AtomicU64; SITES],
    fired: [AtomicU64; SITES],
}

/// SplitMix64 finalizer: a well-mixed pure function of its input, so the
/// fire pattern is a reproducible function of `(seed, site, seq)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no site fires) with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stm_id: None,
            sites: [OFF; SITES],
            seqs: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Scopes the plan to `stm`: hook sites reached by any other
    /// [`Stm`](crate::Stm) instance in the process ignore it. Tests and
    /// benchmarks sharing a process should always set this.
    pub fn for_stm(mut self, stm: &crate::Stm) -> Self {
        self.stm_id = Some(stm.inner.id);
        self
    }

    fn site(mut self, site: FaultSite, cfg: SiteCfg) -> Self {
        assert!(cfg.permille <= 1000, "permille is out of 1000");
        self.sites[site as usize] = cfg;
        self
    }

    /// Enables [`FaultSite::StallHoldingLocks`]: with probability
    /// `permille`/1000, a transaction that just finished acquiring an
    /// encounter lock spins in place (locks held, kill flag polled) for
    /// up to `dur`.
    pub fn stall_holding_locks(self, permille: u32, dur: Duration) -> Self {
        self.site(
            FaultSite::StallHoldingLocks,
            SiteCfg {
                permille,
                max_fires: u64::MAX,
                dur_micros: dur.as_micros() as u64,
            },
        )
    }

    /// Enables [`FaultSite::MidTxPanic`]: with probability
    /// `permille`/1000, a transactional write panics after logging its
    /// write entry.
    pub fn mid_tx_panic(self, permille: u32) -> Self {
        self.site(
            FaultSite::MidTxPanic,
            SiteCfg {
                permille,
                max_fires: u64::MAX,
                dur_micros: 0,
            },
        )
    }

    /// Enables [`FaultSite::QuiesceDelay`]: with probability
    /// `permille`/1000, a flag→quiesce drain sleeps `dur` before
    /// scanning slots.
    pub fn quiesce_delay(self, permille: u32, dur: Duration) -> Self {
        self.site(
            FaultSite::QuiesceDelay,
            SiteCfg {
                permille,
                max_fires: u64::MAX,
                dur_micros: dur.as_micros() as u64,
            },
        )
    }

    /// Enables [`FaultSite::CtrlActionFail`]: with probability
    /// `permille`/1000, an approved controller action reports
    /// [`SwitchOutcome::TimedOut`](crate::SwitchOutcome::TimedOut)
    /// without executing.
    pub fn ctrl_action_fail(self, permille: u32) -> Self {
        self.site(
            FaultSite::CtrlActionFail,
            SiteCfg {
                permille,
                max_fires: u64::MAX,
                dur_micros: 0,
            },
        )
    }

    /// Caps `site` at `max_fires` total fires (further decisions still
    /// consume sequence numbers but never fire). Apply *after* the
    /// site's enabling configurator.
    pub fn limit(mut self, site: FaultSite, max_fires: u64) -> Self {
        self.sites[site as usize].max_fires = max_fires;
        self
    }

    /// Times `site` has actually fired so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.fired[site as usize].load(Ordering::SeqCst)
    }

    /// One decision for `site`: returns the configured duration budget if
    /// the site fires, `None` otherwise.
    fn decide(&self, site: FaultSite) -> Option<Duration> {
        let i = site as usize;
        let cfg = self.sites[i];
        if cfg.permille == 0 {
            return None;
        }
        let seq = self.seqs[i].fetch_add(1, Ordering::Relaxed);
        let roll = mix(self.seed ^ mix((i as u64) << 32 | seq)) % 1000;
        if roll >= cfg.permille as u64 {
            return None;
        }
        // Honor the fire cap race-free: exactly `max_fires` callers win.
        if self.fired[i]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| {
                (f < cfg.max_fires).then_some(f + 1)
            })
            .is_err()
        {
            return None;
        }
        Some(Duration::from_micros(cfg.dur_micros))
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Publishes `plan` process-wide (replacing any previous plan) and
/// returns a handle for observing its fire counts. Tests sharing a
/// process must serialize their installed-plan lifetimes (and scope
/// plans with [`FaultPlan::for_stm`]).
pub fn install(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&plan));
    ENABLED.store(true, Ordering::SeqCst);
    plan
}

/// Removes the installed plan; every hook site reverts to the one-load
/// no-op path.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a fault plan is installed. Hook sites branch on this before
/// touching anything else; off, injection costs one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One decision for `site` on behalf of the `Stm` identified by
/// `stm_id`; returns the duration budget when the site fires. Cold: only
/// called after [`enabled`] returned true.
#[cold]
fn decide(stm_id: u64, site: FaultSite) -> Option<Duration> {
    let g = PLAN.read().unwrap_or_else(|e| e.into_inner());
    let plan = g.as_ref()?;
    if plan.stm_id.is_some_and(|id| id != stm_id) {
        return None;
    }
    plan.decide(site)
}

/// Stall budget for a transaction that just acquired an encounter lock
/// (see [`FaultSite::StallHoldingLocks`]).
pub(crate) fn stall_budget(stm_id: u64) -> Option<Duration> {
    decide(stm_id, FaultSite::StallHoldingLocks)
}

/// Whether the current transactional write should panic (see
/// [`FaultSite::MidTxPanic`]).
pub(crate) fn should_panic_mid_tx(stm_id: u64) -> bool {
    decide(stm_id, FaultSite::MidTxPanic).is_some()
}

/// Sleep budget for the head of a quiesce drain (see
/// [`FaultSite::QuiesceDelay`]).
pub(crate) fn quiesce_delay_budget(stm_id: u64) -> Option<Duration> {
    decide(stm_id, FaultSite::QuiesceDelay)
}

/// Whether an approved controller action against `stm` should fail as a
/// quiesce timeout without executing (see [`FaultSite::CtrlActionFail`]).
/// Public: the hook site lives in the `partstm-repart` crate.
pub fn ctrl_action_should_fail(stm: &crate::Stm) -> bool {
    enabled() && decide(stm.inner.id, FaultSite::CtrlActionFail).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_seed_and_seq() {
        let a = FaultPlan::new(42).mid_tx_panic(300);
        let b = FaultPlan::new(42).mid_tx_panic(300);
        let da: Vec<bool> = (0..200)
            .map(|_| a.decide(FaultSite::MidTxPanic).is_some())
            .collect();
        let db: Vec<bool> = (0..200)
            .map(|_| b.decide(FaultSite::MidTxPanic).is_some())
            .collect();
        assert_eq!(da, db, "same seed, same schedule");
        let fired = da.iter().filter(|f| **f).count();
        assert!(
            (20..=100).contains(&fired),
            "300 permille over 200 draws fired {fired} times"
        );
        let c = FaultPlan::new(43).mid_tx_panic(300);
        let dc: Vec<bool> = (0..200)
            .map(|_| c.decide(FaultSite::MidTxPanic).is_some())
            .collect();
        assert_ne!(da, dc, "different seed, different schedule");
    }

    #[test]
    fn limit_caps_fires_and_disabled_sites_never_fire() {
        let p = FaultPlan::new(7)
            .stall_holding_locks(1000, Duration::from_millis(5))
            .limit(FaultSite::StallHoldingLocks, 3);
        for _ in 0..50 {
            let _ = p.decide(FaultSite::StallHoldingLocks);
        }
        assert_eq!(p.injected(FaultSite::StallHoldingLocks), 3);
        assert_eq!(p.decide(FaultSite::QuiesceDelay), None, "unconfigured site");
        assert_eq!(p.injected(FaultSite::QuiesceDelay), 0);
    }

    #[test]
    fn permille_1000_always_fires_with_budget() {
        let p = FaultPlan::new(1).quiesce_delay(1000, Duration::from_millis(2));
        for _ in 0..20 {
            assert_eq!(
                p.decide(FaultSite::QuiesceDelay),
                Some(Duration::from_millis(2))
            );
        }
        assert_eq!(p.injected(FaultSite::QuiesceDelay), 20);
    }

    #[test]
    fn plans_are_scoped_to_their_stm() {
        let mine = crate::Stm::new();
        let other = crate::Stm::new();
        let plan = FaultPlan::new(9).mid_tx_panic(1000).for_stm(&mine);
        assert_eq!(plan.stm_id, Some(mine.inner.id));
        let handle = install(plan);
        assert!(enabled());
        assert!(
            !should_panic_mid_tx(other.inner.id),
            "foreign Stm is immune"
        );
        assert!(should_panic_mid_tx(mine.inner.id));
        assert_eq!(handle.injected(FaultSite::MidTxPanic), 1);
        clear();
        assert!(!enabled());
        assert!(!should_panic_mid_tx(mine.inner.id), "cleared plan is gone");
    }
}
