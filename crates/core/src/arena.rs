//! Transactional object arena.
//!
//! Linked data structures (lists, trees) need stable node storage plus
//! transactional allocation: a node allocated inside a transaction must be
//! reclaimed if the transaction aborts, and a node freed inside a
//! transaction must only become reusable once the transaction commits
//! (TinySTM's `stm_malloc`/`stm_free` semantics). The [`Arena`] provides
//! both, with `u32` [`Handle`]s that pack into [`crate::TVar`] words so
//! nodes can reference each other transactionally.
//!
//! Storage is a chunk directory: chunk *c* holds `BASE << c` slots and is
//! installed at most once with a CAS, so `get` is lock-free and handles stay
//! valid for the arena's lifetime (chunks never move or shrink).
//!
//! ## Recycling and opacity
//!
//! A freed slot may still be *read* by concurrent transactions holding stale
//! handles. That is safe: node fields are only ever mutated through
//! transactional stores, so any post-recycling change bumps the covering
//! ownership record's version and the stale reader's validation fails.
//! Corollary: initialize recycled nodes with transactional writes (as
//! [`Arena::alloc`] documents), never with [`crate::TVar::store_direct`].
//!
//! The subtler hazard is on the *allocating* side: a transaction whose
//! snapshot predates a slot's free still sees that slot as a live node
//! elsewhere in the structure — handing it out would make the transaction's
//! "fresh" node alias a reachable node of its own (perfectly consistent)
//! snapshot, corrupting its view with no validation failure anywhere.
//! Every freed slot is therefore tagged with the commit timestamp of its
//! free, and [`Arena::alloc`] forces the allocating transaction to extend
//! its snapshot past that tag (revalidating its read set) before the slot
//! is reused — the LSA-flavoured equivalent of TinySTM's quiescence-based
//! `stm_malloc` reclamation.

use core::marker::PhantomData;
use core::num::NonZeroU32;
use core::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use parking_lot::Mutex;

use crate::txn::Tx;
use crate::word::TxWord;

/// log2 of the first chunk's slot count.
const BASE_SHIFT: u32 = 10;
/// Slots in chunk 0.
const BASE: u32 = 1 << BASE_SHIFT;
/// Maximum number of chunks (caps capacity at ~4 billion slots).
const NUM_CHUNKS: usize = 22;

/// Typed index of an arena slot. One word, non-null (so
/// `Option<Handle<N>>` also packs into a transactional word).
pub struct Handle<N> {
    raw: NonZeroU32,
    _m: PhantomData<fn() -> N>,
}

impl<N> Handle<N> {
    #[inline(always)]
    fn from_index(i: u32) -> Self {
        // Index 0 maps to raw 1; arena capacity < u32::MAX keeps this safe.
        Handle {
            raw: NonZeroU32::new(i + 1).expect("arena index overflow"),
            _m: PhantomData,
        }
    }

    #[inline(always)]
    fn index(self) -> u32 {
        self.raw.get() - 1
    }

    /// Raw non-zero representation (stable across the arena's lifetime).
    #[inline(always)]
    pub fn raw(self) -> u32 {
        self.raw.get()
    }
}

impl<N> Clone for Handle<N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<N> Copy for Handle<N> {}
impl<N> PartialEq for Handle<N> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<N> Eq for Handle<N> {}
impl<N> core::hash::Hash for Handle<N> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<N> core::fmt::Debug for Handle<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Handle({})", self.raw)
    }
}

impl<N: 'static> TxWord for Handle<N> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.raw.get() as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        Handle {
            raw: NonZeroU32::new(w as u32).expect("null word decoded as Handle"),
            _m: PhantomData,
        }
    }
}

impl<N: 'static> TxWord for Option<Handle<N>> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        match self {
            Some(h) => h.raw.get() as u64,
            None => 0,
        }
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        NonZeroU32::new(w as u32).map(|raw| Handle {
            raw,
            _m: PhantomData,
        })
    }
}

/// Maps an absolute slot index to its (chunk, offset) pair.
#[inline(always)]
fn locate(i: u32) -> (usize, usize) {
    let j = (i >> BASE_SHIFT) + 1;
    let c = 31 - j.leading_zeros();
    let chunk_start = ((1u32 << c) - 1) << BASE_SHIFT;
    (c as usize, (i - chunk_start) as usize)
}

/// Slot count of chunk `c`.
#[inline(always)]
fn chunk_capacity(c: usize) -> usize {
    (BASE as usize) << c
}

/// Chunked, append-only slab of `N` values with transactional alloc/free.
/// Slots are initialized by the arena's *factory* — `N::default` for the
/// [`Arena::new`] family, or an arbitrary closure ([`Arena::new_with`]) so
/// nodes made of partition-bound [`crate::PVar`]s (which have no `Default`)
/// can be arena-allocated. See the module docs.
pub struct Arena<N> {
    chunks: [AtomicPtr<N>; NUM_CHUNKS],
    next: AtomicU32,
    // Free list behind a mutex: recycling is off the read hot path, and an
    // intrusive lock-free stack would need per-slot link words. Each entry
    // carries the global-clock timestamp of the commit that freed it (the
    // reuse barrier described in the module docs).
    free: Mutex<Vec<(u32, u64)>>,
    factory: Box<dyn Fn() -> N + Send + Sync>,
}

// SAFETY: the arena owns the chunk allocations (raw pointers) and hands out
// only shared references to slots; `N` must itself be shareable/sendable for
// that to be sound.
unsafe impl<N: Send + Sync> Send for Arena<N> {}
unsafe impl<N: Send + Sync> Sync for Arena<N> {}

impl<N: Default + 'static> Arena<N> {
    /// Creates an empty arena of default-initialized slots.
    pub fn new() -> Self {
        Self::new_with(N::default)
    }

    /// Creates an arena with the first chunks pre-installed to cover at
    /// least `cap` slots (avoids install CASes during measurement).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and(cap, N::default)
    }
}

impl<N: 'static> Arena<N> {
    /// Creates an empty arena whose slots are initialized by `factory`.
    ///
    /// This is how node types made of partition-bound [`crate::PVar`]s are
    /// arena-allocated: the factory captures the owning partition and binds
    /// every field of every slot at chunk-installation time.
    pub fn new_with(factory: impl Fn() -> N + Send + Sync + 'static) -> Self {
        Arena {
            chunks: Default::default(),
            next: AtomicU32::new(0),
            free: Mutex::new(Vec::new()),
            factory: Box::new(factory),
        }
    }

    /// [`Arena::new_with`] plus pre-installed chunks covering at least
    /// `cap` slots.
    pub fn with_capacity_and(cap: usize, factory: impl Fn() -> N + Send + Sync + 'static) -> Self {
        let a = Self::new_with(factory);
        let mut covered = 0usize;
        let mut c = 0;
        while covered < cap && c < NUM_CHUNKS {
            a.ensure_chunk(c);
            covered += chunk_capacity(c);
            c += 1;
        }
        a
    }

    fn ensure_chunk(&self, c: usize) {
        if !self.chunks[c].load(Ordering::Acquire).is_null() {
            return;
        }
        let mut v: Vec<N> = Vec::with_capacity(chunk_capacity(c));
        v.resize_with(chunk_capacity(c), &self.factory);
        let boxed: Box<[N]> = v.into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut N;
        if self.chunks[c]
            .compare_exchange(
                core::ptr::null_mut(),
                ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // Lost the install race; reconstitute and drop our chunk.
            // SAFETY: `ptr` came from `Box::into_raw` above and was never
            // published.
            unsafe {
                drop(Box::from_raw(core::ptr::slice_from_raw_parts_mut(
                    ptr,
                    chunk_capacity(c),
                )));
            }
        }
    }

    /// Allocates a slot outside of any transaction. Only safe while no
    /// transactions run concurrently (setup/teardown/tests): it ignores the
    /// snapshot reuse barrier that [`Arena::alloc`] enforces. The slot
    /// contents are whatever the previous user left (or `N::default()` for
    /// a fresh slot).
    pub fn alloc_raw(&self) -> Handle<N> {
        if let Some((i, _tag)) = self.free.lock().pop() {
            return Handle::from_index(i);
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (i as usize) < chunk_capacity(NUM_CHUNKS) * 2,
            "arena exhausted"
        );
        let (c, _) = locate(i);
        self.ensure_chunk(c);
        Handle::from_index(i)
    }

    /// Returns a slot to the free list outside of any transaction (setup/
    /// teardown only; no reuse barrier).
    pub fn free_raw(&self, h: Handle<N>) {
        self.free.lock().push((h.index(), 0));
    }

    /// Allocates a slot inside a transaction. If the transaction aborts the
    /// slot is reclaimed automatically.
    ///
    /// A recycled slot may have been freed *after* this transaction's
    /// snapshot; the allocation then extends the snapshot past the free
    /// (revalidating all reads) so the slot cannot alias a node that is
    /// still live in this transaction's view. The `Err` case is an abort
    /// like any other — propagate it with `?`.
    ///
    /// Initialize the node's fields with *transactional* writes before
    /// publishing a handle to it (see the module docs on recycling).
    pub fn alloc<'e>(&'e self, tx: &mut Tx<'e, '_>) -> crate::error::TxResult<Handle<N>>
    where
        N: Send + Sync + 'static,
    {
        let popped = self.free.lock().pop();
        let (h, tag) = match popped {
            Some((i, tag)) => (Handle::from_index(i), tag),
            None => {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                assert!(
                    (i as usize) < chunk_capacity(NUM_CHUNKS) * 2,
                    "arena exhausted"
                );
                let (c, _) = locate(i);
                self.ensure_chunk(c);
                (Handle::from_index(i), 0)
            }
        };
        if let Err(abort) = tx.ensure_snapshot_at_least(tag) {
            // Could not extend past the slot's free: put it back untouched
            // (with its original tag) and abort this attempt.
            self.free.lock().push((h.index(), tag));
            return Err(abort);
        }
        tx.log_alloc(
            self as *const Arena<N> as *const (),
            h.raw(),
            tag,
            reclaim_into::<N>,
        );
        Ok(h)
    }

    /// Frees a slot inside a transaction. The slot becomes reusable only
    /// when the transaction commits; on abort the free is forgotten.
    pub fn free<'e>(&'e self, tx: &mut Tx<'e, '_>, h: Handle<N>)
    where
        N: Send + Sync + 'static,
    {
        tx.log_free(
            self as *const Arena<N> as *const (),
            h.raw(),
            reclaim_into::<N>,
        );
    }

    /// Shared access to a slot. Lock-free.
    #[inline]
    pub fn get(&self, h: Handle<N>) -> &N {
        let (c, off) = locate(h.index());
        let ptr = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "handle into uninstalled chunk");
        // SAFETY: handles are only minted by `alloc*`, which installs the
        // chunk (Release) before returning; chunks are never freed or moved
        // until the arena drops, and `&self` keeps the arena alive.
        unsafe { &*ptr.add(off) }
    }

    /// Number of slots handed out and never freed (approximate under
    /// concurrency; exact when quiescent).
    pub fn live(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize - self.free.lock().len()
    }
}

impl<N: Default + 'static> Default for Arena<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> Drop for Arena<N> {
    fn drop(&mut self) {
        for c in 0..NUM_CHUNKS {
            let ptr = *self.chunks[c].get_mut();
            if !ptr.is_null() {
                // SAFETY: installed via Box::into_raw with this capacity;
                // exclusive access in Drop.
                unsafe {
                    drop(Box::from_raw(core::ptr::slice_from_raw_parts_mut(
                        ptr,
                        chunk_capacity(c),
                    )));
                }
            }
        }
    }
}

/// Type-erased "push this raw handle onto the free list with a reuse tag"
/// used by the transaction's alloc/free logs. The tag is the global-clock
/// time after which reuse is safe (commit time for frees; the slot's
/// original tag for rolled-back allocations).
///
/// # Safety
///
/// `arena` must point to a live `Arena<N>` of the matching `N` and `raw`
/// must be a raw handle minted by it.
pub(crate) unsafe fn reclaim_into<N>(arena: *const (), raw: u32, tag: u64) {
    let arena = &*(arena as *const Arena<N>);
    arena.free.lock().push((raw - 1, tag));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, (BASE - 1) as usize));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, (2 * BASE - 1) as usize));
        assert_eq!(locate(3 * BASE), (2, 0));
        // Exhaustive consistency: absolute index reconstructs.
        for i in (0..100_000u32).step_by(37) {
            let (c, off) = locate(i);
            let start = ((1u32 << c) - 1) << BASE_SHIFT;
            assert_eq!(start as usize + off, i as usize);
            assert!(off < chunk_capacity(c));
        }
    }

    #[test]
    fn alloc_get_free_recycles() {
        let a: Arena<TVar<u64>> = Arena::new();
        let h1 = a.alloc_raw();
        a.get(h1).store_direct(7);
        assert_eq!(a.get(h1).load_direct(), 7);
        a.free_raw(h1);
        let h2 = a.alloc_raw();
        assert_eq!(h1, h2, "freed slot is recycled LIFO");
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn handles_pack_into_words() {
        let h: Handle<u32> = Handle::from_index(41);
        assert_eq!(h.to_word(), 42);
        assert_eq!(Handle::<u32>::from_word(42), h);
        assert_eq!(Option::<Handle<u32>>::from_word(0), None);
        assert_eq!(Some(h).to_word(), 42);
        assert_eq!(Option::<Handle<u32>>::from_word(42), Some(h));
        assert_eq!(None::<Handle<u32>>.to_word(), 0);
    }

    #[test]
    fn with_capacity_preinstalls() {
        let a: Arena<u64> = Arena::with_capacity(5000);
        // 1024 + 2048 + 4096 covers 5000.
        assert!(!a.chunks[0].load(Ordering::Relaxed).is_null());
        assert!(!a.chunks[1].load(Ordering::Relaxed).is_null());
        assert!(!a.chunks[2].load(Ordering::Relaxed).is_null());
        assert!(a.chunks[3].load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn concurrent_alloc_yields_distinct_handles() {
        use std::sync::Arc;
        let a: Arc<Arena<TVar<u64>>> = Arc::new(Arena::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            joins.push(std::thread::spawn(move || {
                (0..2000).map(|_| a.alloc_raw().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16_000);
    }

    #[test]
    fn cross_chunk_allocation_works() {
        let a: Arena<u64> = Arena::new();
        let mut handles = Vec::new();
        for _ in 0..(BASE as usize * 3 + 10) {
            handles.push(a.alloc_raw());
        }
        // Touch one slot in each chunk.
        let _ = a.get(handles[0]);
        let _ = a.get(handles[BASE as usize]);
        let _ = a.get(handles[3 * BASE as usize + 5]);
    }
}
