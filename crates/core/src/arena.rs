//! Transactional object arena.
//!
//! Linked data structures (lists, trees) need stable node storage plus
//! transactional allocation: a node allocated inside a transaction must be
//! reclaimed if the transaction aborts, and a node freed inside a
//! transaction must only become reusable once the transaction commits
//! (TinySTM's `stm_malloc`/`stm_free` semantics). The [`Arena`] provides
//! both, with `u32` [`Handle`]s that pack into [`crate::TVar`] words so
//! nodes can reference each other transactionally.
//!
//! Storage is a chunk directory: chunk *c* holds `BASE << c` slots and is
//! installed at most once with a CAS, so `get` is lock-free and handles stay
//! valid for the arena's lifetime (chunks never move or shrink).
//!
//! ## Recycling and opacity
//!
//! A freed slot may still be *read* by concurrent transactions holding stale
//! handles. That is safe: node fields are only ever mutated through
//! transactional stores, so any post-recycling change bumps the covering
//! ownership record's version and the stale reader's validation fails.
//! Corollary: initialize recycled nodes with transactional writes (as
//! [`Arena::alloc`] documents), never with [`crate::TVar::store_direct`].
//!
//! The subtler hazard is on the *allocating* side: a transaction whose
//! snapshot predates a slot's free still sees that slot as a live node
//! elsewhere in the structure — handing it out would make the transaction's
//! "fresh" node alias a reachable node of its own (perfectly consistent)
//! snapshot, corrupting its view with no validation failure anywhere.
//! Every freed slot is therefore tagged with the commit timestamp of its
//! free, and [`Arena::alloc`] forces the allocating transaction to extend
//! its snapshot past that tag (revalidating its read set) before the slot
//! is reused — the LSA-flavoured equivalent of TinySTM's quiescence-based
//! `stm_malloc` reclamation.
//!
//! ## Bound arenas and live migration
//!
//! An arena built with [`Arena::new_bound`] carries a *home binding*: an
//! atomic partition handle (the same [`PVarBinding`] cell a
//! [`crate::PVar`] uses) that the slot factory reads at every chunk
//! installation, so every slot's fields bind to the arena's current home.
//! The repartition protocol ([`crate::repartition`]) can then move the
//! whole arena — home binding first, then every installed slot's fields —
//! or a slot subset ([`Arena::slots_of`]) to a different partition while
//! transactions run.
//!
//! Why that is safe, given that `alloc`/`free` may race the migration:
//!
//! * **Free list.** Entries are `(index, clock tag)` pairs — they name no
//!   partition, so rebinding never invalidates them. Pops and pushes are
//!   mutex-arbitrated against each other; the migration walk never touches
//!   the list (it walks chunk storage directly).
//! * **In-flight transactional `alloc`/`free`.** A transaction that began
//!   before the migration's epoch bump is drained by the quiesce before
//!   any binding moves; one that began after aborts at its first touch of
//!   an involved partition — and a popped-but-unpublished slot is returned
//!   to the free list by that abort's rollback, tag intact. A slot handed
//!   out *after* the flags clear initializes through the rebound fields
//!   and lands in the destination like any other access.
//! * **Chunk installation.** A racing [`Arena::alloc`] may install a fresh
//!   chunk *while* the migration rebinds the arena (the transaction only
//!   aborts at its first partition touch, which comes after allocation).
//!   The installer therefore re-reads the home binding after publishing
//!   the chunk and rebinds the new slots itself if the home moved
//!   mid-install; both the install CAS and the migration walk's chunk
//!   loads are `SeqCst`, so at least one side always observes the other
//!   (plain store-buffering argument). Fresh slots are unreachable — no
//!   handle to them exists yet — so this off-protocol rebind cannot race
//!   any transactional access.
//! * **Retired homes.** A rebound home (like any rebound `PVar`) parks its
//!   previous partition reference for the process lifetime, so a stale
//!   reader that loaded the old binding can at worst observe the previous
//!   partition — which the engine detects and converts into an ordinary
//!   switching abort (see `Tx::view_of_binding`).

use core::marker::PhantomData;
use core::num::NonZeroU32;
use core::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::partition::{Partition, PartitionId};
use crate::pvar::{PVarBinding, PVarFields};
use crate::repartition::{MigratableCollection, MigrationSource, TearableCollection};
use crate::txn::Tx;
use crate::word::TxWord;

/// log2 of the first chunk's slot count.
const BASE_SHIFT: u32 = 10;
/// Slots in chunk 0.
const BASE: u32 = 1 << BASE_SHIFT;
/// Maximum number of chunks (caps capacity at ~4 billion slots).
const NUM_CHUNKS: usize = 22;

/// Typed index of an arena slot. One word, non-null (so
/// `Option<Handle<N>>` also packs into a transactional word).
pub struct Handle<N> {
    raw: NonZeroU32,
    _m: PhantomData<fn() -> N>,
}

impl<N> Handle<N> {
    #[inline(always)]
    fn from_index(i: u32) -> Self {
        // Index 0 maps to raw 1; arena capacity < u32::MAX keeps this safe.
        Handle {
            raw: NonZeroU32::new(i + 1).expect("arena index overflow"),
            _m: PhantomData,
        }
    }

    #[inline(always)]
    fn index(self) -> u32 {
        self.raw.get() - 1
    }

    /// Raw non-zero representation (stable across the arena's lifetime).
    #[inline(always)]
    pub fn raw(self) -> u32 {
        self.raw.get()
    }
}

impl<N> Clone for Handle<N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<N> Copy for Handle<N> {}
impl<N> PartialEq for Handle<N> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<N> Eq for Handle<N> {}
impl<N> core::hash::Hash for Handle<N> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<N> core::fmt::Debug for Handle<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Handle({})", self.raw)
    }
}

impl<N: 'static> TxWord for Handle<N> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.raw.get() as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        Handle {
            raw: NonZeroU32::new(w as u32).expect("null word decoded as Handle"),
            _m: PhantomData,
        }
    }
}

impl<N: 'static> TxWord for Option<Handle<N>> {
    #[inline(always)]
    fn to_word(self) -> u64 {
        match self {
            Some(h) => h.raw.get() as u64,
            None => 0,
        }
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        NonZeroU32::new(w as u32).map(|raw| Handle {
            raw,
            _m: PhantomData,
        })
    }
}

/// Maps an absolute slot index to its (chunk, offset) pair.
#[inline(always)]
fn locate(i: u32) -> (usize, usize) {
    let j = (i >> BASE_SHIFT) + 1;
    let c = 31 - j.leading_zeros();
    let chunk_start = ((1u32 << c) - 1) << BASE_SHIFT;
    (c as usize, (i - chunk_start) as usize)
}

/// Slot count of chunk `c`.
#[inline(always)]
fn chunk_capacity(c: usize) -> usize {
    (BASE as usize) << c
}

/// Partition-aware slot constructor of a bound arena.
type BoundMake<N> = Box<dyn Fn(&Arc<Partition>) -> N + Send + Sync>;

/// How an arena initializes slots.
enum Factory<N> {
    /// Partition-free slot factory (the [`Arena::new_with`] family).
    Plain(Box<dyn Fn() -> N + Send + Sync>),
    /// Partition-bound ([`Arena::new_bound`]): slots are built against the
    /// arena's *home* partition, re-read at every chunk installation so
    /// chunks installed after a migration bind to the new home.
    Bound {
        home: PVarBinding,
        make: BoundMake<N>,
        /// Type-erased per-slot rebind, captured where `N: PVarFields` is
        /// known so `ensure_chunk` needs no extra bound (see the module
        /// docs on chunk installations racing a migration).
        rebind_slot: fn(&N, &Arc<Partition>),
    },
}

/// Chunked, append-only slab of `N` values with transactional alloc/free.
/// Slots are initialized by the arena's *factory* — `N::default` for the
/// [`Arena::new`] family, an arbitrary closure ([`Arena::new_with`]) so
/// nodes made of partition-bound [`crate::PVar`]s (which have no `Default`)
/// can be arena-allocated, or a partition-aware closure
/// ([`Arena::new_bound`]) that additionally makes the arena *migratable*
/// as a unit. See the module docs.
pub struct Arena<N> {
    chunks: [AtomicPtr<N>; NUM_CHUNKS],
    next: AtomicU32,
    // Free list behind a mutex: recycling is off the read hot path, and an
    // intrusive lock-free stack would need per-slot link words. Each entry
    // carries the global-clock timestamp of the commit that freed it (the
    // reuse barrier described in the module docs).
    free: Mutex<Vec<(u32, u64)>>,
    factory: Factory<N>,
}

// SAFETY: the arena owns the chunk allocations (raw pointers) and hands out
// only shared references to slots; `N` must itself be shareable/sendable for
// that to be sound.
unsafe impl<N: Send + Sync> Send for Arena<N> {}
unsafe impl<N: Send + Sync> Sync for Arena<N> {}

impl<N: Default + 'static> Arena<N> {
    /// Creates an empty arena of default-initialized slots.
    pub fn new() -> Self {
        Self::new_with(N::default)
    }

    /// Creates an arena with the first chunks pre-installed to cover at
    /// least `cap` slots (avoids install CASes during measurement).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and(cap, N::default)
    }
}

impl<N: 'static> Arena<N> {
    /// Creates an empty arena whose slots are initialized by `factory`.
    ///
    /// This is how node types made of partition-bound [`crate::PVar`]s are
    /// arena-allocated: the factory captures the owning partition and binds
    /// every field of every slot at chunk-installation time.
    pub fn new_with(factory: impl Fn() -> N + Send + Sync + 'static) -> Self {
        Arena {
            chunks: Default::default(),
            next: AtomicU32::new(0),
            free: Mutex::new(Vec::new()),
            factory: Factory::Plain(Box::new(factory)),
        }
    }

    /// [`Arena::new_with`] plus pre-installed chunks covering at least
    /// `cap` slots.
    pub fn with_capacity_and(cap: usize, factory: impl Fn() -> N + Send + Sync + 'static) -> Self {
        let a = Self::new_with(factory);
        a.preinstall(cap);
        a
    }

    fn preinstall(&self, cap: usize) {
        let mut covered = 0usize;
        let mut c = 0;
        while covered < cap && c < NUM_CHUNKS {
            self.ensure_chunk(c);
            covered += chunk_capacity(c);
            c += 1;
        }
    }

    fn ensure_chunk(&self, c: usize) {
        if !self.chunks[c].load(Ordering::SeqCst).is_null() {
            return;
        }
        // Bound arenas build the chunk against the home partition observed
        // *now* and re-check after publishing (module docs: chunk installs
        // racing a migration).
        let built_against = match &self.factory {
            Factory::Plain(_) => core::ptr::null(),
            Factory::Bound { home, .. } => home.load(),
        };
        let mut v: Vec<N> = Vec::with_capacity(chunk_capacity(c));
        match &self.factory {
            Factory::Plain(f) => v.resize_with(chunk_capacity(c), f),
            Factory::Bound { make, .. } => {
                let part = PVarBinding::arc_of(built_against);
                v.resize_with(chunk_capacity(c), || make(&part));
            }
        }
        let boxed: Box<[N]> = v.into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut N;
        if self.chunks[c]
            .compare_exchange(
                core::ptr::null_mut(),
                ptr,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            // Lost the install race; reconstitute and drop our chunk.
            // SAFETY: `ptr` came from `Box::into_raw` above and was never
            // published.
            unsafe {
                drop(Box::from_raw(core::ptr::slice_from_raw_parts_mut(
                    ptr,
                    chunk_capacity(c),
                )));
            }
            return;
        }
        if let Factory::Bound {
            home, rebind_slot, ..
        } = &self.factory
        {
            let now = home.load();
            if now != built_against {
                // A migration moved the home while we were building: our
                // slots are bound to the retired home. They are unreachable
                // (no handle to them exists yet), so rebinding them here,
                // outside the protocol's quiesce window, races no
                // transactional access. Nor can it race a *later*
                // migration's phase-3 walk into overwriting a newer
                // binding with `now`: migrations touching this arena share
                // its home partition and therefore serialize on the
                // switching flags, and any migration whose epoch bump
                // follows this attempt's begin waits in quiesce for the
                // whole attempt — including this loop — before walking.
                // The one migration that can overlap us (bump before our
                // begin) is exactly the one whose destination `now` is.
                let dst = PVarBinding::arc_of(now);
                // SAFETY: `ptr` was just published by us with this capacity
                // and chunks are never freed before the arena drops.
                let slots =
                    unsafe { core::slice::from_raw_parts(ptr as *const N, chunk_capacity(c)) };
                for n in slots {
                    rebind_slot(n, &dst);
                }
            }
        }
    }

    /// Allocates a slot outside of any transaction. Only safe while no
    /// transactions run concurrently (setup/teardown/tests): it ignores the
    /// snapshot reuse barrier that [`Arena::alloc`] enforces. The slot
    /// contents are whatever the previous user left (or `N::default()` for
    /// a fresh slot).
    pub fn alloc_raw(&self) -> Handle<N> {
        if let Some((i, _tag)) = self.free.lock().pop() {
            return Handle::from_index(i);
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            (i as usize) < chunk_capacity(NUM_CHUNKS) * 2,
            "arena exhausted"
        );
        let (c, _) = locate(i);
        self.ensure_chunk(c);
        Handle::from_index(i)
    }

    /// Returns a slot to the free list outside of any transaction (setup/
    /// teardown only; no reuse barrier).
    pub fn free_raw(&self, h: Handle<N>) {
        self.free.lock().push((h.index(), 0));
    }

    /// Allocates `n` slots outside of any transaction with one free-list
    /// drain plus one `fetch_add` for the remainder — the batch twin of
    /// [`Arena::alloc_raw`], for bulk loaders running under a
    /// [`crate::PrivateGuard`] (whose hold establishes exactly the
    /// "no transactions run against this partition" contract `alloc_raw`
    /// requires; see [`crate::privatize`]).
    pub fn bulk_alloc(&self, n: usize) -> Vec<Handle<N>> {
        let mut out = Vec::with_capacity(n);
        {
            let mut free = self.free.lock();
            while out.len() < n {
                match free.pop() {
                    Some((i, _tag)) => out.push(Handle::from_index(i)),
                    None => break,
                }
            }
        }
        let fresh = n - out.len();
        if fresh > 0 {
            let base = self.next.fetch_add(fresh as u32, Ordering::Relaxed);
            assert!(
                (base as usize + fresh) <= chunk_capacity(NUM_CHUNKS) * 2,
                "arena exhausted"
            );
            let (first, _) = locate(base);
            let (last, _) = locate(base + fresh as u32 - 1);
            for c in first..=last {
                self.ensure_chunk(c);
            }
            out.extend((base..base + fresh as u32).map(Handle::from_index));
        }
        out
    }

    /// Allocates a slot inside a transaction. If the transaction aborts the
    /// slot is reclaimed automatically.
    ///
    /// A recycled slot may have been freed *after* this transaction's
    /// snapshot; the allocation then extends the snapshot past the free
    /// (revalidating all reads) so the slot cannot alias a node that is
    /// still live in this transaction's view. The `Err` case is an abort
    /// like any other — propagate it with `?`.
    ///
    /// Initialize the node's fields with *transactional* writes before
    /// publishing a handle to it (see the module docs on recycling).
    pub fn alloc<'e>(&'e self, tx: &mut Tx<'e, '_>) -> crate::error::TxResult<Handle<N>>
    where
        N: Send + Sync + 'static,
    {
        let popped = self.free.lock().pop();
        let (h, tag) = match popped {
            Some((i, tag)) => (Handle::from_index(i), tag),
            None => {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                assert!(
                    (i as usize) < chunk_capacity(NUM_CHUNKS) * 2,
                    "arena exhausted"
                );
                let (c, _) = locate(i);
                self.ensure_chunk(c);
                (Handle::from_index(i), 0)
            }
        };
        if let Err(abort) = tx.ensure_snapshot_at_least(tag) {
            // Could not extend past the slot's free: put it back untouched
            // (with its original tag) and abort this attempt.
            self.free.lock().push((h.index(), tag));
            return Err(abort);
        }
        tx.log_alloc(
            self as *const Arena<N> as *const (),
            h.raw(),
            tag,
            reclaim_into::<N>,
        );
        Ok(h)
    }

    /// Frees a slot inside a transaction. The slot becomes reusable only
    /// when the transaction commits; on abort the free is forgotten.
    pub fn free<'e>(&'e self, tx: &mut Tx<'e, '_>, h: Handle<N>)
    where
        N: Send + Sync + 'static,
    {
        tx.log_free(
            self as *const Arena<N> as *const (),
            h.raw(),
            reclaim_into::<N>,
        );
    }

    /// Shared access to a slot. Lock-free.
    #[inline]
    pub fn get(&self, h: Handle<N>) -> &N {
        let (c, off) = locate(h.index());
        let ptr = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "handle into uninstalled chunk");
        // SAFETY: handles are only minted by `alloc*`, which installs the
        // chunk (Release) before returning; chunks are never freed or moved
        // until the arena drops, and `&self` keeps the arena alive.
        unsafe { &*ptr.add(off) }
    }

    /// Number of slots handed out and never freed (approximate under
    /// concurrency; exact when quiescent).
    pub fn live(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize - self.free.lock().len()
    }

    /// The home partition of a bound arena (where new slots bind), `None`
    /// for arenas built with the [`Arena::new_with`] family. Racy during a
    /// migration, like [`PVar::partition`](crate::PVar::partition).
    pub fn partition(&self) -> Option<Arc<Partition>> {
        match &self.factory {
            Factory::Plain(_) => None,
            Factory::Bound { home, .. } => Some(home.partition_arc()),
        }
    }

    /// Id of the home partition (see [`Arena::partition`]).
    pub fn partition_id(&self) -> Option<PartitionId> {
        match &self.factory {
            Factory::Plain(_) => None,
            Factory::Bound { home, .. } => Some(home.partition_id()),
        }
    }

    /// Handles of every currently live slot (handed out and not freed),
    /// in index order. Approximate under concurrency — a racing alloc or
    /// free can be missed or double-seen — and exact when quiescent; the
    /// migration directories use it for bucket accounting, where drift
    /// only perturbs a heuristic.
    pub fn live_handles(&self) -> Vec<Handle<N>> {
        let mut freed: Vec<u32> = self.free.lock().iter().map(|&(i, _)| i).collect();
        freed.sort_unstable();
        // A racing alloc bumps `next` *before* it installs the covering
        // chunk, so cap the walk at the installed-chunk prefix — a handle
        // into an uninstalled chunk must never be minted here (its `get`
        // would dereference a null chunk pointer).
        let next = self.next.load(Ordering::Acquire).min(self.installed_cap());
        (0..next)
            .filter(|i| freed.binary_search(i).is_err())
            .map(Handle::from_index)
            .collect()
    }

    /// Total slot count covered by the leading run of installed chunks.
    /// Chunks install in index order (allocation indices are sequential),
    /// so stopping at the first null is exact; even if a gap could form,
    /// undercounting only makes the live-slot walk more conservative.
    fn installed_cap(&self) -> u32 {
        let mut cap = 0usize;
        for c in 0..NUM_CHUNKS {
            if self.chunks[c].load(Ordering::SeqCst).is_null() {
                break;
            }
            cap += chunk_capacity(c);
        }
        cap.min(u32::MAX as usize) as u32
    }

    /// Visits every live slot (see [`Arena::live_handles`] for the
    /// concurrency caveat).
    pub fn for_each_live_slot(&self, mut f: impl FnMut(Handle<N>, &N)) {
        for h in self.live_handles() {
            f(h, self.get(h));
        }
    }

    /// Guard-gated bulk iterator: visits every live slot of a bound arena
    /// whose home partition is held by `guard`. Unlike the bare
    /// [`Arena::for_each_live_slot`], the walk is *exact*, not
    /// approximate: the privatization hold excludes every racing
    /// transactional alloc/free (see [`crate::privatize`]).
    ///
    /// # Panics
    ///
    /// If the arena is unbound, or bound to a partition the guard does not
    /// cover.
    pub fn bulk_for_each(&self, guard: &crate::PrivateGuard, f: impl FnMut(Handle<N>, &N)) {
        let home = self
            .partition()
            .expect("bulk_for_each requires a partition-bound arena");
        assert!(
            guard.covers(&home),
            "arena's home partition is not the privatized one"
        );
        self.for_each_live_slot(f);
    }

    /// Visits every slot of every installed chunk — live, freed, and
    /// never-handed-out alike (all are factory-initialized at chunk
    /// installation). This is the migration walk: freed and virgin slots
    /// must move too, or a recycled slot would come back bound to the old
    /// partition.
    fn for_each_installed_slot(&self, f: &mut dyn FnMut(&N)) {
        for c in 0..NUM_CHUNKS {
            // SeqCst pairs with the install CAS (module docs: chunk
            // installs racing a migration).
            let ptr = self.chunks[c].load(Ordering::SeqCst);
            if ptr.is_null() {
                continue;
            }
            // SAFETY: installed via `Box::into_raw` with this capacity;
            // chunks are never freed or moved until the arena drops.
            let slots = unsafe { core::slice::from_raw_parts(ptr as *const N, chunk_capacity(c)) };
            for n in slots {
                f(n);
            }
        }
    }
}

impl<N: PVarFields + 'static> Arena<N> {
    /// Creates a *partition-bound* arena: slots are initialized by `make`
    /// against the arena's current home partition (initially `part`), and
    /// the arena as a whole becomes migratable — the repartition protocol
    /// can rebind the home and every slot to a different partition live
    /// (see [`crate::repartition`] and the module docs).
    pub fn new_bound(
        part: &Arc<Partition>,
        make: impl Fn(&Arc<Partition>) -> N + Send + Sync + 'static,
    ) -> Self {
        Arena {
            chunks: Default::default(),
            next: AtomicU32::new(0),
            free: Mutex::new(Vec::new()),
            factory: Factory::Bound {
                home: PVarBinding::new(Arc::clone(part)),
                make: Box::new(make),
                rebind_slot: rebind_node::<N>,
            },
        }
    }

    /// [`Arena::new_bound`] plus pre-installed chunks covering at least
    /// `cap` slots.
    pub fn with_capacity_bound(
        part: &Arc<Partition>,
        cap: usize,
        make: impl Fn(&Arc<Partition>) -> N + Send + Sync + 'static,
    ) -> Self {
        let a = Self::new_bound(part, make);
        a.preinstall(cap);
        a
    }

    /// A migration surface over a subset of this arena's slots, for
    /// [`Stm::migrate_batch`](crate::Stm::migrate_batch): only the named
    /// slots' fields move; the home binding (and every other slot) stays.
    /// The caller must keep the handles valid for the batch's lifetime
    /// (they borrow the arena, so the usual rules apply).
    pub fn slots_of<'a>(&'a self, handles: &'a [Handle<N>]) -> ArenaSlots<'a, N> {
        ArenaSlots {
            arena: self,
            handles,
        }
    }
}

/// Per-slot rebind helper, monomorphized where `N: PVarFields` is known
/// and stored as a plain `fn` in [`Factory::Bound`].
fn rebind_node<N: PVarFields>(n: &N, dst: &Arc<Partition>) {
    n.for_each_pvar(&mut |m| m.pvar_binding().rebind(dst));
}

impl<N: PVarFields + 'static> MigrationSource for Arena<N> {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        // Home binding strictly before the slots: the chunk-installation
        // re-check (module docs) needs any racing installer that missed
        // the walk to observe the already-moved home.
        if let Factory::Bound { home, .. } = &self.factory {
            f(home);
        }
        self.for_each_installed_slot(&mut |n| n.for_each_pvar(&mut |m| f(m.pvar_binding())));
    }
}

impl<N: PVarFields + Send + Sync + 'static> MigratableCollection for Arena<N> {
    fn home_partition(&self) -> Arc<Partition> {
        self.partition()
            .expect("MigratableCollection requires a bound arena (Arena::new_bound)")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        self.for_each_live_slot(|_, n| n.for_each_pvar(&mut |m| f(m.var_addr())));
    }

    fn live_nodes(&self) -> usize {
        self.live()
    }
}

impl<N: PVarFields + Send + Sync + 'static> TearableCollection for Arena<N> {
    fn for_each_live_slot_addr(&self, f: &mut dyn FnMut(u32, usize)) {
        self.for_each_live_slot(|h, n| n.for_each_pvar(&mut |m| f(h.raw(), m.var_addr())));
    }

    fn for_each_slot_binding(&self, raw: &[u32], f: &mut dyn FnMut(&PVarBinding)) {
        // Tokens were minted by `for_each_live_slot_addr` as `Handle::raw`
        // (index + 1). Cap at the installed-chunk prefix like
        // `live_handles`: a stale token must never reach into an
        // uninstalled chunk. Freed-and-recycled slots are fine — their
        // fields are factory-initialized, and rebinding them is sound.
        let cap = self.installed_cap();
        for &r in raw {
            let Some(i) = r.checked_sub(1) else { continue };
            if i >= cap {
                continue;
            }
            self.get(Handle::from_index(i))
                .for_each_pvar(&mut |m| f(m.pvar_binding()));
        }
    }
}

/// A borrowed slot subset of an [`Arena`], usable as a
/// [`MigrationSource`]: migrating it rebinds the named slots' fields only.
/// The arena's home (and all other slots) keep their binding, so a
/// structure can be *torn across partitions* deliberately — the bound
/// access tier routes every field through its own binding, which keeps
/// that sound.
pub struct ArenaSlots<'a, N> {
    arena: &'a Arena<N>,
    handles: &'a [Handle<N>],
}

impl<N: PVarFields + 'static> MigrationSource for ArenaSlots<'_, N> {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        for &h in self.handles {
            self.arena
                .get(h)
                .for_each_pvar(&mut |m| f(m.pvar_binding()));
        }
    }
}

impl<N: Default + 'static> Default for Arena<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> Drop for Arena<N> {
    fn drop(&mut self) {
        for c in 0..NUM_CHUNKS {
            let ptr = *self.chunks[c].get_mut();
            if !ptr.is_null() {
                // SAFETY: installed via Box::into_raw with this capacity;
                // exclusive access in Drop.
                unsafe {
                    drop(Box::from_raw(core::ptr::slice_from_raw_parts_mut(
                        ptr,
                        chunk_capacity(c),
                    )));
                }
            }
        }
    }
}

/// Type-erased "push this raw handle onto the free list with a reuse tag"
/// used by the transaction's alloc/free logs. The tag is the global-clock
/// time after which reuse is safe (commit time for frees; the slot's
/// original tag for rolled-back allocations).
///
/// # Safety
///
/// `arena` must point to a live `Arena<N>` of the matching `N` and `raw`
/// must be a raw handle minted by it.
pub(crate) unsafe fn reclaim_into<N>(arena: *const (), raw: u32, tag: u64) {
    let arena = &*(arena as *const Arena<N>);
    arena.free.lock().push((raw - 1, tag));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE - 1), (0, (BASE - 1) as usize));
        assert_eq!(locate(BASE), (1, 0));
        assert_eq!(locate(3 * BASE - 1), (1, (2 * BASE - 1) as usize));
        assert_eq!(locate(3 * BASE), (2, 0));
        // Exhaustive consistency: absolute index reconstructs.
        for i in (0..100_000u32).step_by(37) {
            let (c, off) = locate(i);
            let start = ((1u32 << c) - 1) << BASE_SHIFT;
            assert_eq!(start as usize + off, i as usize);
            assert!(off < chunk_capacity(c));
        }
    }

    #[test]
    fn alloc_get_free_recycles() {
        let a: Arena<TVar<u64>> = Arena::new();
        let h1 = a.alloc_raw();
        a.get(h1).store_direct(7);
        assert_eq!(a.get(h1).load_direct(), 7);
        a.free_raw(h1);
        let h2 = a.alloc_raw();
        assert_eq!(h1, h2, "freed slot is recycled LIFO");
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn handles_pack_into_words() {
        let h: Handle<u32> = Handle::from_index(41);
        assert_eq!(h.to_word(), 42);
        assert_eq!(Handle::<u32>::from_word(42), h);
        assert_eq!(Option::<Handle<u32>>::from_word(0), None);
        assert_eq!(Some(h).to_word(), 42);
        assert_eq!(Option::<Handle<u32>>::from_word(42), Some(h));
        assert_eq!(None::<Handle<u32>>.to_word(), 0);
    }

    #[test]
    fn with_capacity_preinstalls() {
        let a: Arena<u64> = Arena::with_capacity(5000);
        // 1024 + 2048 + 4096 covers 5000.
        assert!(!a.chunks[0].load(Ordering::Relaxed).is_null());
        assert!(!a.chunks[1].load(Ordering::Relaxed).is_null());
        assert!(!a.chunks[2].load(Ordering::Relaxed).is_null());
        assert!(a.chunks[3].load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn concurrent_alloc_yields_distinct_handles() {
        use std::sync::Arc;
        let a: Arc<Arena<TVar<u64>>> = Arc::new(Arena::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            joins.push(std::thread::spawn(move || {
                (0..2000).map(|_| a.alloc_raw().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16_000);
    }

    #[test]
    fn cross_chunk_allocation_works() {
        let a: Arena<u64> = Arena::new();
        let mut handles = Vec::new();
        for _ in 0..(BASE as usize * 3 + 10) {
            handles.push(a.alloc_raw());
        }
        // Touch one slot in each chunk.
        let _ = a.get(handles[0]);
        let _ = a.get(handles[BASE as usize]);
        let _ = a.get(handles[3 * BASE as usize + 5]);
    }

    mod bound {
        use super::super::*;
        use crate::config::PartitionConfig;
        use crate::pvar::PVar;
        use crate::stm::Stm;

        struct Pair {
            a: PVar<u64>,
            b: PVar<u64>,
        }

        impl PVarFields for Pair {
            fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn crate::pvar::Migratable)) {
                f(&self.a);
                f(&self.b);
            }
        }

        fn pair_arena(part: &Arc<Partition>) -> Arena<Pair> {
            Arena::new_bound(part, |p| Pair {
                a: p.tvar(0),
                b: p.tvar(0),
            })
        }

        #[test]
        fn bound_arena_slots_bind_to_home() {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("home"));
            let a = pair_arena(&p);
            assert_eq!(a.partition_id(), Some(p.id()));
            assert!(Arc::ptr_eq(&a.partition().unwrap(), &p));
            let h = a.alloc_raw();
            assert_eq!(a.get(h).a.partition_id(), p.id());
            assert_eq!(a.get(h).b.partition_id(), p.id());
        }

        #[test]
        fn unbound_arena_reports_no_partition() {
            let a: Arena<u64> = Arena::new();
            assert!(a.partition().is_none());
            assert!(a.partition_id().is_none());
        }

        #[test]
        fn live_handles_tracks_alloc_and_free() {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("h"));
            let a = pair_arena(&p);
            let h1 = a.alloc_raw();
            let h2 = a.alloc_raw();
            let h3 = a.alloc_raw();
            a.free_raw(h2);
            let live = a.live_handles();
            assert_eq!(live, vec![h1, h3]);
            let mut seen = 0;
            a.for_each_live_slot(|h, _| {
                assert_ne!(h, h2);
                seen += 1;
            });
            assert_eq!(seen, 2);
        }

        #[test]
        fn chunks_installed_after_migration_bind_to_destination() {
            let stm = Stm::new();
            let src = stm.new_partition(PartitionConfig::named("src"));
            let dst = stm.new_partition(PartitionConfig::named("dst"));
            let a = pair_arena(&src);
            let h = a.alloc_raw();
            assert_eq!(
                stm.migrate_collection(&a, &dst),
                crate::stm::SwitchOutcome::Switched
            );
            assert_eq!(a.partition_id(), Some(dst.id()));
            assert_eq!(a.get(h).a.partition_id(), dst.id());
            // Exhaust chunk 0 so the next alloc installs a fresh chunk:
            // its factory must read the *migrated* home.
            while a.next.load(Ordering::Relaxed) < BASE {
                let _ = a.alloc_raw();
            }
            let h2 = a.alloc_raw();
            assert_eq!(a.get(h2).a.partition_id(), dst.id());
            assert_eq!(a.get(h2).b.partition_id(), dst.id());
        }

        #[test]
        fn slot_subset_migration_moves_only_named_slots() {
            let stm = Stm::new();
            let src = stm.new_partition(PartitionConfig::named("src"));
            let dst = stm.new_partition(PartitionConfig::named("dst"));
            let a = pair_arena(&src);
            let h1 = a.alloc_raw();
            let h2 = a.alloc_raw();
            let subset = [h1];
            assert_eq!(
                stm.migrate_batch(&a.slots_of(&subset), &dst),
                crate::stm::SwitchOutcome::Switched
            );
            assert_eq!(a.get(h1).a.partition_id(), dst.id());
            assert_eq!(a.get(h1).b.partition_id(), dst.id());
            assert_eq!(a.get(h2).a.partition_id(), src.id(), "unnamed slot stays");
            assert_eq!(a.partition_id(), Some(src.id()), "home stays");
            // A later whole-collection migration collects the strayed
            // slot's partition into the involved set and heals the split.
            assert_eq!(
                stm.migrate_collection(&a, &src),
                crate::stm::SwitchOutcome::Switched
            );
            assert_eq!(a.get(h1).a.partition_id(), src.id());
        }

        #[test]
        fn live_handles_never_reach_into_uninstalled_chunks() {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("race"));
            let a = pair_arena(&p);
            let _h = a.alloc_raw();
            // Simulate racing allocators that bumped `next` past the
            // installed chunk but have not installed the next chunk yet
            // (alloc publishes the index before ensure_chunk runs).
            a.next.store(BASE * 2, Ordering::Relaxed);
            let live = a.live_handles();
            assert_eq!(live.len(), BASE as usize, "capped at installed slots");
            // Every returned handle must be safely dereferencable.
            for h in live {
                let _ = a.get(h);
            }
            let mut walked = 0;
            a.for_each_live_slot(|_, _| walked += 1);
            assert_eq!(walked, BASE as usize);
        }

        #[test]
        fn collection_introspection_counts_live_fields() {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("c"));
            let a = pair_arena(&p);
            let _h1 = a.alloc_raw();
            let _h2 = a.alloc_raw();
            assert_eq!(MigratableCollection::live_nodes(&a), 2);
            let mut addrs = 0;
            a.for_each_live_addr(&mut |_| addrs += 1);
            assert_eq!(addrs, 4, "two live slots x two fields");
            assert!(Arc::ptr_eq(&a.home_partition(), &p));
        }
    }
}
