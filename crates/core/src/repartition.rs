//! Runtime repartitioning: structural mutation of the partition map.
//!
//! The configuration-switch protocol (see [`Stm::switch_partition`])
//! changes *how* one partition detects conflicts. The entry points here
//! change *what the partitions are*: [`Stm::migrate_pvars`] rebinds a
//! batch of [`PVar`](crate::PVar)s to a different partition, and
//! [`Stm::split_partition`] / [`Stm::merge_partitions`] are the structural
//! operations the online repartitioner (crate `partstm-repart`) executes
//! on top of it.
//!
//! ## Protocol
//!
//! A repartition generalizes the quiesce protocol to the *set* of involved
//! partitions (the destination plus every source a migrating variable is
//! currently bound to):
//!
//! 1. **Flag** — acquire the switching flag of every involved partition
//!    via CAS. Any acquisition failure rolls the already-set flags back
//!    and returns [`SwitchOutcome::Contended`] (abort-not-spin keeps
//!    concurrent repartitions deadlock-free).
//! 2. **Quiesce** — bump the global switch epoch and wait for every
//!    in-flight transaction begun before the bump to finish; attempts
//!    begun after the bump observe a switching flag at first touch of any
//!    involved partition and abort.
//! 3. **Mutate** — rebind the variables to the destination, stamp every
//!    involved partition's orec table with the current clock (a migrated
//!    variable maps onto destination orecs whose stored versions are stale
//!    for their new coverage), and install every involved partition's
//!    config word with generation+1, clearing the flags.
//!
//! A quiesce timeout rolls everything back ([`SwitchOutcome::TimedOut`],
//! debug builds panic), leaving bindings untouched — the same
//! rollback-not-crash contract as the configuration switch.
//!
//! ## Why rebinding is sound
//!
//! Bindings only change inside step 3, strictly before the flags clear.
//! A transaction that loaded a binding just before the rebind and touches
//! the stale partition *after* the flags cleared is the one hazardous
//! interleaving; the engine closes it by re-loading the binding after
//! first-touch view creation and aborting on mismatch (see
//! `Tx::view_of_binding` in `txn.rs`). Every other interleaving either
//! observes a switching flag (abort) or is ordered by the quiesce itself.
//!
//! ## Migration sources: flat batches, arenas, collections
//!
//! The protocol is agnostic to *what* enumerates the bindings it moves:
//! everything funnels through [`MigrationSource`], whose one method visits
//! each binding cell. A flat `&[&dyn Migratable]` batch is one source; a
//! partition-bound [`Arena`](crate::Arena) is another (home binding plus
//! every installed slot's fields); an arena slot subset
//! ([`Arena::slots_of`](crate::Arena::slots_of)) is a third; and a
//! structure (list, tree, map) is its arena plus its root variables.
//! [`MigratableCollection`] layers the introspection a migration
//! *directory* needs on top — home partition, live-field addresses for
//! profiler-bucket accounting — so the online repartitioner can map a
//! "bucket 17 of partition 3 is hot" report back to a whole structure and
//! move it with one [`Stm::split_collection`] call. See the arena module
//! docs for why the free list and racing `alloc`/`free` survive all this.

use std::sync::Arc;

use core::sync::atomic::Ordering;

use crate::config::{self, PartitionConfig};
use crate::partition::Partition;
use crate::pvar::{Migratable, PVarBinding};
use crate::rtlog;
use crate::stm::{bump_epoch_and_quiesce, Stm, StmInner, SwitchOutcome};
use crate::telemetry::{self, EventKind};

/// Source of binding cells for one repartition: the protocol flags the
/// partitions these bindings currently point at, quiesces, and rebinds
/// every visited cell to the destination.
///
/// Implementations only *enumerate* — the cells' mutators are private to
/// this crate, so a `MigrationSource` cannot rebind anything outside the
/// protocol. Implementations that own an arena must visit the arena's
/// home binding **before** its slot fields (delegate to the arena's own
/// [`MigrationSource`] impl): the chunk-installation re-check in
/// `arena.rs` relies on that order.
pub trait MigrationSource {
    /// Visits every binding cell this source moves.
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding));
}

/// A migratable collection: an arena-backed structure (or a bound arena
/// itself) that a migration directory can register, account against
/// profiler buckets, and move as a unit.
///
/// Implemented by every structure in `partstm-structures` and by
/// [`Arena`](crate::Arena) directly (for bound arenas without separate
/// roots).
pub trait MigratableCollection: MigrationSource + Send + Sync {
    /// The partition newly allocated nodes bind to — the collection's
    /// current home. Racy during a migration, like
    /// [`PVar::partition`](crate::PVar::partition).
    fn home_partition(&self) -> Arc<Partition>;

    /// Visits the word address of every *live* partition-bound field
    /// (roots and live arena slots), for profiler-bucket accounting (see
    /// [`profiler::bucket_of`](crate::profiler::bucket_of)). Approximate
    /// under concurrency.
    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize));

    /// Number of live nodes (approximate under concurrency).
    fn live_nodes(&self) -> usize;
}

/// A collection that can be *torn*: its live slots are individually
/// addressable (by the arena's raw handle word), so a directory can
/// attribute profiler heat to slot subsets and migrate just the hot
/// slots — celebrity keys — without moving the whole structure.
///
/// The raw handle values are opaque tokens minted by
/// [`for_each_live_slot_addr`](TearableCollection::for_each_live_slot_addr)
/// and consumed by
/// [`for_each_slot_binding`](TearableCollection::for_each_slot_binding);
/// callers never interpret them. Both views are approximate under
/// concurrency (slots may be freed and reused between the two calls),
/// which is sound: visiting a freed slot's bindings just rebinds
/// factory-initialized fields.
pub trait TearableCollection: MigratableCollection {
    /// Visits `(raw_handle, field_addr)` for every partition-bound field
    /// of every live slot. A slot with several fields is visited once per
    /// field, under the same raw handle.
    fn for_each_live_slot_addr(&self, f: &mut dyn FnMut(u32, usize));

    /// Visits every binding cell of the slots named by `raw` (tokens from
    /// [`for_each_live_slot_addr`](TearableCollection::for_each_live_slot_addr)).
    /// Unknown / stale tokens are skipped. Deliberately does *not* visit
    /// the collection's home binding or roots: tearing moves slots, not
    /// the structure.
    fn for_each_slot_binding(&self, raw: &[u32], f: &mut dyn FnMut(&PVarBinding));
}

/// Registration half of a migration directory: anything that accepts
/// [`MigratableCollection`] handles for later bucket-to-structure mapping.
///
/// Implemented by `partstm-repart`'s `ArenaDirectory`; declared here so
/// data-structure crates can expose `attach_directory` without depending
/// on the controller crate.
pub trait CollectionRegistry {
    /// Registers one collection.
    fn register_collection(&self, c: Arc<dyn MigratableCollection>);

    /// Registers a tearable collection. Directories that track per-slot
    /// heat override this to retain the tearable view; the default just
    /// registers the whole-collection view.
    fn register_tearable(&self, c: Arc<dyn TearableCollection>) {
        self.register_collection(c);
    }
}

/// Adapter: a flat batch of variables as a [`MigrationSource`].
struct VarsSource<'a>(&'a [&'a dyn Migratable]);

impl MigrationSource for VarsSource<'_> {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        for v in self.0 {
            f(v.pvar_binding());
        }
    }
}

impl Stm {
    /// Atomically rebinds `vars` to partition `dst` using the repartition
    /// protocol (see the [module docs](crate::repartition)).
    ///
    /// Variables already bound to `dst` are tolerated (their binding is
    /// refreshed). Returns [`SwitchOutcome::Unchanged`] without quiescing
    /// when every variable is already bound to `dst`.
    ///
    /// Must not be called from inside a transaction.
    ///
    /// # Panics
    ///
    /// If `dst` or any variable's current partition belongs to a different
    /// [`Stm`].
    pub fn migrate_pvars(&self, vars: &[&dyn Migratable], dst: &Arc<Partition>) -> SwitchOutcome {
        repartition_impl(&self.inner, &VarsSource(vars), dst, &[])
    }

    /// Atomically rebinds everything a [`MigrationSource`] enumerates —
    /// a whole arena, an arena slot subset
    /// ([`Arena::slots_of`](crate::Arena::slots_of)), a structure, or any
    /// combination — to partition `dst`, using the same repartition
    /// protocol as [`Stm::migrate_pvars`].
    ///
    /// Must not be called from inside a transaction.
    ///
    /// # Panics
    ///
    /// If `dst` or any enumerated binding's current partition belongs to a
    /// different [`Stm`].
    pub fn migrate_batch(&self, src: &dyn MigrationSource, dst: &Arc<Partition>) -> SwitchOutcome {
        repartition_impl(&self.inner, src, dst, &[])
    }

    /// Moves a whole collection (its arena — home, every slot — plus its
    /// roots) to partition `dst`. Equivalent to
    /// [`Stm::migrate_batch`]; provided for call-site clarity.
    pub fn migrate_collection(
        &self,
        c: &dyn MigratableCollection,
        dst: &Arc<Partition>,
    ) -> SwitchOutcome {
        repartition_impl(&self.inner, c, dst, &[])
    }

    /// Splits a collection out of its current home: creates a new
    /// partition from `cfg` and migrates the whole collection into it.
    /// The old home participates in the protocol (flag + generation bump)
    /// even if the collection was its only content.
    ///
    /// On [`Contended`](SwitchOutcome::Contended) /
    /// [`TimedOut`](SwitchOutcome::TimedOut) the new partition exists but
    /// is empty; retry with [`Stm::migrate_collection`] into the same
    /// destination.
    pub fn split_collection(
        &self,
        c: &dyn MigratableCollection,
        cfg: PartitionConfig,
    ) -> (Arc<Partition>, SwitchOutcome) {
        let home = c.home_partition();
        self.split_partition_batch(&home, cfg, c)
    }

    /// [`Stm::split_partition`] over an arbitrary [`MigrationSource`]:
    /// creates a new partition from `cfg` and migrates everything `src`
    /// enumerates into it, with `src_part` participating in the protocol
    /// even when nothing enumerated is currently bound to it.
    pub fn split_partition_batch(
        &self,
        src_part: &Arc<Partition>,
        cfg: PartitionConfig,
        src: &dyn MigrationSource,
    ) -> (Arc<Partition>, SwitchOutcome) {
        assert_eq!(
            src_part.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        let dst = self.new_partition(cfg);
        let outcome = repartition_impl(&self.inner, src, &dst, &[src_part]);
        (dst, outcome)
    }

    /// [`Stm::merge_partitions`] over an arbitrary [`MigrationSource`].
    pub fn merge_partitions_batch(
        &self,
        srcs: &[&Arc<Partition>],
        dst: &Arc<Partition>,
        src: &dyn MigrationSource,
    ) -> SwitchOutcome {
        repartition_impl(&self.inner, src, dst, srcs)
    }

    /// Splits `src`: creates a new partition from `cfg` and migrates
    /// `vars` (typically the hot subset of `src`'s variables) into it.
    ///
    /// Returns the new partition together with the migration outcome. On
    /// [`Contended`](SwitchOutcome::Contended) /
    /// [`TimedOut`](SwitchOutcome::TimedOut) the new partition exists but
    /// is empty; retry by calling [`Stm::migrate_pvars`] with the same
    /// destination.
    pub fn split_partition(
        &self,
        src: &Arc<Partition>,
        cfg: PartitionConfig,
        vars: &[&dyn Migratable],
    ) -> (Arc<Partition>, SwitchOutcome) {
        assert_eq!(
            src.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        let dst = self.new_partition(cfg);
        let outcome = repartition_impl(&self.inner, &VarsSource(vars), &dst, &[src]);
        (dst, outcome)
    }

    /// Merges `srcs` into `dst`: migrates `vars` (the variables still
    /// bound to the sources) into `dst` and bumps every source's
    /// generation even if it contributed no variables, marking the merge
    /// in its switch history.
    pub fn merge_partitions(
        &self,
        srcs: &[&Arc<Partition>],
        dst: &Arc<Partition>,
        vars: &[&dyn Migratable],
    ) -> SwitchOutcome {
        repartition_impl(&self.inner, &VarsSource(vars), dst, srcs)
    }
}

/// The three-phase repartition (flag / quiesce / mutate). `extra` names
/// partitions that must participate in the protocol (flag + generation
/// bump) even when no migrating binding currently points at them.
fn repartition_impl(
    inner: &StmInner,
    src: &dyn MigrationSource,
    dst: &Arc<Partition>,
    extra: &[&Arc<Partition>],
) -> SwitchOutcome {
    let out = repartition_body(inner, src, dst, extra);
    if telemetry::enabled() {
        // Binding count re-enumerated only on the (rare, enabled) control
        // path; on Switched it equals the number of rebound variables.
        let mut moved = 0u64;
        src.for_each_binding(&mut |_| moved += 1);
        telemetry::control_event(
            EventKind::Repartition,
            dst.id().0 as u64,
            telemetry::outcome_code(out),
            moved,
        );
    }
    out
}

fn repartition_body(
    inner: &StmInner,
    src: &dyn MigrationSource,
    dst: &Arc<Partition>,
    extra: &[&Arc<Partition>],
) -> SwitchOutcome {
    assert_eq!(dst.stm_id, inner.id, "partition belongs to a different Stm");
    let mut involved: Vec<Arc<Partition>> = Vec::with_capacity(extra.len() + 2);
    involved.push(Arc::clone(dst));
    for p in extra {
        assert_eq!(p.stm_id, inner.id, "partition belongs to a different Stm");
        involved.push(Arc::clone(p));
    }
    let mut all_in_dst = true;
    src.for_each_binding(&mut |b| {
        let p = b.partition_arc();
        assert_eq!(p.stm_id, inner.id, "variable bound to a different Stm");
        all_in_dst &= Arc::ptr_eq(&p, dst);
        // Dedup on insertion: a whole-arena source enumerates thousands of
        // bindings that resolve to a handful of partitions, so membership
        // in the (tiny) involved set is cheaper than collecting one Arc
        // clone per field and deduplicating afterwards.
        if !involved.iter().any(|q| Arc::ptr_eq(q, &p)) {
            involved.push(p);
        }
    });
    // Canonical flag-acquisition order (ids are unique per partition).
    involved.sort_by_key(|p| p.id());
    involved.dedup_by(|a, b| Arc::ptr_eq(a, b));
    if all_in_dst && involved.len() == 1 {
        return SwitchOutcome::Unchanged;
    }

    // Phase 1: flag every involved partition; roll back on any contention.
    let mut held: Vec<(usize, u64)> = Vec::with_capacity(involved.len());
    let unflag = |held: &[(usize, u64)]| {
        for &(j, w) in held {
            involved[j].config.store(w, Ordering::SeqCst);
        }
    };
    for (i, p) in involved.iter().enumerate() {
        let old = p.config.load(Ordering::SeqCst);
        let contended = config::is_switching(old)
            || p.config
                .compare_exchange(
                    old,
                    old | config::SWITCHING_BIT,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err();
        if contended {
            unflag(&held);
            return SwitchOutcome::Contended;
        }
        held.push((i, old));
    }

    // Re-validate every binding now that the flags are held: a concurrent
    // repartition may have moved a variable *between our initial binding
    // read and our flag acquisition*, to a partition outside the flagged
    // set — proceeding would rebind a variable whose current partition
    // never quiesced. Once every binding is confirmed inside the flagged
    // set this cannot recur: any later rebind of these variables needs the
    // switching flag of their current partition, which we hold. (A bound
    // arena can *grow* new slots concurrently, but those bind to its home,
    // which is in the flagged set — and the arena's own chunk-install
    // re-check covers slots built against a pre-rebind home.)
    let mut escaped = false;
    src.for_each_binding(&mut |b| {
        let p = b.load();
        escaped |= !involved.iter().any(|q| Arc::as_ptr(q) == p);
    });
    if escaped {
        unflag(&held);
        return SwitchOutcome::Contended;
    }

    // Phase 2: epoch bump + quiesce.
    if !bump_epoch_and_quiesce(inner, dst.id().0) {
        unflag(&held);
        let timeout = inner.quiesce_timeout;
        if cfg!(debug_assertions) {
            panic!(
                "repartition could not quiesce in {timeout:?}: \
                 a transaction appears stuck"
            );
        }
        rtlog::warn(&format!(
            "repartition into '{}' ({} partitions involved) rolled back: \
             quiescence not reached in {timeout:?} (stuck \
             transaction?); retryable",
            dst.name(),
            involved.len()
        ));
        return SwitchOutcome::TimedOut;
    }

    // Phase 3: rebind, reset orecs, install generation+1 (flags clear).
    src.for_each_binding(&mut |b| b.rebind(dst));
    let now = inner.clock.now();
    for &(j, w) in &held {
        let p = &involved[j];
        p.reset_orecs(now);
        // Restart the tuner's observation window: post-repartition deltas
        // must not straddle the structural change (a freshly split hot
        // partition otherwise inherits a half-window of cold history — the
        // tuner/controller cooperation contract, see `Partition::
        // reset_tuning_window` and the same call in `resize_orecs`).
        p.reset_tuning_window();
        p.config.store(
            config::encode(config::decode(w), config::generation(w).wrapping_add(1)),
            Ordering::SeqCst,
        );
    }
    SwitchOutcome::Switched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvar::PVar;
    use crate::stm::Stm;

    fn as_dyn<T: crate::word::TxWord + Send + Sync>(v: &PVar<T>) -> &dyn Migratable {
        v
    }

    #[test]
    fn migrate_rebinds_and_bumps_generations() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let x = a.tvar(1u64);
        let y = a.tvar(2u64);
        let ga = a.generation();
        let gb = b.generation();
        assert_eq!(
            stm.migrate_pvars(&[as_dyn(&x), as_dyn(&y)], &b),
            SwitchOutcome::Switched
        );
        assert_eq!(x.partition_id(), b.id());
        assert_eq!(y.partition_id(), b.id());
        assert_eq!(a.generation(), ga + 1, "source generation bumps");
        assert_eq!(b.generation(), gb + 1, "destination generation bumps");
        // Values survive the move and stay transactional.
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| tx.modify(&x, |v| v + 10)), 11);
        assert_eq!(ctx.run(|tx| tx.read(&y)), 2);
    }

    #[test]
    fn migrate_to_current_partition_is_unchanged() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let x = a.tvar(1u64);
        let g = a.generation();
        assert_eq!(
            stm.migrate_pvars(&[as_dyn(&x)], &a),
            SwitchOutcome::Unchanged
        );
        assert_eq!(a.generation(), g, "no-op must not quiesce or bump");
    }

    #[test]
    fn split_moves_the_chosen_vars_only() {
        let stm = Stm::new();
        let src = stm.new_partition(PartitionConfig::named("src"));
        let hot = src.tvar(7u64);
        let cold = src.tvar(8u64);
        let (dst, outcome) =
            stm.split_partition(&src, PartitionConfig::named("hot"), &[as_dyn(&hot)]);
        assert_eq!(outcome, SwitchOutcome::Switched);
        assert_eq!(hot.partition_id(), dst.id());
        assert_eq!(cold.partition_id(), src.id());
        assert_eq!(dst.name(), "hot");
        // Cross-partition transaction over the split pair stays atomic.
        let ctx = stm.register_thread();
        let sum = ctx.run(|tx| {
            let h = tx.read(&hot)?;
            let c = tx.read(&cold)?;
            Ok(h + c)
        });
        assert_eq!(sum, 15);
    }

    #[test]
    fn merge_brings_vars_home_and_marks_empty_sources() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let c = stm.new_partition(PartitionConfig::named("c"));
        let x = b.tvar(1i64);
        let gc = c.generation();
        assert_eq!(
            stm.merge_partitions(&[&b, &c], &a, &[as_dyn(&x)]),
            SwitchOutcome::Switched
        );
        assert_eq!(x.partition_id(), a.id());
        assert_eq!(c.generation(), gc + 1, "empty source still participates");
    }

    #[test]
    fn contended_repartition_rolls_flags_back() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let x = a.tvar(1u64);
        // Simulate a concurrent switch holding b's flag.
        let old = b.config.load(Ordering::SeqCst);
        b.config
            .store(old | config::SWITCHING_BIT, Ordering::SeqCst);
        assert_eq!(
            stm.migrate_pvars(&[as_dyn(&x)], &b),
            SwitchOutcome::Contended
        );
        // a's flag must have been rolled back.
        assert!(!config::is_switching(a.config.load(Ordering::SeqCst)));
        assert_eq!(x.partition_id(), a.id(), "binding untouched");
        b.config.store(old, Ordering::SeqCst);
        assert_eq!(
            stm.migrate_pvars(&[as_dyn(&x)], &b),
            SwitchOutcome::Switched
        );
    }

    #[test]
    #[should_panic(expected = "different Stm")]
    fn cross_stm_migration_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let a = stm1.new_partition(PartitionConfig::named("a"));
        let b = stm2.new_partition(PartitionConfig::named("b"));
        let x = a.tvar(1u64);
        let _ = stm2.migrate_pvars(&[&x as &dyn Migratable], &b);
    }
}
