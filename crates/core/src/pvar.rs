//! Partition-bound transactional variables.
//!
//! A [`PVar<T>`] is a [`TVar<T>`] that carries its owning partition: the
//! association the paper's compiler pass (Tanger + the data-structure
//! analysis) computes per access site is instead established *once, at
//! allocation*, by [`Partition::tvar`](crate::Partition::tvar). Access
//! sites then name only the variable — `tx.read(&var)` — and the engine
//! routes the access through the partition the variable is bound to,
//! which makes mis-partitioned accesses unrepresentable (see the soundness
//! contract in the crate docs).
//!
//! ## Rebinding (runtime repartitioning)
//!
//! The binding is *stable but not immutable*: the runtime repartitioner
//! ([`crate::Stm::migrate_pvars`] and the split/merge entry points built
//! on it) may move a variable to a different partition — but only inside
//! the quiesce window of the repartition protocol, while every involved
//! partition carries the switching flag and no transaction is in flight
//! on any of them. Outside that protocol the binding never changes, which
//! is what lets the engine cache one partition view per attempt (see the
//! `txn` module docs). The binding cell itself is a [`PVarBinding`]: an
//! atomic partition pointer whose every past value remains valid for the
//! process lifetime (retired bindings are parked, never freed), so a
//! racing reader can at worst observe the *previous* binding — a case the
//! engine detects and converts into an ordinary switching abort.
//!
//! The raw tier ([`Tx::read_raw`](crate::Tx::read_raw) and friends on bare
//! `TVar`s) remains available for code that manages the variable/partition
//! association itself.

use core::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use crate::partition::{Partition, PartitionId};
use crate::tvar::TVar;
use crate::word::TxWord;

/// Bindings retired by [`PVarBinding::rebind`]. Parking the old `Arc` here
/// (instead of dropping it) makes every pointer that was ever observable
/// through a binding valid for the process lifetime, closing the
/// load-then-dereference race against a concurrent rebind. Repartitions
/// are rare control-plane events, so the list stays small; the partitions
/// it retains are typically still registered with their `Stm` anyway.
static RETIRED: std::sync::Mutex<Vec<Arc<Partition>>> = std::sync::Mutex::new(Vec::new());

/// The atomic partition binding inside every [`PVar`].
///
/// Opaque on purpose: user code can *inspect* the binding (its partition
/// id) but only the repartition protocol in this crate can change it.
pub struct PVarBinding {
    /// Owns one strong reference to the bound partition
    /// (`Arc::into_raw`); swapped only under the repartition quiesce.
    ptr: AtomicPtr<Partition>,
}

impl PVarBinding {
    pub(crate) fn new(part: Arc<Partition>) -> Self {
        PVarBinding {
            ptr: AtomicPtr::new(Arc::into_raw(part) as *mut Partition),
        }
    }

    /// Current binding as a raw pointer (SeqCst: the engine's soundness
    /// argument orders this load against switching-flag loads).
    #[inline(always)]
    pub(crate) fn load(&self) -> *const Partition {
        self.ptr.load(Ordering::SeqCst)
    }

    /// Clones out the bound partition.
    pub(crate) fn partition_arc(&self) -> Arc<Partition> {
        Self::arc_of(self.load())
    }

    /// Manufactures an owning handle for a pointer previously loaded from
    /// *some* binding via [`PVarBinding::load`].
    pub(crate) fn arc_of(p: *const Partition) -> Arc<Partition> {
        // SAFETY: `p` came from `Arc::into_raw` and its strong count is
        // >= 1 until process exit: the owning reference is either still in
        // a binding or was parked in `RETIRED` by a rebind (never
        // dropped). The only dropped reference is the current one at
        // `PVarBinding::drop`, which requires exclusive access — no
        // shared-borrow caller can still be running then.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }

    /// Id of the bound partition. Racy by nature during a repartition (it
    /// may return the pre-migration partition for an instant); transactions
    /// never rely on it — the engine revalidates the binding itself.
    pub fn partition_id(&self) -> PartitionId {
        // SAFETY: pointer validity as in `partition_arc`.
        unsafe { (*self.load()).id() }
    }

    /// Rebinds to `dst`, parking the previous owning reference.
    ///
    /// # Protocol
    ///
    /// Must only be called by the repartition protocol, inside the quiesce
    /// window in which both the old and the new partition carry the
    /// switching flag and no transaction is in flight on either.
    pub(crate) fn rebind(&self, dst: &Arc<Partition>) {
        let new = Arc::into_raw(Arc::clone(dst)) as *mut Partition;
        let old = self.ptr.swap(new, Ordering::SeqCst);
        // SAFETY: `old` was this binding's owning reference (installed by
        // `new` or a previous `rebind`).
        let old = unsafe { Arc::from_raw(old as *const Partition) };
        // One parked reference per *distinct* partition suffices for the
        // liveness argument; dropping duplicates keeps the list bounded by
        // the number of partitions ever retired, not by vars x migrations
        // (a batch migration rebinds every variable away from the same
        // source). Dropping a duplicate is safe: the first parked entry
        // already pins the pointee forever.
        let mut retired = RETIRED.lock().unwrap_or_else(|e| e.into_inner());
        let p = Arc::as_ptr(&old);
        if !retired.iter().any(|a| Arc::as_ptr(a) == p) {
            retired.push(old);
        }
    }
}

/// Number of distinct partitions currently parked by retired bindings.
///
/// Observability hook for leak tests: the parked list must stay bounded by
/// the number of partitions ever torn down by a rebind — **not** grow with
/// `vars × migrations` — or a repartition storm slowly pins the heap.
pub fn retired_binding_count() -> usize {
    RETIRED.lock().unwrap_or_else(|e| e.into_inner()).len()
}

impl Drop for PVarBinding {
    fn drop(&mut self) {
        // SAFETY: dropping the binding's owning reference; exclusive
        // access, so no concurrent `load` can observe this pointer.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

impl core::fmt::Debug for PVarBinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("PVarBinding")
            .field(&self.partition_id())
            .finish()
    }
}

/// A transactional variable whose binding the repartitioner may move.
///
/// Implemented by [`PVar`]; object-safe so heterogeneously typed variables
/// can be collected into one migration batch
/// ([`crate::Stm::migrate_pvars`] takes `&[&dyn Migratable]`). The trait
/// exposes no way to *change* a binding — rebinding happens only inside
/// the repartition protocol.
pub trait Migratable: Send + Sync {
    /// The variable's binding cell.
    fn pvar_binding(&self) -> &PVarBinding;

    /// Address of the underlying transactional word — the key the sampled
    /// access profiler buckets by (see
    /// [`profiler::bucket_of`](crate::profiler::bucket_of)), letting a
    /// directory map profiler hot-bucket reports back to concrete
    /// variables.
    fn var_addr(&self) -> usize;
}

/// A node type made of partition-bound variables, with its fields
/// enumerable for migration.
///
/// Implemented by arena node types (and by [`PVar`] itself) so the
/// repartitioner can walk a structure's storage and rebind every field:
/// [`Arena::new_bound`](crate::Arena::new_bound) requires it, and the
/// arena-level migration surface
/// ([`MigrationSource`](crate::repartition::MigrationSource)) is built on
/// it. The visitor receives each field as a [`Migratable`], which exposes
/// the binding cell and the word address — everything a migration
/// directory or the repartition protocol needs, and nothing that would let
/// user code rebind outside the protocol.
pub trait PVarFields: Send + Sync {
    /// Visits every partition-bound field of this node.
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable));
}

impl<T: TxWord + Send + Sync> PVarFields for PVar<T> {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(self);
    }
}

/// A transactional variable bound to the partition that guards it.
///
/// Created with [`Partition::tvar`](crate::Partition::tvar) (or
/// [`PVar::new`]); the binding is established at allocation — exactly the
/// invariant the compile-time partitioning analysis computes, here enforced
/// by construction — and changes only when the runtime repartitioner
/// migrates the variable (see the module docs).
pub struct PVar<T> {
    pub(crate) binding: PVarBinding,
    pub(crate) var: TVar<T>,
}

impl<T: TxWord> PVar<T> {
    /// Creates a variable bound to `part` with an initial value.
    pub fn new(part: Arc<Partition>, value: T) -> Self {
        PVar {
            binding: PVarBinding::new(part),
            var: TVar::new(value),
        }
    }

    /// The partition this variable is currently bound to.
    #[inline]
    pub fn partition(&self) -> Arc<Partition> {
        self.binding.partition_arc()
    }

    /// Id of the owning partition (racy during a repartition; see
    /// [`PVarBinding::partition_id`]).
    #[inline]
    pub fn partition_id(&self) -> PartitionId {
        self.binding.partition_id()
    }

    /// The variable's binding cell (for migration batches).
    #[inline]
    pub fn binding(&self) -> &PVarBinding {
        &self.binding
    }

    /// The underlying unbound variable (for the raw API tier).
    #[inline(always)]
    pub fn var(&self) -> &TVar<T> {
        &self.var
    }

    /// Non-transactional read (see [`TVar::load_direct`]).
    #[inline]
    pub fn load_direct(&self) -> T {
        self.var.load_direct()
    }

    /// Non-transactional write (see [`TVar::store_direct`]).
    #[inline]
    pub fn store_direct(&self, value: T) {
        self.var.store_direct(value);
    }
}

impl<T: TxWord + Send + Sync> Migratable for PVar<T> {
    fn pvar_binding(&self) -> &PVarBinding {
        &self.binding
    }

    fn var_addr(&self) -> usize {
        self.var.addr()
    }
}

impl<T: TxWord + core::fmt::Debug> core::fmt::Debug for PVar<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PVar")
            .field("partition", &self.partition_id())
            .field("value", &self.load_direct())
            .finish()
    }
}

impl Partition {
    /// Creates a [`PVar`] bound to this partition.
    ///
    /// This is the allocation-time equivalent of the paper's compile-time
    /// variable→partition assignment: bind once here, then access with the
    /// partition-free [`Tx::read`](crate::Tx::read) /
    /// [`Tx::write`](crate::Tx::write) / [`Tx::modify`](crate::Tx::modify).
    pub fn tvar<T: TxWord>(self: &Arc<Self>, value: T) -> PVar<T> {
        PVar::new(Arc::clone(self), value)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PartitionConfig;
    use crate::stm::Stm;

    #[test]
    fn pvar_carries_its_partition() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("bound"));
        let x = p.tvar(9u64);
        assert_eq!(x.partition_id(), p.id());
        assert!(std::sync::Arc::ptr_eq(&x.partition(), &p));
        assert_eq!(x.load_direct(), 9);
        x.store_direct(11);
        assert_eq!(x.var().load_direct(), 11);
        assert!(format!("{x:?}").contains("PVar"));
    }

    #[test]
    fn rebind_parks_the_old_reference() {
        let stm = Stm::new();
        let a = stm.new_partition(PartitionConfig::named("a"));
        let b = stm.new_partition(PartitionConfig::named("b"));
        let x = a.tvar(1u64);
        assert_eq!(x.partition_id(), a.id());
        x.binding.rebind(&b);
        assert_eq!(x.partition_id(), b.id());
        assert!(std::sync::Arc::ptr_eq(&x.partition(), &b));
        // The old partition handle is still fully usable.
        assert_eq!(a.name(), "a");
        drop(x);
        assert_eq!(b.name(), "b");
    }
}
