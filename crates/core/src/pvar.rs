//! Partition-bound transactional variables.
//!
//! A [`PVar<T>`] is a [`TVar<T>`] that carries its owning partition: the
//! association the paper's compiler pass (Tanger + the data-structure
//! analysis) computes per access site is instead established *once, at
//! allocation*, by [`Partition::tvar`](crate::Partition::tvar). Access
//! sites then name only the variable — `tx.read(&var)` — and the engine
//! routes the access through the partition the variable was bound to,
//! which makes mis-partitioned accesses unrepresentable (see the soundness
//! contract in the crate docs).
//!
//! The raw tier ([`Tx::read_raw`](crate::Tx::read_raw) and friends on bare
//! `TVar`s) remains available for code that manages the variable/partition
//! association itself.

use std::sync::Arc;

use crate::partition::{Partition, PartitionId};
use crate::tvar::TVar;
use crate::word::TxWord;

/// A transactional variable bound to the partition that guards it.
///
/// Created with [`Partition::tvar`](crate::Partition::tvar) (or
/// [`PVar::new`]); the binding is immutable for the variable's lifetime —
/// exactly the invariant the compile-time partitioning analysis establishes,
/// here enforced by construction.
pub struct PVar<T> {
    pub(crate) part: Arc<Partition>,
    pub(crate) var: TVar<T>,
}

impl<T: TxWord> PVar<T> {
    /// Creates a variable bound to `part` with an initial value.
    pub fn new(part: Arc<Partition>, value: T) -> Self {
        PVar {
            part,
            var: TVar::new(value),
        }
    }

    /// The partition this variable is bound to.
    #[inline(always)]
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Id of the owning partition.
    #[inline]
    pub fn partition_id(&self) -> PartitionId {
        self.part.id()
    }

    /// The underlying unbound variable (for the raw API tier).
    #[inline(always)]
    pub fn var(&self) -> &TVar<T> {
        &self.var
    }

    /// Non-transactional read (see [`TVar::load_direct`]).
    #[inline]
    pub fn load_direct(&self) -> T {
        self.var.load_direct()
    }

    /// Non-transactional write (see [`TVar::store_direct`]).
    #[inline]
    pub fn store_direct(&self, value: T) {
        self.var.store_direct(value);
    }
}

impl<T: TxWord + core::fmt::Debug> core::fmt::Debug for PVar<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PVar")
            .field("partition", &self.part.id())
            .field("value", &self.load_direct())
            .finish()
    }
}

impl Partition {
    /// Creates a [`PVar`] bound to this partition.
    ///
    /// This is the allocation-time equivalent of the paper's compile-time
    /// variable→partition assignment: bind once here, then access with the
    /// partition-free [`Tx::read`](crate::Tx::read) /
    /// [`Tx::write`](crate::Tx::write) / [`Tx::modify`](crate::Tx::modify).
    pub fn tvar<T: TxWord>(self: &Arc<Self>, value: T) -> PVar<T> {
        PVar::new(Arc::clone(self), value)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PartitionConfig;
    use crate::stm::Stm;

    #[test]
    fn pvar_carries_its_partition() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("bound"));
        let x = p.tvar(9u64);
        assert_eq!(x.partition_id(), p.id());
        assert!(std::sync::Arc::ptr_eq(x.partition(), &p));
        assert_eq!(x.load_direct(), 9);
        x.store_direct(11);
        assert_eq!(x.var().load_direct(), 11);
        assert!(format!("{x:?}").contains("PVar"));
    }
}
