//! Runtime tuning hook.
//!
//! The engine periodically (every `window` commits per partition) hands a
//! statistics delta to a [`TuningPolicy`]; if the policy returns a new
//! [`DynConfig`], the runtime switches the partition via the quiesce
//! protocol (see [`crate::Stm::switch_partition`]). Policies live in the
//! `partstm-tuning` crate; this module defines only the interface so the
//! engine stays policy-agnostic.

use crate::config::DynConfig;
use crate::partition::PartitionId;
use crate::stats::StatCounters;

/// Everything a policy sees when evaluating one partition.
#[derive(Debug, Clone)]
pub struct TuneInput {
    /// Which partition is being evaluated.
    pub partition: PartitionId,
    /// The partition's name.
    pub name: String,
    /// Configuration currently in force.
    pub config: DynConfig,
    /// Counter deltas since the previous evaluation of this partition.
    pub delta: StatCounters,
    /// Wall-clock seconds covered by `delta`.
    pub seconds: f64,
}

impl TuneInput {
    /// Fraction of commits that wrote the partition (0 if no commits).
    pub fn update_fraction(&self) -> f64 {
        if self.delta.commits == 0 {
            0.0
        } else {
            self.delta.update_commits as f64 / self.delta.commits as f64
        }
    }

    /// Aborts per attempt: `aborts / (commits + aborts)` (0 if idle).
    pub fn abort_rate(&self) -> f64 {
        let aborts = self.delta.aborts();
        let attempts = self.delta.commits + aborts;
        if attempts == 0 {
            0.0
        } else {
            aborts as f64 / attempts as f64
        }
    }

    /// Mean reads per commit (0 if no commits).
    pub fn reads_per_commit(&self) -> f64 {
        if self.delta.commits == 0 {
            0.0
        } else {
            self.delta.reads as f64 / self.delta.commits as f64
        }
    }
}

/// Decision returned by a policy: the configuration the partition should
/// switch to. Returning the current configuration (or `None`) keeps it.
pub trait TuningPolicy: Send + Sync {
    /// Commits per partition between evaluations.
    fn window(&self) -> u64 {
        4096
    }

    /// Inspect one partition's recent behaviour; optionally reconfigure.
    ///
    /// Decisions a policy returns are visible in the flight recorder when
    /// telemetry is enabled: an applied switch lands as a `ConfigSwitch`
    /// event (with outcome, via the partition-switch path it shares with
    /// manual switches), and structural reconfigurations reset the window
    /// with a `TunerWindowReset` event. See [`crate::telemetry`].
    fn evaluate(&self, input: &TuneInput) -> Option<DynConfig>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(commits: u64, updates: u64, aborts: u64, reads: u64) -> TuneInput {
        TuneInput {
            partition: PartitionId(0),
            name: "t".into(),
            config: DynConfig::from(&crate::config::PartitionConfig::default()),
            delta: StatCounters {
                commits,
                update_commits: updates,
                aborts_wlock: aborts,
                reads,
                ..Default::default()
            },
            seconds: 1.0,
        }
    }

    #[test]
    fn derived_rates() {
        let i = input(100, 40, 25, 1000);
        assert!((i.update_fraction() - 0.4).abs() < 1e-9);
        assert!((i.abort_rate() - 0.2).abs() < 1e-9);
        assert!((i.reads_per_commit() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_partition_rates_are_zero() {
        let i = input(0, 0, 0, 0);
        assert_eq!(i.update_fraction(), 0.0);
        assert_eq!(i.abort_rate(), 0.0);
        assert_eq!(i.reads_per_commit(), 0.0);
    }
}
