//! Partitions: the unit of concurrency-control specialization.
//!
//! A partition owns its own ownership-record table and its own (atomically
//! switchable) configuration word, so the STM performs conflict detection
//! *separately per partition* and the tuner adjusts each partition
//! independently — the core mechanism of the paper.

use core::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::config::{self, DynConfig, Granularity, PartitionConfig};
use crate::orec::{Orec, RingSlot};
use crate::stats::{PartitionStats, StatCounters};

/// Identifier of a partition within one [`crate::Stm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// Multiplicative hash constant (Fibonacci hashing) for address mixing.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// State consumed by the tuner between evaluations.
#[derive(Debug)]
pub(crate) struct TuneState {
    pub(crate) last: StatCounters,
    pub(crate) last_at: Instant,
}

/// The orec-table allocations a partition owns: the current table plus
/// every table retired by a live resize. Retired tables are *parked*, not
/// freed — the same liveness idiom as `PVarBinding`'s retired list — so a
/// control-plane reader (diagnostic scan, another switch) that loaded the
/// table pointer just before a resize can still dereference it. Resizes
/// are rare, controller-gated events; the list stays small.
#[derive(Debug)]
struct TableHold {
    current: Box<[Orec]>,
    retired: Vec<Box<[Orec]>>,
    /// Version-ring allocation for `current` (`current.len() × ring
    /// depth` slots, flat), plus rings parked by resizes/depth changes —
    /// the same park-don't-free liveness idiom as `retired`.
    ring: Box<[RingSlot]>,
    retired_rings: Vec<Box<[RingSlot]>>,
}

/// One record evicted (or diverted) from an orec's version ring into the
/// partition's overflow list because a pinned snapshot reader may still
/// need it. Same semantics as [`RingSlot`], without the seqlock (the list
/// is mutex-guarded).
#[derive(Debug, Clone, Copy)]
struct OverflowRecord {
    addr: usize,
    val: u64,
    to: u64,
}

/// The overflow list plus its amortized-prune watermark.
#[derive(Debug, Default)]
struct Overflow {
    records: Vec<OverflowRecord>,
    /// Next length at which a prune pass runs (doubling watermark keeps
    /// pruning O(1) amortized per push).
    prune_at: usize,
}

/// A data partition with private STM metadata. Created via
/// [`crate::Stm::new_partition`]; shared as `Arc<Partition>`.
#[derive(Debug)]
pub struct Partition {
    pub(crate) id: PartitionId,
    pub(crate) stm_id: u64,
    name: String,
    /// Current dynamic configuration word (see [`crate::config`]).
    pub(crate) config: CachePadded<AtomicU64>,
    /// Hot-path view of the orec table: base pointer + index mask
    /// (`len - 1`, table size is a power of two). Swapped only by
    /// [`Partition::install_table`] inside the resize protocol's
    /// flag→quiesce window; the engine snapshots both once per attempt in
    /// its partition view (sound for the same reason the config decode is
    /// — see the `txn` module docs).
    table: AtomicPtr<Orec>,
    mask: AtomicUsize,
    /// Hot-path view of the version rings: flat base pointer
    /// (`orec_count × ring_depth` slots; orec *i* owns slots
    /// `i*depth..(i+1)*depth`) and the depth. Swapped only inside the
    /// same flag→quiesce windows as `table`/`mask`.
    ring: AtomicPtr<RingSlot>,
    ring_depth: AtomicUsize,
    /// Ring records that could not be recycled in place because a pinned
    /// snapshot reader may still need the victim (see
    /// [`crate::snapshot`]); consulted by readers on a ring miss.
    overflow: Mutex<Overflow>,
    /// `overflow.records.len()` mirror, so the read path can skip the
    /// mutex when the list is empty (the overwhelmingly common case).
    overflow_len: AtomicUsize,
    /// Owning allocations behind `table` (current + parked retirees).
    tables: Mutex<TableHold>,
    /// Completed in-place orec-table resizes (see
    /// [`crate::Stm::resize_orecs`]).
    resizes: AtomicU64,
    /// [`crate::telemetry::now_micros`] timestamp at which the current
    /// privatization window began, or 0 when the partition is not
    /// privately held. Stamped/cleared by [`crate::privatize`]; feeds the
    /// leaked-guard hold-age alarm.
    pub(crate) privatized_at_micros: AtomicU64,
    pub(crate) stats: PartitionStats,
    /// Whether the runtime tuner may reconfigure this partition.
    pub(crate) tunable: bool,
    /// Commits since the tuner last looked at this partition.
    pub(crate) tune_gate: CachePadded<AtomicU64>,
    pub(crate) tune_state: Mutex<TuneState>,
}

/// Allocates an orec table of `n` entries, every record stamped with
/// `version` and no readers.
fn alloc_table(n: usize, version: u64) -> Box<[Orec]> {
    let word = crate::orec::make_version(version);
    let mut orecs = Vec::with_capacity(n);
    orecs.resize_with(n, || {
        let o = Orec::default();
        o.lock.store(word, Ordering::Relaxed);
        o
    });
    orecs.into_boxed_slice()
}

/// Allocates a flat, empty version-ring array for `n` orecs of `depth`
/// slots each.
fn alloc_ring(n: usize, depth: usize) -> Box<[RingSlot]> {
    let mut slots = Vec::with_capacity(n * depth);
    slots.resize_with(n * depth, RingSlot::default);
    slots.into_boxed_slice()
}

/// Maps a word address to an orec index under granularity `g` for a table
/// with index mask `mask`. Shared by the engine's cached-view hot path and
/// the partition's own control-plane [`Partition::orec_for`].
#[inline(always)]
pub(crate) fn orec_index(mask: usize, addr: usize, g: Granularity) -> usize {
    let key = match g {
        Granularity::Word => addr >> 3,
        Granularity::Stripe { shift } => addr >> shift,
        Granularity::PartitionLock => return 0,
    };
    (((key as u64).wrapping_mul(MIX)) >> 32) as usize & mask
}

impl Partition {
    pub(crate) fn new(id: PartitionId, stm_id: u64, cfg: &PartitionConfig) -> Arc<Self> {
        let n = cfg.orec_count.next_power_of_two().max(1);
        let depth = cfg
            .ring_depth
            .clamp(config::MIN_RING_DEPTH, config::MAX_RING_DEPTH);
        let current = alloc_table(n, 0);
        let table = AtomicPtr::new(current.as_ptr() as *mut Orec);
        let ring = alloc_ring(n, depth);
        let ring_ptr = AtomicPtr::new(ring.as_ptr() as *mut RingSlot);
        Arc::new(Partition {
            id,
            stm_id,
            name: if cfg.name.is_empty() {
                format!("partition-{}", id.0)
            } else {
                cfg.name.clone()
            },
            config: CachePadded::new(AtomicU64::new(config::encode(DynConfig::from(cfg), 0))),
            table,
            mask: AtomicUsize::new(n - 1),
            ring: ring_ptr,
            ring_depth: AtomicUsize::new(depth),
            overflow: Mutex::new(Overflow::default()),
            overflow_len: AtomicUsize::new(0),
            tables: Mutex::new(TableHold {
                current,
                retired: Vec::new(),
                ring,
                retired_rings: Vec::new(),
            }),
            resizes: AtomicU64::new(0),
            privatized_at_micros: AtomicU64::new(0),
            stats: PartitionStats::default(),
            tunable: cfg.tune,
            tune_gate: CachePadded::new(AtomicU64::new(0)),
            tune_state: Mutex::new(TuneState {
                last: StatCounters::default(),
                last_at: Instant::now(),
            }),
        })
    }

    /// Partition id.
    #[inline]
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Partition name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ownership records in the table. No longer fixed at
    /// construction: a live [`crate::Stm::resize_orecs`] may change it.
    pub fn orec_count(&self) -> usize {
        self.mask.load(Ordering::Acquire) + 1
    }

    /// Completed in-place orec-table resizes.
    pub fn resize_count(&self) -> u64 {
        self.resizes.load(Ordering::Relaxed)
    }

    /// Version-ring depth: committed-version records each orec retains for
    /// the snapshot read path (see [`crate::snapshot`]). Changed live by
    /// [`crate::Stm::set_ring_depth`].
    pub fn ring_depth(&self) -> usize {
        self.ring_depth.load(Ordering::Acquire)
    }

    /// Records currently parked on the overflow list — ring evictions
    /// diverted because a pinned snapshot reader might still need them.
    /// Exposed as telemetry: a persistently large overflow means the ring
    /// depth is too small for the read-pin pattern.
    pub fn overflow_len(&self) -> usize {
        self.overflow_len.load(Ordering::Acquire)
    }

    /// Hot-path snapshot of the version rings: `(base pointer, depth)`.
    /// Same validity contract as [`Partition::table_view`]: meaningful only
    /// after observing the config word with the switching flag clear in the
    /// same attempt, because ring swaps happen strictly inside
    /// flag→quiesce windows. The pointed-to ring outlives the partition
    /// (retired rings are parked, never freed).
    #[inline(always)]
    pub(crate) fn ring_view(&self) -> (*const RingSlot, usize) {
        (
            self.ring.load(Ordering::Acquire),
            self.ring_depth.load(Ordering::Acquire),
        )
    }

    /// Parks a version record on the overflow list because the would-be
    /// ring victim is still protected by `floor` (a pinned reader may need
    /// it). Prunes records with `to <= floor` at a doubling watermark, so
    /// pruning is O(1) amortized per push and the list length stays
    /// proportional to the records actually protected.
    pub(crate) fn overflow_push(&self, addr: usize, val: u64, to: u64, floor: u64) {
        let mut ovf = self.overflow.lock();
        if ovf.records.len() >= ovf.prune_at {
            ovf.records.retain(|r| r.to > floor);
            ovf.prune_at = (ovf.records.len() * 2).max(64);
        }
        ovf.records.push(OverflowRecord { addr, val, to });
        self.overflow_len
            .store(ovf.records.len(), Ordering::Release);
    }

    /// Overflow half of the snapshot history lookup: among records for
    /// `addr` with close stamp strictly greater than `t`, returns the one
    /// with the smallest stamp as `(val, to)`. Callers merge this with the
    /// ring scan by taking the overall-smallest stamp.
    pub(crate) fn overflow_best(&self, addr: usize, t: u64) -> Option<(u64, u64)> {
        let ovf = self.overflow.lock();
        ovf.records
            .iter()
            .filter(|r| r.addr == addr && r.to > t)
            .min_by_key(|r| r.to)
            .map(|r| (r.val, r.to))
    }

    /// Whether the runtime tuner may reconfigure this partition.
    pub fn is_tunable(&self) -> bool {
        self.tunable
    }

    /// Snapshot of the partition's cumulative statistics.
    pub fn stats(&self) -> StatCounters {
        self.stats.snapshot()
    }

    /// Current dynamic configuration (decoded; racy by nature — a switch
    /// may follow immediately).
    pub fn current_config(&self) -> DynConfig {
        config::decode(self.config.load(Ordering::SeqCst))
    }

    /// Raw config word (SeqCst: part of the switch protocol).
    #[inline(always)]
    pub(crate) fn config_word(&self) -> u64 {
        self.config.load(Ordering::SeqCst)
    }

    /// Generation counter of the current configuration.
    pub fn generation(&self) -> u32 {
        config::generation(self.config.load(Ordering::SeqCst))
    }

    /// Whether this partition is currently privatized — held by a
    /// [`crate::PrivateGuard`] for non-transactional bulk access. Racy by
    /// nature (the guard may republish immediately after the load);
    /// intended for telemetry and for controllers that should not propose
    /// actions against a privately held partition.
    pub fn is_privatized(&self) -> bool {
        config::is_privatized(self.config.load(Ordering::SeqCst))
    }

    /// How long the current privatization window has been open, or `None`
    /// when the partition is not privately held. Racy by nature (the
    /// guard may republish concurrently); intended for the leaked-guard
    /// hold-age alarm (see [`crate::privatize::check_hold_alarm`]) and
    /// reports.
    pub fn privatized_for(&self) -> Option<std::time::Duration> {
        let at = self.privatized_at_micros.load(Ordering::Acquire);
        if at == 0 || !self.is_privatized() {
            return None;
        }
        let now = crate::telemetry::now_micros();
        Some(std::time::Duration::from_micros(now.saturating_sub(at)))
    }

    /// Encounter locks currently held in this partition's table by thread
    /// slot `owner`. Racy diagnostic (same contract as
    /// [`Partition::debug_scan`]); used by the quiesce hard-deadline path
    /// to attribute held locks to a stuck slot.
    pub(crate) fn held_locks_of(&self, owner: usize) -> usize {
        let hold = self.tables.lock();
        hold.current
            .iter()
            .filter(|o| {
                let l = o.lock.load(Ordering::SeqCst);
                crate::orec::is_locked(l) && crate::orec::owner_of(l) == owner
            })
            .count()
    }

    /// Hot-path snapshot of the orec table: `(base pointer, index mask)`.
    ///
    /// Only meaningful after observing this partition's config word with
    /// the switching flag *clear* in the same attempt (the engine does this
    /// at view creation): the resize protocol swaps the table strictly
    /// inside a flag→quiesce window, so an attempt that got past the flag
    /// check cannot interleave with a swap and the two loads are mutually
    /// consistent. The pointed-to table outlives the partition (retired
    /// tables are parked, never freed).
    #[inline(always)]
    pub(crate) fn table_view(&self) -> (*const Orec, usize) {
        (
            self.table.load(Ordering::Acquire),
            self.mask.load(Ordering::Acquire),
        )
    }

    /// Maps a word address to its ownership record under granularity `g`.
    ///
    /// Test convenience; the engine resolves orecs through the per-attempt
    /// cached [`Partition::table_view`] instead. The returned reference
    /// stays valid for the partition's lifetime even across a resize
    /// (retired tables are parked).
    #[cfg(test)]
    #[inline(always)]
    pub(crate) fn orec_for(&self, addr: usize, g: Granularity) -> &Orec {
        let (table, mask) = self.table_view();
        // SAFETY: `table` points at `mask + 1` orecs owned (current or
        // parked) by `self.tables`, alive as long as `self`.
        unsafe { &*table.add(orec_index(mask, addr, g)) }
    }

    /// Resets every ownership record to `version` with no readers.
    ///
    /// Called by the configuration-switch protocol *after* quiescence and
    /// *before* installing the new config word: a granularity change remaps
    /// addresses onto orecs whose stored versions are stale for their new
    /// coverage, so every orec is stamped with the current clock — any
    /// transaction with an older snapshot is then forced to extend (and
    /// revalidate) or abort on first contact.
    ///
    /// Safety of the protocol (not memory safety): during the window in
    /// which this runs, no transaction holds locks, reader bits or read-set
    /// entries on this partition — old-config transactions were drained by
    /// the quiesce and new transactions abort on the switching flag before
    /// touching any orec.
    pub(crate) fn reset_orecs(&self, version: u64) {
        use core::sync::atomic::Ordering;
        let word = crate::orec::make_version(version);
        let hold = self.tables.lock();
        for o in hold.current.iter() {
            debug_assert!(
                !crate::orec::is_locked(o.lock.load(Ordering::SeqCst)),
                "orec locked during a partition switch"
            );
            o.lock.store(word, Ordering::SeqCst);
            o.readers.store(0, Ordering::SeqCst);
        }
        // Version history is invalidated along with the orec stamps: after
        // a granularity change or migration the (addr → record) association
        // is stale. Discarding it is safe for snapshot readers — see the
        // migration argument in the `snapshot` module docs (readers that
        // pinned before this window were drained by the quiesce; readers
        // that pin after it get T ≥ the reset clock, which upper-bounds
        // every discarded record's close stamp).
        for s in hold.ring.iter() {
            s.clear();
        }
        drop(hold);
        let mut ovf = self.overflow.lock();
        ovf.records.clear();
        ovf.prune_at = 0;
        self.overflow_len.store(0, Ordering::Release);
    }

    /// Replaces the orec table with a fresh one of `count` entries (a
    /// power of two), every record stamped with `version`, and parks the
    /// old table. The capacity half of [`crate::Stm::resize_orecs`].
    ///
    /// # Protocol
    ///
    /// Must only be called inside the resize protocol's window: this
    /// partition's switching flag set *and* quiescence reached, so no
    /// transaction holds orec pointers, locks, reader bits or read-set
    /// entries against the old table, and none will look at the table
    /// until the flag clears (which the caller does strictly afterwards).
    pub(crate) fn install_table(&self, count: usize, version: u64) {
        debug_assert!(count.is_power_of_two());
        let new = alloc_table(count, version);
        let mut hold = self.tables.lock();
        debug_assert!(
            !hold.current.iter().any(|o| {
                crate::orec::is_locked(o.lock.load(core::sync::atomic::Ordering::SeqCst))
            }),
            "orec locked during a table resize"
        );
        self.table
            .store(new.as_ptr() as *mut Orec, Ordering::Release);
        self.mask.store(count - 1, Ordering::Release);
        let old = std::mem::replace(&mut hold.current, new);
        hold.retired.push(old);
        // The rings are indexed by orec, so a table resize needs a fresh
        // (empty) ring array of the new size; the old one is parked for
        // the same liveness reason as the old table. Discarded history is
        // safe for readers by the same argument as in `reset_orecs`.
        let new_ring = alloc_ring(count, self.ring_depth.load(Ordering::Acquire));
        self.ring
            .store(new_ring.as_ptr() as *mut RingSlot, Ordering::Release);
        let old_ring = std::mem::replace(&mut hold.ring, new_ring);
        hold.retired_rings.push(old_ring);
        drop(hold);
        let mut ovf = self.overflow.lock();
        ovf.records.clear();
        ovf.prune_at = 0;
        self.overflow_len.store(0, Ordering::Release);
        drop(ovf);
        self.resizes.fetch_add(1, Ordering::Relaxed);
    }

    /// Replaces the version rings with a fresh (empty) allocation of
    /// `depth` slots per orec and parks the old one. The depth half of
    /// [`crate::Stm::set_ring_depth`]; same protocol contract as
    /// [`Partition::install_table`] — only inside a flag→quiesce window.
    pub(crate) fn install_ring(&self, depth: usize) {
        debug_assert!((config::MIN_RING_DEPTH..=config::MAX_RING_DEPTH).contains(&depth));
        let mut hold = self.tables.lock();
        let new_ring = alloc_ring(hold.current.len(), depth);
        self.ring
            .store(new_ring.as_ptr() as *mut RingSlot, Ordering::Release);
        self.ring_depth.store(depth, Ordering::Release);
        let old_ring = std::mem::replace(&mut hold.ring, new_ring);
        hold.retired_rings.push(old_ring);
        drop(hold);
        let mut ovf = self.overflow.lock();
        ovf.records.clear();
        ovf.prune_at = 0;
        self.overflow_len.store(0, Ordering::Release);
    }

    /// Diagnostic scan of the orec table: `(locked_count, owner_slots,
    /// max_unlocked_version)`. Racy by nature; intended for debugging and
    /// health checks, not for synchronization.
    pub fn debug_scan(&self) -> (usize, Vec<usize>, u64) {
        use core::sync::atomic::Ordering;
        let mut locked = 0;
        let mut owners = Vec::new();
        let mut max_version = 0;
        let hold = self.tables.lock();
        for o in hold.current.iter() {
            let l = o.lock.load(Ordering::SeqCst);
            if crate::orec::is_locked(l) {
                locked += 1;
                owners.push(crate::orec::owner_of(l));
            } else {
                max_version = max_version.max(crate::orec::version_of(l));
            }
        }
        owners.sort_unstable();
        owners.dedup();
        (locked, owners, max_version)
    }

    /// Resets the tuner's observation window for this partition: the next
    /// tuning evaluation starts from a fresh statistics snapshot and a
    /// full commit window. Called after structural actions (orec-table
    /// resize, repartition) so the tuner judges the *new* shape on its own
    /// statistics instead of deltas that straddle the change — the
    /// tuner/controller cooperation half of the resize design.
    pub(crate) fn reset_tuning_window(&self) {
        let mut st = self.tune_state.lock();
        st.last = self.stats.snapshot();
        st.last_at = Instant::now();
        drop(st);
        self.tune_gate.store(0, Ordering::Relaxed);
        crate::telemetry::control_event(
            crate::telemetry::EventKind::TunerWindowReset,
            self.id.0 as u64,
            0,
            0,
        );
    }

    /// First orec of the current table, for tests asserting table identity
    /// across (rolled-back) resizes.
    #[cfg(test)]
    pub(crate) fn table_ptr(&self) -> *const Orec {
        self.table.load(Ordering::Acquire)
    }

    /// Test hook: forcibly sets or clears this partition's switching flag,
    /// simulating a concurrent switch holding the partition. While the
    /// flag is set, transactions touching the partition abort-and-retry
    /// and switches/repartitions involving it report
    /// [`Contended`](crate::SwitchOutcome::Contended).
    ///
    /// For failure-injection tests only — never call this in production
    /// code (clearing a flag a real switch owns would corrupt the
    /// protocol).
    #[doc(hidden)]
    pub fn debug_force_switch_flag(&self, on: bool) {
        let old = self.config.load(Ordering::SeqCst);
        let new = if on {
            old | config::SWITCHING_BIT
        } else {
            old & !config::SWITCHING_BIT
        };
        self.config.store(new, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReadMode;

    fn part(cfg: PartitionConfig) -> Arc<Partition> {
        Partition::new(PartitionId(3), 7, &cfg)
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        let p = part(PartitionConfig::default().orecs(1000));
        assert_eq!(p.orec_count(), 1024);
        let p = part(PartitionConfig::default().orecs(1));
        assert_eq!(p.orec_count(), 1);
    }

    #[test]
    fn default_name_includes_id() {
        let p = part(PartitionConfig::default());
        assert_eq!(p.name(), "partition-3");
        let p = part(PartitionConfig::named("tree"));
        assert_eq!(p.name(), "tree");
    }

    #[test]
    fn partition_lock_granularity_uses_single_orec() {
        let p = part(PartitionConfig::default().orecs(64));
        let a = p.orec_for(0x1000, Granularity::PartitionLock) as *const Orec;
        let b = p.orec_for(0xDEAD_BEE8, Granularity::PartitionLock) as *const Orec;
        assert_eq!(a, b);
        assert_eq!(a, p.table_ptr());
    }

    #[test]
    fn install_table_swaps_capacity_and_parks_the_old_table() {
        let p = part(PartitionConfig::default().orecs(64));
        assert_eq!(p.orec_count(), 64);
        assert_eq!(p.resize_count(), 0);
        let old = p.table_ptr();
        let old_orec = p.orec_for(0x1000, Granularity::Word) as *const Orec;
        p.install_table(512, 7);
        assert_eq!(p.orec_count(), 512);
        assert_eq!(p.resize_count(), 1);
        assert_ne!(p.table_ptr(), old, "fresh allocation");
        // Every new orec carries the stamp version.
        let (locked, _, maxv) = p.debug_scan();
        assert_eq!(locked, 0);
        assert_eq!(maxv, 7);
        // The old table is parked, not freed: pointers into it stay valid.
        // SAFETY: parked allocation, alive as long as `p`.
        let stale = unsafe { &*old_orec };
        assert!(!crate::orec::is_locked(stale.lock.load(Ordering::SeqCst)));
        // Shrink works too.
        p.install_table(8, 9);
        assert_eq!(p.orec_count(), 8);
        assert_eq!(p.resize_count(), 2);
    }

    #[test]
    fn reset_tuning_window_clears_gate_and_resnapshots() {
        let p = part(PartitionConfig::default().tunable());
        p.tune_gate.store(99, Ordering::Relaxed);
        p.stats.commits(0, 5);
        p.reset_tuning_window();
        assert_eq!(p.tune_gate.load(Ordering::Relaxed), 0);
        assert_eq!(p.tune_state.lock().last.commits, 5, "fresh snapshot");
    }

    #[test]
    fn word_granularity_separates_neighbouring_words() {
        let p = part(PartitionConfig::default().orecs(1 << 12));
        let base = 0x7f00_0000_0000usize;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..64 {
            distinct.insert(p.orec_for(base + i * 8, Granularity::Word) as *const Orec as usize);
        }
        // With 4096 orecs and 64 distinct words, expect little aliasing.
        assert!(
            distinct.len() > 48,
            "only {} distinct orecs",
            distinct.len()
        );
    }

    #[test]
    fn stripe_granularity_groups_within_stripe() {
        let p = part(PartitionConfig::default().orecs(1 << 12));
        let g = Granularity::Stripe { shift: 8 }; // 256-byte stripes
        let base = 0x5000_0000usize; // 256-aligned
        let o0 = p.orec_for(base, g) as *const Orec;
        for off in (0..256).step_by(8) {
            assert_eq!(p.orec_for(base + off, g) as *const Orec, o0);
        }
        // Neighbouring stripes usually map elsewhere.
        let o1 = p.orec_for(base + 256, g) as *const Orec;
        assert_ne!(o0, o1);
    }

    #[test]
    fn ring_depth_clamped_and_sized_with_table() {
        let p = part(PartitionConfig::default().orecs(64).ring(0));
        assert_eq!(p.ring_depth(), config::MIN_RING_DEPTH, "clamped up");
        let p = part(PartitionConfig::default().orecs(64).ring(1 << 20));
        assert_eq!(p.ring_depth(), config::MAX_RING_DEPTH, "clamped down");
        let p = part(PartitionConfig::default().orecs(64).ring(8));
        assert_eq!(p.ring_depth(), 8);
        let (ptr, depth) = p.ring_view();
        assert!(!ptr.is_null());
        assert_eq!(depth, 8);
    }

    #[test]
    fn install_ring_swaps_depth_and_parks_old_allocation() {
        let p = part(PartitionConfig::default().orecs(16).ring(2));
        let (old_ptr, _) = p.ring_view();
        // Publish a record, then change depth: history is discarded.
        // SAFETY: ring has 16 × 2 slots, alive as long as `p`.
        unsafe { &*old_ptr }.publish(0x40, 11, 5);
        p.install_ring(6);
        assert_eq!(p.ring_depth(), 6);
        let (new_ptr, depth) = p.ring_view();
        assert_ne!(new_ptr, old_ptr, "fresh allocation");
        assert_eq!(depth, 6);
        // SAFETY: fresh ring, alive as long as `p`.
        assert_eq!(unsafe { &*new_ptr }.read_stable().2, 0, "empty");
        // The parked ring stays dereferenceable.
        // SAFETY: parked allocation, alive as long as `p`.
        assert_eq!(unsafe { &*old_ptr }.read_stable(), (0x40, 11, 5));
    }

    #[test]
    fn resize_clears_rings_and_overflow() {
        let p = part(PartitionConfig::default().orecs(16).ring(2));
        p.overflow_push(0x40, 9, 3, 0);
        assert_eq!(p.overflow_len(), 1);
        assert_eq!(p.overflow_best(0x40, 2), Some((9, 3)));
        assert_eq!(p.overflow_best(0x40, 3), None, "to must exceed t");
        assert_eq!(p.overflow_best(0x48, 2), None, "address mismatch");
        p.install_table(32, 7);
        assert_eq!(p.overflow_len(), 0);
        assert_eq!(p.overflow_best(0x40, 2), None);
        let (ptr, depth) = p.ring_view();
        assert_eq!(depth, 2);
        for i in 0..32 * depth {
            // SAFETY: fresh ring of 32 × 2 slots, alive as long as `p`.
            assert_eq!(unsafe { &*ptr.add(i) }.read_stable().2, 0);
        }
    }

    #[test]
    fn overflow_prunes_below_floor_at_watermark() {
        let p = part(PartitionConfig::default().orecs(1));
        // Fill past the first watermark (64) with stale records, floor 100.
        for i in 0..70 {
            p.overflow_push(8 * i, 1, 10, 100);
        }
        // The prune pass at len == 64 dropped everything stale; the list
        // can never grow proportionally to dead records.
        assert!(p.overflow_len() < 70, "prune ran: {}", p.overflow_len());
        // Protected records (to > floor) survive pruning.
        for i in 0..70 {
            p.overflow_push(8 * i, 2, 200, 100);
        }
        assert!(p.overflow_len() >= 70);
        assert_eq!(p.overflow_best(0, 150), Some((2, 200)));
    }

    #[test]
    fn reset_orecs_clears_history() {
        let p = part(PartitionConfig::default().orecs(4).ring(2));
        let (ptr, _) = p.ring_view();
        // SAFETY: ring has 4 × 2 slots, alive as long as `p`.
        unsafe { &*ptr }.publish(0x10, 77, 9);
        p.overflow_push(0x10, 78, 10, 0);
        p.reset_orecs(42);
        // SAFETY: same ring (reset clears in place, no swap).
        assert_eq!(unsafe { &*ptr }.read_stable().2, 0);
        assert_eq!(p.overflow_len(), 0);
    }

    #[test]
    fn config_roundtrip_through_partition() {
        let p = part(
            PartitionConfig::default()
                .read_mode(ReadMode::Visible)
                .tunable(),
        );
        assert_eq!(p.current_config().read_mode, ReadMode::Visible);
        assert!(p.is_tunable());
        assert_eq!(p.generation(), 0);
    }
}
