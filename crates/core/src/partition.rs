//! Partitions: the unit of concurrency-control specialization.
//!
//! A partition owns its own ownership-record table and its own (atomically
//! switchable) configuration word, so the STM performs conflict detection
//! *separately per partition* and the tuner adjusts each partition
//! independently — the core mechanism of the paper.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::config::{self, DynConfig, Granularity, PartitionConfig};
use crate::orec::Orec;
use crate::stats::{PartitionStats, StatCounters};

/// Identifier of a partition within one [`crate::Stm`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// Multiplicative hash constant (Fibonacci hashing) for address mixing.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// State consumed by the tuner between evaluations.
#[derive(Debug)]
pub(crate) struct TuneState {
    pub(crate) last: StatCounters,
    pub(crate) last_at: Instant,
}

/// A data partition with private STM metadata. Created via
/// [`crate::Stm::new_partition`]; shared as `Arc<Partition>`.
#[derive(Debug)]
pub struct Partition {
    pub(crate) id: PartitionId,
    pub(crate) stm_id: u64,
    name: String,
    /// Current dynamic configuration word (see [`crate::config`]).
    pub(crate) config: CachePadded<AtomicU64>,
    orecs: Box<[Orec]>,
    /// `orecs.len() - 1` (table size is a power of two).
    mask: usize,
    pub(crate) stats: PartitionStats,
    /// Whether the runtime tuner may reconfigure this partition.
    pub(crate) tunable: bool,
    /// Commits since the tuner last looked at this partition.
    pub(crate) tune_gate: CachePadded<AtomicU64>,
    pub(crate) tune_state: Mutex<TuneState>,
}

impl Partition {
    pub(crate) fn new(id: PartitionId, stm_id: u64, cfg: &PartitionConfig) -> Arc<Self> {
        let n = cfg.orec_count.next_power_of_two().max(1);
        let mut orecs = Vec::with_capacity(n);
        orecs.resize_with(n, Orec::default);
        Arc::new(Partition {
            id,
            stm_id,
            name: if cfg.name.is_empty() {
                format!("partition-{}", id.0)
            } else {
                cfg.name.clone()
            },
            config: CachePadded::new(AtomicU64::new(config::encode(DynConfig::from(cfg), 0))),
            orecs: orecs.into_boxed_slice(),
            mask: n - 1,
            stats: PartitionStats::default(),
            tunable: cfg.tune,
            tune_gate: CachePadded::new(AtomicU64::new(0)),
            tune_state: Mutex::new(TuneState {
                last: StatCounters::default(),
                last_at: Instant::now(),
            }),
        })
    }

    /// Partition id.
    #[inline]
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Partition name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ownership records in the table.
    pub fn orec_count(&self) -> usize {
        self.orecs.len()
    }

    /// Whether the runtime tuner may reconfigure this partition.
    pub fn is_tunable(&self) -> bool {
        self.tunable
    }

    /// Snapshot of the partition's cumulative statistics.
    pub fn stats(&self) -> StatCounters {
        self.stats.snapshot()
    }

    /// Current dynamic configuration (decoded; racy by nature — a switch
    /// may follow immediately).
    pub fn current_config(&self) -> DynConfig {
        config::decode(self.config.load(Ordering::SeqCst))
    }

    /// Raw config word (SeqCst: part of the switch protocol).
    #[inline(always)]
    pub(crate) fn config_word(&self) -> u64 {
        self.config.load(Ordering::SeqCst)
    }

    /// Generation counter of the current configuration.
    pub fn generation(&self) -> u32 {
        config::generation(self.config.load(Ordering::SeqCst))
    }

    /// Maps a word address to its ownership record under granularity `g`.
    #[inline(always)]
    pub(crate) fn orec_for(&self, addr: usize, g: Granularity) -> &Orec {
        let idx = match g {
            Granularity::Word => self.mix_index(addr >> 3),
            Granularity::Stripe { shift } => self.mix_index(addr >> shift),
            Granularity::PartitionLock => 0,
        };
        // Index is masked into range below.
        &self.orecs[idx]
    }

    #[inline(always)]
    fn mix_index(&self, key: usize) -> usize {
        (((key as u64).wrapping_mul(MIX)) >> 32) as usize & self.mask
    }

    /// Resets every ownership record to `version` with no readers.
    ///
    /// Called by the configuration-switch protocol *after* quiescence and
    /// *before* installing the new config word: a granularity change remaps
    /// addresses onto orecs whose stored versions are stale for their new
    /// coverage, so every orec is stamped with the current clock — any
    /// transaction with an older snapshot is then forced to extend (and
    /// revalidate) or abort on first contact.
    ///
    /// Safety of the protocol (not memory safety): during the window in
    /// which this runs, no transaction holds locks, reader bits or read-set
    /// entries on this partition — old-config transactions were drained by
    /// the quiesce and new transactions abort on the switching flag before
    /// touching any orec.
    pub(crate) fn reset_orecs(&self, version: u64) {
        use core::sync::atomic::Ordering;
        let word = crate::orec::make_version(version);
        for o in self.orecs.iter() {
            debug_assert!(
                !crate::orec::is_locked(o.lock.load(Ordering::SeqCst)),
                "orec locked during a partition switch"
            );
            o.lock.store(word, Ordering::SeqCst);
            o.readers.store(0, Ordering::SeqCst);
        }
    }

    /// Diagnostic scan of the orec table: `(locked_count, owner_slots,
    /// max_unlocked_version)`. Racy by nature; intended for debugging and
    /// health checks, not for synchronization.
    pub fn debug_scan(&self) -> (usize, Vec<usize>, u64) {
        use core::sync::atomic::Ordering;
        let mut locked = 0;
        let mut owners = Vec::new();
        let mut max_version = 0;
        for o in self.orecs.iter() {
            let l = o.lock.load(Ordering::SeqCst);
            if crate::orec::is_locked(l) {
                locked += 1;
                owners.push(crate::orec::owner_of(l));
            } else {
                max_version = max_version.max(crate::orec::version_of(l));
            }
        }
        owners.sort_unstable();
        owners.dedup();
        (locked, owners, max_version)
    }

    /// The orec table, for diagnostics/tests.
    #[cfg(test)]
    pub(crate) fn orecs(&self) -> &[Orec] {
        &self.orecs
    }

    /// Test hook: forcibly sets or clears this partition's switching flag,
    /// simulating a concurrent switch holding the partition. While the
    /// flag is set, transactions touching the partition abort-and-retry
    /// and switches/repartitions involving it report
    /// [`Contended`](crate::SwitchOutcome::Contended).
    ///
    /// For failure-injection tests only — never call this in production
    /// code (clearing a flag a real switch owns would corrupt the
    /// protocol).
    #[doc(hidden)]
    pub fn debug_force_switch_flag(&self, on: bool) {
        let old = self.config.load(Ordering::SeqCst);
        let new = if on {
            old | config::SWITCHING_BIT
        } else {
            old & !config::SWITCHING_BIT
        };
        self.config.store(new, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReadMode;

    fn part(cfg: PartitionConfig) -> Arc<Partition> {
        Partition::new(PartitionId(3), 7, &cfg)
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        let p = part(PartitionConfig::default().orecs(1000));
        assert_eq!(p.orec_count(), 1024);
        let p = part(PartitionConfig::default().orecs(1));
        assert_eq!(p.orec_count(), 1);
    }

    #[test]
    fn default_name_includes_id() {
        let p = part(PartitionConfig::default());
        assert_eq!(p.name(), "partition-3");
        let p = part(PartitionConfig::named("tree"));
        assert_eq!(p.name(), "tree");
    }

    #[test]
    fn partition_lock_granularity_uses_single_orec() {
        let p = part(PartitionConfig::default().orecs(64));
        let a = p.orec_for(0x1000, Granularity::PartitionLock) as *const Orec;
        let b = p.orec_for(0xDEAD_BEE8, Granularity::PartitionLock) as *const Orec;
        assert_eq!(a, b);
        assert_eq!(a, &p.orecs()[0] as *const Orec);
    }

    #[test]
    fn word_granularity_separates_neighbouring_words() {
        let p = part(PartitionConfig::default().orecs(1 << 12));
        let base = 0x7f00_0000_0000usize;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..64 {
            distinct.insert(p.orec_for(base + i * 8, Granularity::Word) as *const Orec as usize);
        }
        // With 4096 orecs and 64 distinct words, expect little aliasing.
        assert!(
            distinct.len() > 48,
            "only {} distinct orecs",
            distinct.len()
        );
    }

    #[test]
    fn stripe_granularity_groups_within_stripe() {
        let p = part(PartitionConfig::default().orecs(1 << 12));
        let g = Granularity::Stripe { shift: 8 }; // 256-byte stripes
        let base = 0x5000_0000usize; // 256-aligned
        let o0 = p.orec_for(base, g) as *const Orec;
        for off in (0..256).step_by(8) {
            assert_eq!(p.orec_for(base + off, g) as *const Orec, o0);
        }
        // Neighbouring stripes usually map elsewhere.
        let o1 = p.orec_for(base + 256, g) as *const Orec;
        assert_ne!(o0, o1);
    }

    #[test]
    fn config_roundtrip_through_partition() {
        let p = part(
            PartitionConfig::default()
                .read_mode(ReadMode::Visible)
                .tunable(),
        );
        assert_eq!(p.current_config().read_mode, ReadMode::Visible);
        assert!(p.is_tunable());
        assert_eq!(p.generation(), 0);
    }
}
