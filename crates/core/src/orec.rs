//! Ownership records (orecs): the versioned write-locks of the STM.
//!
//! Each partition owns a fixed, power-of-two-sized table of orecs. Every
//! transactional word maps to exactly one orec of its partition (the mapping
//! depends on the partition's current conflict-detection granularity, see
//! [`crate::config::Granularity`]).
//!
//! An orec packs two atomic words:
//!
//! * `lock` — TinySTM-style versioned lock word:
//!   - unlocked: `version << 1 | 0`; `version` is the global-clock timestamp
//!     of the last commit that wrote under this orec;
//!   - locked: `owner_slot << 1 | 1`; `owner_slot` is the thread-slot index
//!     of the writer currently holding the lock.
//! * `readers` — visible-reader bitmap; bit *i* set means thread slot *i*
//!   currently holds a visible read on this orec. Only used while the
//!   partition runs in [`crate::config::ReadMode::Visible`].
//!
//! ## Version rings
//!
//! Each orec additionally owns a small *version ring*: `ring_depth`
//! [`RingSlot`]s, allocated by the partition as one flat array parallel to
//! the orec table. A committing writer, while still holding the orec's
//! write-lock, publishes the value it is about to overwrite as
//! `(address, old value, overwritten-at = wv)` into one slot; the snapshot
//! read path ([`crate::snapshot`]) uses these records to serve a value
//! that was current at its pinned timestamp even after later commits have
//! overwritten the live cell. Slots are written only by the orec's current
//! lock holder (so publications are mutually serialized) and read by
//! anyone, via a per-slot seqlock.

use core::sync::atomic::{AtomicU64, Ordering};

/// Lock-word low bit: set while a writer owns the orec.
pub const LOCK_BIT: u64 = 1;

/// Returns `true` if the lock word denotes a locked orec.
#[inline(always)]
pub fn is_locked(word: u64) -> bool {
    word & LOCK_BIT != 0
}

/// Extracts the version from an *unlocked* lock word.
#[inline(always)]
pub fn version_of(word: u64) -> u64 {
    debug_assert!(!is_locked(word));
    word >> 1
}

/// Extracts the owner thread-slot index from a *locked* lock word.
#[inline(always)]
pub fn owner_of(word: u64) -> usize {
    debug_assert!(is_locked(word));
    (word >> 1) as usize
}

/// Builds an unlocked lock word carrying `version`.
#[inline(always)]
pub fn make_version(version: u64) -> u64 {
    version << 1
}

/// Builds a locked lock word owned by thread slot `slot`.
#[inline(always)]
pub fn make_locked(slot: usize) -> u64 {
    ((slot as u64) << 1) | LOCK_BIT
}

/// One ownership record, padded to its own cache line.
///
/// ## Why 64 bytes
///
/// The record itself is three words (lock, readers, aliasing hint). At the
/// bare 24 bytes, two to four neighbouring orecs share one cache line, so
/// under the address-mixing hash *unrelated* stripes ping-pong the same
/// line between writers — false sharing stacked on top of the hash
/// aliasing the table size already causes, and invisible to the aliasing
/// telemetry (the conflict never reaches the STM layer; it is paid in
/// memory stalls). `#[repr(align(64))]` gives every orec its own line.
/// The cost is a 64-byte table entry (4× the seed's 16 bytes, ~128 KiB
/// for the default 2048-orec table); the 1-core commit-path microbench
/// (`partition_overhead`) measures parity with the unpadded 16-byte seed
/// layout — `cached_view_64r` ≈ 0.72–0.77 µs/txn padded vs 0.76 µs
/// unpadded, and `validate_64r_1w` (a forced full 64-entry validation
/// pass) ≈ 0.84–0.89 µs, ~1–1.7 ns per validated entry with the batched
/// prefetching pass. The padding is bought for multi-core scaling, not
/// paid for on one core.
///
/// ## The aliasing hint
///
/// `hint` records the word address of the last write acquisition (one
/// relaxed store into a line the acquiring writer already owns — free).
/// It lets a conflicting transaction classify its abort: if the hint names
/// a *different* address than the one it was accessing, the conflict is
/// (very likely) orec *aliasing* — two unrelated addresses hashed onto the
/// same record — rather than a true data conflict. The per-partition
/// `conflicts_aliased` / `conflicts_true` counters built on this probe
/// drive the online analyzer's orec-table [`resize`](crate::Stm::resize_orecs)
/// proposals. The hint is racy telemetry (a second writer may overwrite it
/// before the victim looks); misclassification skews the estimate, never
/// correctness.
#[derive(Debug)]
#[repr(align(64))]
pub struct Orec {
    /// Versioned lock word (see module docs for the encoding).
    pub lock: AtomicU64,
    /// Visible-reader bitmap (thread slot -> bit).
    pub readers: AtomicU64,
    /// Word address of the last write acquisition (0 = none yet);
    /// aliasing telemetry only, see the type docs.
    pub hint: AtomicU64,
    /// Ring-scan seqlock: odd while a version-ring publish for this orec
    /// is in flight, bumped twice per publish. A snapshot reader's ring
    /// scan is not atomic, so commits can cycle records *behind* its scan
    /// cursor — publishing the record it needs into a slot it has already
    /// visited. A scan that overlapped any publish (epoch odd, or changed
    /// across the scan) must retry; see the marching-eviction hazard in
    /// [`crate::snapshot`]. Bumps never race each other: publishes happen
    /// only under this orec's write lock. Fits the existing 64-byte
    /// padding, so the field is free.
    pub ring_epoch: AtomicU64,
}

impl Default for Orec {
    fn default() -> Self {
        Orec {
            lock: AtomicU64::new(make_version(0)),
            readers: AtomicU64::new(0),
            hint: AtomicU64::new(0),
            ring_epoch: AtomicU64::new(0),
        }
    }
}

impl Orec {
    /// Current lock word (Acquire: pairs with writers' Release unlock so a
    /// reader that observes the new version also observes the written data).
    #[inline(always)]
    pub fn load_lock(&self) -> u64 {
        self.lock.load(Ordering::Acquire)
    }

    /// Reader bitmap excluding `my_bit`. SeqCst: the visible-read protocol
    /// is a store-buffering pattern (reader: set bit then check lock;
    /// writer: take lock then check bits) and needs a total order so at
    /// least one side observes the other.
    #[inline(always)]
    pub fn readers_except(&self, my_bit: u64) -> u64 {
        self.readers.load(Ordering::SeqCst) & !my_bit
    }

    /// Sets the caller's visible-reader bit; returns `true` if the bit was
    /// newly set (i.e. this transaction had not registered on this orec).
    #[inline(always)]
    pub fn add_reader(&self, my_bit: u64) -> bool {
        self.readers.fetch_or(my_bit, Ordering::SeqCst) & my_bit == 0
    }

    /// Clears the caller's visible-reader bit.
    #[inline(always)]
    pub fn remove_reader(&self, my_bit: u64) {
        self.readers.fetch_and(!my_bit, Ordering::SeqCst);
    }

    /// Attempts to acquire the lock, transitioning `expected_unlocked` ->
    /// locked-by-`slot`. Returns the observed word on failure.
    #[inline(always)]
    pub fn try_lock(&self, expected_unlocked: u64, slot: usize) -> Result<(), u64> {
        self.lock
            .compare_exchange(
                expected_unlocked,
                make_locked(slot),
                Ordering::SeqCst,
                Ordering::Acquire,
            )
            .map(|_| ())
    }

    /// Releases the lock, installing `version` (commit) or restoring the
    /// previous word (abort). Release: publishes the written values.
    #[inline(always)]
    pub fn unlock(&self, word: u64) {
        self.lock.store(word, Ordering::Release);
    }

    /// Publishes the word address this acquisition covers (aliasing
    /// telemetry; called by the writer right after a successful
    /// [`Orec::try_lock`], when it exclusively owns the line anyway).
    #[inline(always)]
    pub fn note_addr(&self, addr: usize) {
        self.hint.store(addr as u64, Ordering::Relaxed);
    }

    /// The last published acquisition address (0 = none yet). Racy by
    /// design — see the type docs.
    #[inline(always)]
    pub fn hint_addr(&self) -> u64 {
        self.hint.load(Ordering::Relaxed)
    }

    /// Opens the ring-scan seqlock for one version-ring publish (-> odd).
    /// Caller must hold this orec's write lock.
    #[inline(always)]
    pub fn ring_publish_begin(&self) {
        self.ring_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Closes the ring-scan seqlock after a publish (-> even).
    #[inline(always)]
    pub fn ring_publish_end(&self) {
        self.ring_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Current ring-scan epoch (odd = a publish is in flight). Snapshot
    /// readers bracket their ring scan with two loads and retry unless
    /// both are the same even value.
    #[inline(always)]
    pub fn ring_epoch(&self) -> u64 {
        self.ring_epoch.load(Ordering::SeqCst)
    }
}

/// One record of an orec's version ring: a committed value that has since
/// been overwritten, tagged with the word address it belonged to and the
/// commit timestamp `to` of the commit that overwrote it.
///
/// The validity interval needs no explicit lower bound: per address, `to`
/// stamps are exactly the address's commit points, so "the value current
/// at time `T`" is the value of the record with the *smallest `to`
/// strictly greater than `T`" — and the live cell when no such record
/// exists (see the [`crate::snapshot`] module docs for the proof).
///
/// Concurrency: `publish` is called only while the caller holds the
/// owning orec's write-lock, so writers never race each other on a slot;
/// readers race writers and are fenced out by the `seq` seqlock (odd =
/// mid-publication). `to == 0` marks an empty slot — commit timestamps
/// start at 1, so 0 is never a valid stamp.
#[derive(Debug, Default)]
pub struct RingSlot {
    /// Seqlock word: odd while a publication is in progress.
    seq: AtomicU64,
    /// Word address the recorded value belonged to.
    addr: AtomicU64,
    /// The overwritten value.
    val: AtomicU64,
    /// Commit timestamp of the overwriting commit (0 = slot empty).
    to: AtomicU64,
}

impl RingSlot {
    /// The record's `to` stamp (0 = empty). Racy by design: victim
    /// selection tolerates a concurrent publication (the caller holds the
    /// orec lock, so on the write path there is none).
    #[inline(always)]
    pub fn close_stamp(&self) -> u64 {
        self.to.load(Ordering::SeqCst)
    }

    /// Overwrites the slot with a fresh record. Caller must hold the
    /// owning orec's write-lock.
    #[inline]
    pub fn publish(&self, addr: u64, val: u64, to: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::SeqCst); // -> odd
        self.addr.store(addr, Ordering::SeqCst);
        self.val.store(val, Ordering::SeqCst);
        self.to.store(to, Ordering::SeqCst);
        self.seq.store(s.wrapping_add(2), Ordering::SeqCst); // -> even
    }

    /// Clears the slot (control-plane only: inside a quiesce window, or on
    /// a freshly allocated ring).
    pub fn clear(&self) {
        self.addr.store(0, Ordering::SeqCst);
        self.val.store(0, Ordering::SeqCst);
        self.to.store(0, Ordering::SeqCst);
    }

    /// Reads a stable `(addr, val, to)` triple, spinning out concurrent
    /// publications (they are three stores under the orec lock, so the
    /// wait is short; `to == 0` in the result means the slot is empty).
    pub fn read_stable(&self) -> (u64, u64, u64) {
        let mut spins = 0u32;
        loop {
            let s1 = self.seq.load(Ordering::SeqCst);
            if s1.is_multiple_of(2) {
                let addr = self.addr.load(Ordering::SeqCst);
                let val = self.val.load(Ordering::SeqCst);
                let to = self.to.load(Ordering::SeqCst);
                if self.seq.load(Ordering::SeqCst) == s1 {
                    return (addr, val, to);
                }
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }
}

/// The bit a thread slot occupies in reader bitmaps. Slots must be < 64;
/// the runtime enforces `max_threads <= 64` so the mapping is exact.
#[inline(always)]
pub fn reader_bit(slot: usize) -> u64 {
    debug_assert!(slot < 64);
    1u64 << slot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_word_encoding_roundtrips() {
        for v in [0u64, 1, 42, u64::MAX >> 1] {
            let w = make_version(v);
            assert!(!is_locked(w));
            assert_eq!(version_of(w), v);
        }
        for s in [0usize, 1, 17, 63] {
            let w = make_locked(s);
            assert!(is_locked(w));
            assert_eq!(owner_of(w), s);
        }
    }

    #[test]
    fn lock_acquire_release_cycle() {
        let o = Orec::default();
        let unlocked = o.load_lock();
        assert_eq!(version_of(unlocked), 0);
        o.try_lock(unlocked, 5).unwrap();
        let held = o.load_lock();
        assert!(is_locked(held));
        assert_eq!(owner_of(held), 5);
        // Second acquisition attempt fails and reports the held word.
        assert_eq!(o.try_lock(unlocked, 6), Err(held));
        o.unlock(make_version(9));
        assert_eq!(version_of(o.load_lock()), 9);
    }

    #[test]
    fn reader_bits_set_and_clear() {
        let o = Orec::default();
        assert!(o.add_reader(reader_bit(3)));
        assert!(!o.add_reader(reader_bit(3)), "second set reports not-new");
        assert!(o.add_reader(reader_bit(7)));
        assert_eq!(o.readers_except(reader_bit(3)), reader_bit(7));
        o.remove_reader(reader_bit(3));
        o.remove_reader(reader_bit(7));
        assert_eq!(o.readers_except(0), 0);
    }

    #[test]
    fn orec_occupies_one_cache_line() {
        assert_eq!(core::mem::size_of::<Orec>(), 64);
        assert_eq!(core::mem::align_of::<Orec>(), 64);
        // In a table, neighbours land on distinct lines.
        let pair = [Orec::default(), Orec::default()];
        let a = &pair[0] as *const Orec as usize;
        let b = &pair[1] as *const Orec as usize;
        assert_eq!(a / 64 + 1, b / 64);
    }

    #[test]
    fn hint_publishes_last_acquisition_address() {
        let o = Orec::default();
        assert_eq!(o.hint_addr(), 0, "no acquisition yet");
        o.note_addr(0xDEAD_BEE8);
        assert_eq!(o.hint_addr(), 0xDEAD_BEE8);
        o.note_addr(0x1000);
        assert_eq!(o.hint_addr(), 0x1000, "latest acquisition wins");
    }

    #[test]
    fn ring_slot_publish_read_clear_roundtrip() {
        let s = RingSlot::default();
        assert_eq!(s.close_stamp(), 0, "fresh slot is empty");
        assert_eq!(s.read_stable().2, 0);
        s.publish(0xBEE8, 41, 7);
        assert_eq!(s.close_stamp(), 7);
        assert_eq!(s.read_stable(), (0xBEE8, 41, 7));
        s.publish(0x1000, 99, 12);
        assert_eq!(s.read_stable(), (0x1000, 99, 12), "latest record wins");
        s.clear();
        assert_eq!(s.close_stamp(), 0);
    }

    #[test]
    fn ring_slot_is_32_bytes() {
        // 32 bytes keeps a depth-4 ring on two cache lines; the partition
        // sizes its flat ring allocation as orec_count * depth of these.
        assert_eq!(core::mem::size_of::<RingSlot>(), 32);
    }

    #[test]
    fn reader_bit_positions() {
        assert_eq!(reader_bit(0), 1);
        assert_eq!(reader_bit(63), 1 << 63);
        assert_eq!(reader_bit(5) & reader_bit(6), 0);
    }
}
