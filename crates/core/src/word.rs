//! Word encoding for transactional values.
//!
//! `partstm` is a *word-based* STM, like TinySTM: the unit of transactional
//! storage is a 64-bit word held in an `AtomicU64`. Any type that can be
//! reversibly packed into a `u64` can live in a [`crate::TVar`]. This keeps
//! every shared access a single atomic operation — there are no torn reads
//! and no `UnsafeCell` in the value path.

/// A value that can be stored in a transactional word.
///
/// # Contract
///
/// `from_word(to_word(v))` must equal `v` for every value of the type.
/// Implementations must not read memory through the word (it is data, not a
/// pointer); use arena [`crate::Handle`]s for references between
/// transactional objects.
pub trait TxWord: Copy + 'static {
    /// Pack the value into a 64-bit word.
    fn to_word(self) -> u64;
    /// Unpack a value previously produced by [`TxWord::to_word`].
    fn from_word(w: u64) -> Self;
}

macro_rules! impl_txword_int {
    ($($t:ty),* $(,)?) => {$(
        impl TxWord for $t {
            #[inline(always)]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline(always)]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
    )*};
}

impl_txword_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl TxWord for bool {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

impl TxWord for f32 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        f32::from_bits(w as u32)
    }
}

impl TxWord for f64 {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

impl TxWord for char {
    #[inline(always)]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        // A word written via `to_word` is always a valid scalar value.
        char::from_u32(w as u32).unwrap_or('\u{fffd}')
    }
}

impl TxWord for () {
    #[inline(always)]
    fn to_word(self) -> u64 {
        0
    }
    #[inline(always)]
    fn from_word(_: u64) -> Self {}
}

/// Packs two `u32` halves into one word; handy for small compound fields
/// (e.g. a count plus a small index) that must change atomically.
impl TxWord for (u32, u32) {
    #[inline(always)]
    fn to_word(self) -> u64 {
        ((self.0 as u64) << 32) | self.1 as u64
    }
    #[inline(always)]
    fn from_word(w: u64) -> Self {
        ((w >> 32) as u32, w as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: TxWord + PartialEq + core::fmt::Debug>(v: T) {
        assert_eq!(T::from_word(v.to_word()), v);
    }

    #[test]
    fn unsigned_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
    }

    #[test]
    fn signed_roundtrips_preserve_sign() {
        roundtrip(-1i8);
        roundtrip(i8::MIN);
        roundtrip(i16::MIN);
        roundtrip(-123456i32);
        roundtrip(i64::MIN);
        roundtrip(-1isize);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(0.0f32);
        roundtrip(-1.5f32);
        roundtrip(f32::INFINITY);
        roundtrip(1.0e300f64);
        roundtrip(-0.0f64);
        // NaN: bit pattern must survive even though NaN != NaN.
        let w = f64::NAN.to_word();
        assert!(f64::from_word(w).is_nan());
    }

    #[test]
    fn bool_char_unit() {
        roundtrip(true);
        roundtrip(false);
        roundtrip('x');
        roundtrip('\u{1F980}');
        roundtrip(());
    }

    #[test]
    fn pair_roundtrip() {
        roundtrip((0u32, 0u32));
        roundtrip((u32::MAX, 1u32));
        roundtrip((7u32, u32::MAX));
    }
}
