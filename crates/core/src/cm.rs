//! Contention-management helpers: randomized exponential backoff and
//! bounded spinning.
//!
//! Policy *selection* lives in [`crate::config::CmPolicy`] (it is part of
//! the per-partition configuration and thus tunable); this module provides
//! the mechanics.

use core::hint;

/// Upper bound on the backoff exponent. Deep enough (2^16 units) that a
/// severely contended thread eventually sleeps long stretches, which is
/// what breaks sustained kill-storm livelocks under visible reads.
const MAX_EXPONENT: u32 = 16;

/// Spin iterations per backoff unit before escalating to `yield_now`.
const SPINS_PER_UNIT: u64 = 16;

/// Units above which we yield the CPU instead of spinning.
const YIELD_THRESHOLD: u64 = 64;

/// Cheap xorshift64* PRNG for backoff jitter (per-thread state; no
/// coordination, no allocation).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed constant
    /// (xorshift has a fixed point at zero).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next pseudo-random 64-bit value.
    #[inline]
    #[allow(clippy::should_implement_trait)] // an RNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Randomized exponential backoff, invoked after the `attempt`-th failed
/// transaction attempt (0-based). Short waits spin; long waits yield.
pub fn backoff(attempt: u32, rng: &mut XorShift64) {
    let exp = attempt.min(MAX_EXPONENT);
    let max_units = 1u64 << exp;
    let units = 1 + rng.below(max_units);
    if units <= YIELD_THRESHOLD {
        for _ in 0..units * SPINS_PER_UNIT {
            hint::spin_loop();
        }
    } else {
        // Past the threshold we are likely oversubscribed; let someone run.
        for _ in 0..units / YIELD_THRESHOLD {
            std::thread::yield_now();
        }
    }
}

/// Bounded spin used by [`crate::config::CmPolicy::DelayThenAbort`]: calls
/// `check` up to `bound` times, returning `true` as soon as it does. The
/// caller must poll its own kill flag inside `check` to stay deadlock-free.
#[inline]
pub fn spin_until(bound: u32, mut check: impl FnMut() -> bool) -> bool {
    for i in 0..bound {
        if check() {
            return true;
        }
        if i % 64 == 63 {
            std::thread::yield_now();
        } else {
            hint::spin_loop();
        }
    }
    false
}

/// Default bound for `DelayThenAbort` spinning.
pub const DELAY_SPIN_BOUND: u32 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn backoff_terminates_at_all_exponents() {
        let mut r = XorShift64::new(1);
        for attempt in 0..20 {
            backoff(attempt, &mut r);
        }
    }

    #[test]
    fn spin_until_success_and_exhaustion() {
        let mut n = 0;
        assert!(spin_until(10, || {
            n += 1;
            n == 3
        }));
        assert_eq!(n, 3);
        assert!(!spin_until(5, || false));
    }
}
