//! Runtime diagnostics sink.
//!
//! The engine emits rare, non-fatal warnings (a configuration switch or
//! repartition rolled back on quiesce timeout, a stuck-transaction
//! suspicion). By default they go to stderr; benchmarks and embedders that
//! must keep their output machine-readable can silence them
//! ([`set_quiet`]) or route them into their own logging stack
//! ([`set_handler`]). The hook is process-global (the conditions it
//! reports are process-level events) and costs one `RwLock` read *only on
//! the warning path* — never on transaction fast paths.

use std::sync::RwLock;

/// A warning sink installed by the embedder.
pub type Handler = Box<dyn Fn(&str) + Send + Sync>;

enum Sink {
    /// Default: `eprintln!` prefixed with `partstm:`.
    Stderr,
    /// Drop warnings entirely.
    Quiet,
    /// Forward to the installed handler.
    Custom(Handler),
}

static SINK: RwLock<Sink> = RwLock::new(Sink::Stderr);

/// Silences (or restores) the default stderr warning output.
///
/// `set_quiet(true)` drops engine warnings; `set_quiet(false)` restores
/// the stderr default. Either call replaces a custom handler.
pub fn set_quiet(quiet: bool) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) =
        if quiet { Sink::Quiet } else { Sink::Stderr };
}

/// Installs a custom warning handler (`None` restores the stderr default).
///
/// The handler receives fully formatted single-line messages and must not
/// call back into the STM (it may run while a partition switch holds the
/// switching flag).
pub fn set_handler(handler: Option<Handler>) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = match handler {
        Some(h) => Sink::Custom(h),
        None => Sink::Stderr,
    };
}

/// Emits one warning through the installed sink.
///
/// Public so sibling runtime crates (migration directories, the
/// repartition controller) report through the embedder's sink instead of
/// growing their own logging channel; it is not a general-purpose logging
/// API for applications.
pub fn warn(msg: &str) {
    match &*SINK.read().unwrap_or_else(|e| e.into_inner()) {
        Sink::Stderr => eprintln!("partstm: {msg}"),
        Sink::Quiet => {}
        Sink::Custom(h) => h(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn handler_receives_warnings_and_quiet_drops_them() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        set_handler(Some(Box::new(move |m| {
            assert!(m.contains("probe"));
            h.fetch_add(1, Ordering::Relaxed);
        })));
        warn("probe one");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        set_quiet(true);
        warn("probe two");
        assert_eq!(hits.load(Ordering::Relaxed), 1, "quiet sink must drop");
        // Restore the default for other tests in the process.
        set_handler(None);
    }
}
