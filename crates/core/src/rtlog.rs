//! Runtime diagnostics sink.
//!
//! The engine emits rare, non-fatal warnings (a configuration switch or
//! repartition rolled back on quiesce timeout, a stuck-transaction
//! suspicion). By default they go to stderr; benchmarks and embedders that
//! must keep their output machine-readable can silence them
//! ([`set_quiet`]) or route them into their own logging stack
//! ([`set_handler`]). The hook is process-global (the conditions it
//! reports are process-level events) and costs one `RwLock` read *only on
//! the warning path* — never on transaction fast paths.

use std::sync::RwLock;

/// A warning sink installed by the embedder.
pub type Handler = Box<dyn Fn(&str) + Send + Sync>;

enum Sink {
    /// Default: `eprintln!` prefixed with `partstm:`.
    Stderr,
    /// Drop warnings entirely.
    Quiet,
    /// Forward to the installed handler.
    Custom(Handler),
}

static SINK: RwLock<Sink> = RwLock::new(Sink::Stderr);

/// Silences (or restores) the default stderr warning output.
///
/// `set_quiet(true)` drops engine warnings; `set_quiet(false)` restores
/// the stderr default. Either call replaces a custom handler.
pub fn set_quiet(quiet: bool) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) =
        if quiet { Sink::Quiet } else { Sink::Stderr };
}

/// Installs a custom warning handler (`None` restores the stderr default).
///
/// The handler receives fully formatted single-line messages and must not
/// call back into the STM (it may run while a partition switch holds the
/// switching flag).
pub fn set_handler(handler: Option<Handler>) {
    *SINK.write().unwrap_or_else(|e| e.into_inner()) = match handler {
        Some(h) => Sink::Custom(h),
        None => Sink::Stderr,
    };
}

/// Emits one warning through the installed sink.
///
/// Public so sibling runtime crates (migration directories, the
/// repartition controller) report through the embedder's sink instead of
/// growing their own logging channel; it is not a general-purpose logging
/// API for applications.
pub fn warn(msg: &str) {
    match &*SINK.read().unwrap_or_else(|e| e.into_inner()) {
        Sink::Stderr => eprintln!("partstm: {msg}"),
        Sink::Quiet => {}
        Sink::Custom(h) => h(msg),
    }
}

/// Per-site rate limiter for warnings that can recur every controller
/// window (e.g. the migration directories' unmapped-bucket reports during
/// an aliasing storm): at most one emission per `min_interval`; calls
/// arriving inside the window are *counted*, and the count is appended to
/// the next message that does go out, so nothing is silently lost.
///
/// Lock-free (two relaxed atomics); safe to call from any thread.
#[derive(Debug)]
pub struct Limiter {
    min_interval: std::time::Duration,
    /// Microseconds (plus 1, so 0 means "never emitted") since the
    /// process-wide epoch of the last emission.
    last: std::sync::atomic::AtomicU64,
    suppressed: std::sync::atomic::AtomicU64,
}

/// Microseconds since a process-wide epoch, offset by 1 so 0 is reserved
/// for "never".
fn epoch_micros() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_micros() as u64
        + 1
}

impl Limiter {
    /// A limiter emitting at most one warning per `min_interval`.
    pub fn new(min_interval: std::time::Duration) -> Self {
        Limiter {
            min_interval,
            last: std::sync::atomic::AtomicU64::new(0),
            suppressed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Emits `msg` through [`warn`] unless a message went out within the
    /// last `min_interval`, in which case the call is counted and folded
    /// into the next emission as `(… N similar suppressed)`.
    pub fn warn(&self, msg: &str) {
        use std::sync::atomic::Ordering;
        let now = epoch_micros();
        let last = self.last.load(Ordering::Relaxed);
        let window = self.min_interval.as_micros() as u64;
        if (last != 0 && now.saturating_sub(last) < window)
            || self
                .last
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            // Inside the window, or another thread won the emission race.
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let folded = self.suppressed.swap(0, Ordering::Relaxed);
        if folded > 0 {
            warn(&format!("{msg} ({folded} similar suppressed)"));
        } else {
            warn(msg);
        }
    }

    /// Calls currently counted but not yet folded into an emission.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Drop for Limiter {
    /// Flushes a pending suppressed count on teardown: warnings counted
    /// inside the final rate window would otherwise vanish with the
    /// limiter (most limiters are `static`, but scoped ones — e.g. owned
    /// by a controller or a test — die before their window elapses).
    fn drop(&mut self) {
        let pending = self
            .suppressed
            .swap(0, std::sync::atomic::Ordering::Relaxed);
        if pending > 0 {
            warn(&format!(
                "{pending} rate-limited warning(s) suppressed and never re-emitted \
                 (limiter dropped before its {:?} window elapsed)",
                self.min_interval
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn handler_receives_warnings_and_quiet_drops_them() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        set_handler(Some(Box::new(move |m| {
            assert!(m.contains("probe"));
            h.fetch_add(1, Ordering::Relaxed);
        })));
        warn("probe one");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        set_quiet(true);
        warn("probe two");
        assert_eq!(hits.load(Ordering::Relaxed), 1, "quiet sink must drop");
        // Restore the default for other tests in the process.
        set_handler(None);
    }

    #[test]
    fn limiter_folds_suppressed_calls_into_the_next_emission() {
        let msgs: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&msgs);
        let me = std::thread::current().id();
        set_handler(Some(Box::new(move |m| {
            // Count only our own thread's messages: other tests share the
            // process-global sink.
            if std::thread::current().id() == me && m.contains("limited-probe") {
                sink.lock().unwrap().push(m.to_string());
            }
        })));

        let lim = Limiter::new(std::time::Duration::from_millis(200));
        lim.warn("limited-probe one");
        assert_eq!(msgs.lock().unwrap().len(), 1, "first call goes out");
        lim.warn("limited-probe two");
        lim.warn("limited-probe three");
        assert_eq!(msgs.lock().unwrap().len(), 1, "in-window calls dropped");
        assert_eq!(lim.suppressed(), 2);
        std::thread::sleep(std::time::Duration::from_millis(250));
        lim.warn("limited-probe four");
        let got = msgs.lock().unwrap().clone();
        assert_eq!(got.len(), 2, "window elapsed, emission resumes");
        assert!(
            got[1].contains("(2 similar suppressed)"),
            "suppressed count folded in: {}",
            got[1]
        );
        assert_eq!(lim.suppressed(), 0);
        set_handler(None);
    }

    #[test]
    fn limiter_drop_flushes_pending_suppressed_count() {
        let msgs: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&msgs);
        let me = std::thread::current().id();
        set_handler(Some(Box::new(move |m| {
            if std::thread::current().id() == me && m.contains("suppressed") {
                sink.lock().unwrap().push(m.to_string());
            }
        })));
        {
            let lim = Limiter::new(std::time::Duration::from_secs(3600));
            lim.warn("drop-probe one"); // goes out, opens the window
            lim.warn("drop-probe two"); // counted
            lim.warn("drop-probe three"); // counted
        } // dropped with 2 pending
        let got = msgs.lock().unwrap().clone();
        assert!(
            got.iter().any(|m| m.contains("2 rate-limited warning(s)")),
            "drop flushed the pending count: {got:?}"
        );
        // An idle limiter drops silently.
        let before = msgs.lock().unwrap().len();
        drop(Limiter::new(std::time::Duration::from_secs(3600)));
        assert_eq!(msgs.lock().unwrap().len(), before);
        set_handler(None);
    }
}
