//! Safe privatization: a raw-memory-speed escape hatch over the quiesce
//! protocol.
//!
//! Bulk phases — initial loads, snapshots/backups, compaction, analytics
//! scans — pay full STM overhead (orec acquisition, read-set validation,
//! version-ring publication) for zero benefit: they want the *whole*
//! partition, exclusively, for a bounded stretch. The partitioned design
//! already owns the machinery to grant exactly that. [`Stm::privatize`]
//! runs the established flag→quiesce window, leaves the partition's
//! switching flag *installed* for the duration of the hold, and hands back
//! a [`PrivateGuard`]: a witness that the calling thread owns the
//! partition outright and may read and write its cells at plain-memory
//! speed ([`PrivateGuard::read`] / [`PrivateGuard::write`], plus the bulk
//! entry points on `partstm-structures`). Dropping the guard — or calling
//! [`PrivateGuard::republish`] — returns the partition to transactional
//! service under generation+1.
//!
//! ## Why the hold is safe
//!
//! The protocol is the configuration switch's window with the close
//! deferred to republish (after Khyzha et al., *Safe Privatization in
//! Transactional Memory* — our quiesce plays the role of their
//! privatization barrier):
//!
//! 1. **Flag.** CAS the config word to `old | SWITCHING_BIT |
//!    PRIVATIZED_BIT`. A failed CAS or an already-set flag reports
//!    [`PrivatizeError::Contended`] — privatization, configuration
//!    switches, orec resizes, ring-depth changes and repartitions all
//!    contend on the *same* bit, so any two of them targeting this
//!    partition serialize by construction. The extra [`PRIVATIZED_BIT`]
//!    only classifies the hold (separate collision counters, controller
//!    back-off); the exclusion is the switching bit's.
//! 2. **Quiesce.** `bump_epoch_and_quiesce` waits until every registered
//!    thread is outside a transaction, or inside one that began after the
//!    epoch bump — and such attempts observe the flag at first touch and
//!    abort ([`crate::txn`]'s view-creation check; snapshot read-only
//!    transactions run the same check, see [`crate::snapshot`]). On
//!    timeout the pre-privatize word is stored back — the partition is
//!    *exactly* as found, nothing was mutated — and the attempt reports
//!    [`PrivatizeError::TimedOut`] (debug builds panic, as a stuck
//!    transaction is a bug worth a backtrace).
//! 3. **Hold.** From quiescence until republish, no transaction holds (or
//!    can acquire) locks, reader bits, read-set entries or pinned
//!    snapshots against this partition: in-flight attempts were drained,
//!    new ones abort on the flag. The guard's owner is therefore the only
//!    code touching the partition's cells, and plain `load_direct` /
//!    `store_direct` accesses are data-race-free without any orec
//!    traffic. The guard is a plain value — not `Clone` — so exactly one
//!    owner exists, and it keeps the partition's `Arc` alive.
//! 4. **Republish.** Advance the global clock and stamp every orec with
//!    the *new* time, clearing the version rings and the overflow list in
//!    place (`Partition::reset_orecs`); then store `encode(decode(old),
//!    generation(old)+1)`, clearing both flags. Ordering matters: the
//!    stamps are published *before* the flag clears, so the first
//!    transactional read of any privately-written cell finds an orec
//!    version strictly greater than any read version issued before the
//!    window and is forced to extend — and the extension's validation
//!    happens against cells the private phase has fully finished writing.
//!    Long-running transactions that never touched this partition may
//!    continue across the hold; they are ordered after the private phase
//!    by exactly that forced extension on first contact.
//!
//! Snapshot readers get the same treatment as in a granularity switch or
//! migration (the "windows discard history" argument in
//! [`crate::snapshot`]): readers pinned before the window were drained by
//! the quiesce; readers that pin after republish obtain a timestamp at
//! least the advanced clock, which upper-bounds the close stamp of every
//! discarded record, so the truncated rings can never have held a version
//! such a reader needs.
//!
//! ## What the guard permits
//!
//! Anything that stays inside the privatized partition: direct cell access
//! ([`PrivateGuard::read`] / [`PrivateGuard::write`] assert the
//! variable's binding), raw arena allocation
//! ([`Arena::alloc_raw`](crate::Arena::alloc_raw) — its "no transactions
//! run" contract is exactly what the hold establishes for this
//! partition), and the bulk iterators/loaders the structure crate builds
//! on those. Freeing slots under the guard is deliberately *not* offered
//! by the bulk APIs: allocation-only keeps the reuse-barrier argument in
//! [`crate::arena`] trivially satisfied.
//!
//! A privatization hold should be short (it starves writers of the
//! partition into abort-and-retry). Holds longer than
//! [`HOLD_WARN_THRESHOLD`] are reported at republish through a rate-
//! limited [`rtlog`] warning, as are quiesce-timeout rollbacks.

use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use core::sync::atomic::Ordering;

use crate::config;
use crate::partition::Partition;
use crate::pvar::PVar;
use crate::repartition::MigrationSource;
use crate::rtlog;
use crate::stm::{bump_epoch_and_quiesce, Stm};
use crate::telemetry::{self, EventKind};
use crate::word::TxWord;

pub use crate::config::PRIVATIZED_BIT;

/// Holds longer than this are reported (rate-limited) at republish: a
/// privatized partition starves its writers into abort-and-retry, so a
/// long hold is an operational smell even when it is correct.
pub const HOLD_WARN_THRESHOLD: Duration = Duration::from_secs(1);

/// Minimum interval between privatization warnings of the same kind
/// (suppressed calls are counted and folded into the next emission).
const WARN_INTERVAL: Duration = Duration::from_secs(5);

fn quiesce_limiter() -> &'static rtlog::Limiter {
    static L: OnceLock<rtlog::Limiter> = OnceLock::new();
    L.get_or_init(|| rtlog::Limiter::new(WARN_INTERVAL))
}

fn hold_limiter() -> &'static rtlog::Limiter {
    static L: OnceLock<rtlog::Limiter> = OnceLock::new();
    L.get_or_init(|| rtlog::Limiter::new(WARN_INTERVAL))
}

fn alarm_limiter() -> &'static rtlog::Limiter {
    static L: OnceLock<rtlog::Limiter> = OnceLock::new();
    L.get_or_init(|| rtlog::Limiter::new(WARN_INTERVAL))
}

/// Age at which a *live* hold trips [`check_hold_alarm`], µs. Unlike
/// [`HOLD_WARN_THRESHOLD`] (reported at republish, i.e. after the fact),
/// this fires while the guard is still held — the leaked-guard detector.
static HOLD_ALARM_MICROS: core::sync::atomic::AtomicU64 =
    core::sync::atomic::AtomicU64::new(1_000_000);

/// Sets the hold-age alarm threshold (default 1 s): a privatization hold
/// observed (by [`check_hold_alarm`]) older than this is reported as a
/// likely leaked [`PrivateGuard`]. Sub-microsecond values clamp to 1 µs.
pub fn set_hold_alarm_threshold(threshold: Duration) {
    let us = (threshold.as_micros() as u64).max(1);
    HOLD_ALARM_MICROS.store(us, Ordering::Relaxed);
}

/// Current hold-age alarm threshold (see [`set_hold_alarm_threshold`]).
pub fn hold_alarm_threshold() -> Duration {
    Duration::from_micros(HOLD_ALARM_MICROS.load(Ordering::Relaxed))
}

/// Leaked-guard detector: reports (rate-limited, and counted in the
/// partition's `privatize_hold_alarms` stat) when `part` has been
/// privately held longer than [`hold_alarm_threshold`]. Returns whether
/// the alarm tripped. Cheap when the partition is not privatized (two
/// atomic loads); intended to be called periodically from control-plane
/// code — the repartition controller checks it every time a proposal is
/// skipped because its target partition is privately held.
pub fn check_hold_alarm(part: &Partition) -> bool {
    let Some(held) = part.privatized_for() else {
        return false;
    };
    let threshold = hold_alarm_threshold();
    if held < threshold {
        return false;
    }
    part.stats.privatize_hold_alarms(0, 1);
    alarm_limiter().warn(&format!(
        "partition '{}' has been privatized for {held:?} \
         (alarm threshold {threshold:?}): a PrivateGuard looks leaked or \
         wedged; transactional writers are starving",
        part.name()
    ));
    true
}

/// Why a [`Stm::privatize`] attempt did not produce a guard. Both cases
/// leave the partition exactly as found and are retryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivatizeError {
    /// Another control-plane operation (switch, resize, repartition or
    /// privatization) owns the partition's switching flag.
    Contended,
    /// Quiescence was not reached within the runtime's quiesce timeout:
    /// the privatization was rolled back (release builds only — debug
    /// builds panic on the stuck transaction).
    TimedOut,
}

impl core::fmt::Display for PrivatizeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PrivatizeError::Contended => write!(f, "partition owned by a concurrent switch"),
            PrivatizeError::TimedOut => write!(f, "quiescence not reached before timeout"),
        }
    }
}

impl std::error::Error for PrivatizeError {}

/// Exclusive, non-transactional ownership of one privatized partition.
///
/// Obtained from [`Stm::privatize`]; see the [module docs](self) for the
/// safety argument. While the guard lives, every transactional attempt
/// touching the partition aborts-and-backs-off and every other
/// control-plane operation on it reports contention. Dropping the guard
/// republishes the partition ([`PrivateGuard::republish`] does the same
/// with an explicit name for call sites that want the intent visible).
#[derive(Debug)]
pub struct PrivateGuard {
    stm: Stm,
    part: Arc<Partition>,
    /// Pre-privatize config word; republish derives gen+1 from it.
    old: u64,
    /// When the hold began (for the hold-duration warning).
    start: Instant,
    /// Cleared by `republish` so the drop hook becomes a no-op.
    active: bool,
}

impl PrivateGuard {
    /// The privatized partition.
    #[inline]
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Whether `part` is the partition this guard privatizes. The bulk
    /// entry points in `partstm-structures` gate on this before touching
    /// cells directly.
    #[inline]
    pub fn covers(&self, part: &Arc<Partition>) -> bool {
        Arc::ptr_eq(&self.part, part)
    }

    /// Whether *every* binding a [`MigrationSource`] enumerates points at
    /// the privatized partition — i.e. the whole structure is inside the
    /// hold. `O(fields)`; the structure bulk APIs use it in debug builds
    /// to catch structures torn across partitions by a partial migration.
    pub fn covers_source(&self, src: &dyn MigrationSource) -> bool {
        let want = Arc::as_ptr(&self.part);
        let mut all = true;
        src.for_each_binding(&mut |b| all &= core::ptr::eq(b.load(), want));
        all
    }

    /// Non-transactional read of a variable bound to the privatized
    /// partition: one plain load, no orec traffic.
    ///
    /// # Panics
    ///
    /// If `var` is not bound to the privatized partition — reading a
    /// foreign cell outside its concurrency control would be a data race.
    #[inline]
    pub fn read<T: TxWord>(&self, var: &PVar<T>) -> T {
        assert!(
            core::ptr::eq(var.binding().load(), Arc::as_ptr(&self.part)),
            "variable is not bound to the privatized partition"
        );
        var.load_direct()
    }

    /// Non-transactional write to a variable bound to the privatized
    /// partition: one plain store, no orec traffic, no undo log.
    ///
    /// # Panics
    ///
    /// If `var` is not bound to the privatized partition.
    #[inline]
    pub fn write<T: TxWord>(&self, var: &PVar<T>, value: T) {
        assert!(
            core::ptr::eq(var.binding().load(), Arc::as_ptr(&self.part)),
            "variable is not bound to the privatized partition"
        );
        var.store_direct(value);
    }

    /// How long this guard has held the partition.
    pub fn held_for(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns the partition to transactional service under generation+1.
    ///
    /// Equivalent to dropping the guard; provided so call sites can make
    /// the hand-back explicit. See the [module docs](self) for the
    /// republish ordering argument.
    pub fn republish(mut self) {
        self.republish_inner();
    }

    fn republish_inner(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        let held = self.start.elapsed();
        if held > HOLD_WARN_THRESHOLD {
            hold_limiter().warn(&format!(
                "partition '{}' was privatized for {held:?} \
                 (> {HOLD_WARN_THRESHOLD:?}); transactional writers were \
                 starved into retry for the duration",
                self.part.name()
            ));
        }
        // Advance the clock so the reset stamp is *strictly* greater than
        // every read version issued before the window: the first
        // transactional contact with any orec of this partition is then
        // forced to extend (revalidate) past the private phase.
        let stamp = self.stm.inner.clock.advance();
        self.part.reset_orecs(stamp);
        // Tuning deltas must not straddle the hold (the stats saw an
        // abort storm at the flag plus total silence during the hold).
        self.part.reset_tuning_window();
        let word = config::encode(
            config::decode(self.old),
            config::generation(self.old).wrapping_add(1),
        );
        self.part.config.store(word, Ordering::SeqCst);
        self.part.privatized_at_micros.store(0, Ordering::Release);
        self.part.stats.republishes(0, 1);
        if telemetry::enabled() {
            let held_us = held.as_micros() as u64;
            telemetry::global().privatize_hold_us.record(held_us);
            telemetry::control_event(EventKind::Republish, self.part.id().0 as u64, held_us, 0);
        }
    }
}

impl Drop for PrivateGuard {
    fn drop(&mut self) {
        self.republish_inner();
    }
}

/// The privatization window (see [`Stm::privatize`] for the contract and
/// the [module docs](self) for the safety argument). Structurally the
/// flag→quiesce prefix of `switch_partition_impl`, with the mutate+close
/// suffix deferred into the returned guard's republish.
pub(crate) fn privatize_impl(
    stm: &Stm,
    partition: &Arc<Partition>,
) -> Result<PrivateGuard, PrivatizeError> {
    let out = privatize_body(stm, partition);
    let code = match &out {
        Ok(_) => telemetry::codes::OUTCOME_SWITCHED,
        Err(PrivatizeError::Contended) => telemetry::codes::OUTCOME_CONTENDED,
        Err(PrivatizeError::TimedOut) => telemetry::codes::OUTCOME_TIMED_OUT,
    };
    telemetry::control_event(EventKind::Privatize, partition.id().0 as u64, code, 0);
    out
}

fn privatize_body(stm: &Stm, partition: &Arc<Partition>) -> Result<PrivateGuard, PrivatizeError> {
    let inner = &stm.inner;
    let old = partition.config.load(Ordering::SeqCst);
    if config::is_switching(old) {
        return Err(PrivatizeError::Contended);
    }
    if partition
        .config
        .compare_exchange(
            old,
            old | config::SWITCHING_BIT | config::PRIVATIZED_BIT,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_err()
    {
        return Err(PrivatizeError::Contended);
    }
    if !bump_epoch_and_quiesce(inner, partition.id().0) {
        // Roll back: clear both flags, leave config/generation/orecs
        // exactly as found (nothing was mutated). We own the word while
        // the flag is set, so a plain store is race-free.
        partition.config.store(old, Ordering::SeqCst);
        partition.stats.privatize_rollbacks(0, 1);
        let timeout = inner.quiesce_timeout;
        if cfg!(debug_assertions) {
            panic!(
                "privatization could not quiesce in {timeout:?}: \
                 a transaction appears stuck"
            );
        }
        quiesce_limiter().warn(&format!(
            "privatization of partition '{}' rolled back: quiescence not \
             reached in {timeout:?} (stuck transaction?); retryable",
            partition.name()
        ));
        return Err(PrivatizeError::TimedOut);
    }
    partition.stats.privatizations(0, 1);
    partition
        .privatized_at_micros
        .store(telemetry::now_micros().max(1), Ordering::Release);
    Ok(PrivateGuard {
        stm: stm.clone(),
        part: Arc::clone(partition),
        old,
        start: Instant::now(),
        active: true,
    })
}

impl Stm {
    /// Privatizes `partition`: runs the flag→quiesce window and returns a
    /// [`PrivateGuard`] granting exclusive, non-transactional access to
    /// the partition's cells at plain-memory speed. While the guard
    /// lives, transactional attempts touching the partition abort and
    /// back off (counted as `privatized_collisions`), and every other
    /// control-plane operation on it — switch, resize, ring-depth change,
    /// repartition, another privatize — reports contention. Dropping or
    /// [`republish`](PrivateGuard::republish)ing the guard re-admits
    /// transactions under generation+1.
    ///
    /// Intended for bulk phases where STM overhead is pure waste: initial
    /// loads, compaction, snapshots, analytics scans (the structure crate
    /// builds `bulk_insert`/`bulk_load`/iterator entry points on top).
    /// See the [module docs](crate::privatize) for the safety argument.
    ///
    /// Returns [`PrivatizeError::Contended`] without waiting when another
    /// switch owns the partition, and [`PrivatizeError::TimedOut`]
    /// (release builds; debug builds panic) when quiescence cannot be
    /// reached — in both cases the partition is exactly as found.
    ///
    /// Must not be called from inside a transaction (it would deadlock
    /// the quiesce against the caller's own attempt).
    ///
    /// # Panics
    ///
    /// If `partition` belongs to a different [`Stm`].
    pub fn privatize(&self, partition: &Arc<Partition>) -> Result<PrivateGuard, PrivatizeError> {
        assert_eq!(
            partition.stm_id, self.inner.id,
            "partition belongs to a different Stm"
        );
        privatize_impl(self, partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionConfig;

    #[test]
    fn privatize_sets_both_flags_and_republish_bumps_generation() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("bulk"));
        assert_eq!(p.generation(), 0);
        let g = stm.privatize(&p).expect("uncontended");
        assert!(p.is_privatized());
        let w = p.config.load(Ordering::SeqCst);
        assert!(config::is_switching(w), "exclusion rides the switching bit");
        assert!(config::is_privatized(w));
        g.republish();
        assert!(!p.is_privatized());
        assert!(!config::is_switching(p.config.load(Ordering::SeqCst)));
        assert_eq!(p.generation(), 1);
        let s = p.stats();
        assert_eq!(s.privatizations, 1);
        assert_eq!(s.republishes, 1);
        assert_eq!(s.privatize_rollbacks, 0);
    }

    #[test]
    fn drop_republishes_too() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        {
            let _g = stm.privatize(&p).expect("uncontended");
            assert!(p.is_privatized());
        }
        assert!(!p.is_privatized());
        assert_eq!(p.generation(), 1);
        assert_eq!(p.stats().republishes, 1);
    }

    #[test]
    fn guard_reads_and_writes_cells_directly() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = p.tvar(5u64);
        let g = stm.privatize(&p).expect("uncontended");
        assert_eq!(g.read(&x), 5);
        g.write(&x, 77);
        assert_eq!(g.read(&x), 77);
        assert!(g.covers(&p));
        assert!(g.held_for() < Duration::from_secs(60));
        g.republish();
        // The private write is visible transactionally after republish.
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| tx.read(&x)), 77);
    }

    #[test]
    #[should_panic(expected = "not bound to the privatized partition")]
    fn guard_rejects_foreign_variables() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("mine"));
        let q = stm.new_partition(PartitionConfig::named("other"));
        let y = q.tvar(1u64);
        let g = stm.privatize(&p).expect("uncontended");
        let _ = g.read(&y);
    }

    #[test]
    fn privatize_contends_with_a_held_switch_and_vice_versa() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        p.debug_force_switch_flag(true);
        assert_eq!(
            stm.privatize(&p).unwrap_err(),
            PrivatizeError::Contended,
            "foreign flag blocks privatization"
        );
        p.debug_force_switch_flag(false);
        let g = stm.privatize(&p).expect("uncontended");
        // Every other control-plane operation contends with the hold.
        let mut cfg = p.current_config();
        cfg.read_mode = crate::config::ReadMode::Visible;
        assert_eq!(
            stm.switch_partition(&p, cfg),
            crate::SwitchOutcome::Contended
        );
        assert_eq!(
            stm.resize_orecs(&p, 4 * p.orec_count()),
            crate::SwitchOutcome::Contended
        );
        assert_eq!(
            stm.set_ring_depth(&p, p.ring_depth() + 1),
            crate::SwitchOutcome::Contended
        );
        assert_eq!(
            stm.privatize(&p).unwrap_err(),
            PrivatizeError::Contended,
            "privatization is exclusive with itself"
        );
        g.republish();
        assert!(stm.switch_partition(&p, cfg).switched(), "hold released");
    }

    #[test]
    fn transactions_collide_and_retry_across_a_hold() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = std::sync::Arc::new(p.tvar(0u64));
        let g = stm.privatize(&p).expect("uncontended");
        g.write(&x, 100);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let x2 = std::sync::Arc::clone(&x);
            let stm2 = stm.clone();
            let stop = &stop;
            s.spawn(move || {
                let ctx = stm2.register_thread();
                // Blocks (aborting internally) until the hold is released.
                ctx.run(|tx| tx.modify(&x2, |v| v + 1).map(|_| ()));
                stop.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(30));
            assert!(
                !stop.load(std::sync::atomic::Ordering::SeqCst),
                "writer must not commit while the hold is live"
            );
            g.republish();
        });
        assert_eq!(x.load_direct(), 101, "writer saw the private store");
        assert!(p.stats().privatized_collisions > 0, "collisions classified");
        assert!(p.stats().aborts_switching > 0);
    }

    #[test]
    fn republish_resets_orecs_to_an_advanced_stamp() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default().orecs(8));
        let before = stm.clock_now();
        let g = stm.privatize(&p).expect("uncontended");
        g.republish();
        assert!(stm.clock_now() > before, "republish advances the clock");
        let (locked, _, maxv) = p.debug_scan();
        assert_eq!(locked, 0);
        assert!(maxv > before, "orecs stamped with the advanced time");
    }

    #[test]
    fn hold_alarm_trips_on_old_live_holds_only() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("leaky"));
        assert!(!check_hold_alarm(&p), "not privatized: quiet");
        assert!(p.privatized_for().is_none());
        let g = stm.privatize(&p).expect("uncontended");
        assert!(p.privatized_for().is_some());
        assert!(!check_hold_alarm(&p), "fresh hold under the threshold");
        // The threshold is process-global; restore it after the test.
        set_hold_alarm_threshold(Duration::from_micros(1));
        assert_eq!(hold_alarm_threshold(), Duration::from_micros(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(check_hold_alarm(&p), "old live hold trips the alarm");
        assert!(p.stats().privatize_hold_alarms >= 1);
        set_hold_alarm_threshold(Duration::from_secs(1));
        g.republish();
        assert!(p.privatized_for().is_none(), "republish clears the stamp");
        assert!(!check_hold_alarm(&p));
    }

    #[test]
    #[should_panic(expected = "different Stm")]
    fn cross_stm_privatize_is_rejected() {
        let stm1 = Stm::new();
        let stm2 = Stm::new();
        let p = stm1.new_partition(PartitionConfig::default());
        let _ = stm2.privatize(&p);
    }
}
