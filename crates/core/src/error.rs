//! Abort signalling.
//!
//! Transactional reads and writes return `Result<T, Abort>`. The `Abort`
//! value carries no information itself (the reason is recorded inside the
//! transaction descriptor for statistics); it exists so the `?` operator
//! unwinds the user closure back to [`crate::ThreadCtx::run`], which then
//! rolls back and retries.

use core::fmt;

/// Marker that the current transaction attempt must be abandoned.
///
/// Returned (via `Err`) from transactional operations when a conflict,
/// failed validation, kill request or configuration switch was detected.
/// Propagate it with `?`; the enclosing [`crate::ThreadCtx::run`] retries
/// the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub(crate) ());

impl Abort {
    /// Request a user-level retry of the transaction (for example because a
    /// precondition on the data does not hold yet). The attempt is rolled
    /// back, the contention manager backs off, and the closure re-runs.
    #[inline]
    pub fn retry() -> Self {
        Abort(())
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for Abort {}

/// Why a transaction attempt aborted. Used for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AbortKind {
    /// Conflict on a write-locked ownership record.
    WLockConflict,
    /// Conflict between a writer and visible readers.
    RLockConflict,
    /// Read-set validation (or snapshot extension) failed.
    Validation,
    /// Another transaction requested this one be killed.
    Killed,
    /// The partition was undergoing a configuration switch.
    Switching,
    /// The user requested a retry via [`Abort::retry`].
    User,
}

/// Convenience alias for fallible transactional code.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_display_and_retry() {
        let a = Abort::retry();
        assert_eq!(a, Abort(()));
        assert_eq!(a.to_string(), "transaction aborted");
    }

    #[test]
    fn abort_kind_is_copy_eq() {
        let k = AbortKind::Validation;
        let k2 = k;
        assert_eq!(k, k2);
        assert_ne!(AbortKind::Killed, AbortKind::User);
    }
}
