//! Per-partition statistics.
//!
//! The runtime tuner's decisions are driven entirely by these counters, so
//! collection must be cheap: threads accumulate into per-transaction local
//! counters and flush once per transaction into a *sharded* set of atomics
//! (8 shards, thread slot modulo 8) to avoid a single contended cache line.

use core::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Applies a macro to every statistics counter field. Single source of truth
/// for the field list.
macro_rules! for_each_stat {
    ($mac:ident) => {
        $mac!(
            /// Transaction attempts that touched the partition.
            starts,
            /// Committed transactions that touched the partition.
            commits,
            /// Commits that performed no write in this partition.
            ro_commits,
            /// Commits that wrote this partition.
            update_commits,
            /// Aborts caused by a write-locked orec in this partition.
            aborts_wlock,
            /// Aborts caused by writer-vs-visible-reader arbitration.
            aborts_rlock,
            /// Aborts caused by failed validation / snapshot extension.
            aborts_validation,
            /// Aborts caused by a remote kill.
            aborts_killed,
            /// Aborts caused by an in-progress configuration switch.
            aborts_switching,
            /// Aborts requested by user code.
            aborts_user,
            /// Transactional reads served from this partition.
            reads,
            /// Transactional writes into this partition.
            writes,
            /// Successful snapshot extensions attributed to this partition.
            extensions,
            /// Reader kills issued by writers in this partition.
            kills_issued,
            /// Conflict aborts whose orec acquisition hint named the touched address (true data conflicts; see `orec::Orec::hint`).
            conflicts_true,
            /// Conflict aborts whose hint named a different address (orec aliasing, i.e. false conflicts — the resize signal).
            conflicts_aliased,
            /// Snapshot (read-only fast path) transactions committed against this partition.
            snapshot_commits,
            /// Snapshot transaction restarts (switch collision or user retry — never a data conflict; see `crate::snapshot`).
            snapshot_restarts,
            /// Reads served to snapshot transactions from this partition.
            snapshot_reads,
            /// Snapshot reads that were served from a version-ring/overflow record rather than the live cell.
            snapshot_history_reads,
            /// Committed-version records diverted to the overflow list because the ring victim was still reader-protected.
            ring_overflow_pushes,
            /// Completed privatizations of this partition (flag→quiesce window won and a `PrivateGuard` was handed out).
            privatizations,
            /// Privatization attempts rolled back because quiescence timed out (config word restored exactly).
            privatize_rollbacks,
            /// Republish events: a `PrivateGuard` returned the partition to transactional service under gen+1.
            republishes,
            /// Transactional attempts that aborted against a *privatized* (not merely switching) partition.
            privatized_collisions,
            /// Hold-age alarms: windows in which a `PrivateGuard` on this partition was observed held past the configured threshold (see `crate::privatize::set_hold_alarm_threshold`).
            privatize_hold_alarms
        );
    };
}

macro_rules! define_counters {
    ($(#[$doc:meta] $f:ident),+ $(,)?) => {
        /// Plain (non-atomic) snapshot of the partition counters.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatCounters {
            $(#[$doc] pub $f: u64,)+
        }

        impl StatCounters {
            /// Element-wise difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &StatCounters) -> StatCounters {
                StatCounters {
                    $($f: self.$f.saturating_sub(earlier.$f),)+
                }
            }

            /// Element-wise sum.
            pub fn add(&self, other: &StatCounters) -> StatCounters {
                StatCounters {
                    $($f: self.$f.wrapping_add(other.$f),)+
                }
            }

            /// Total aborts of all causes.
            pub fn aborts(&self) -> u64 {
                self.aborts_wlock
                    + self.aborts_rlock
                    + self.aborts_validation
                    + self.aborts_killed
                    + self.aborts_switching
                    + self.aborts_user
            }

            /// Share of classified conflicts that were *aliased* (false)
            /// conflicts: `conflicts_aliased / (conflicts_aliased +
            /// conflicts_true)`, or 0 when nothing was classified. The
            /// aliasing-pressure signal behind orec-table resizing.
            pub fn aliased_share(&self) -> f64 {
                let classified = self.conflicts_aliased + self.conflicts_true;
                if classified == 0 {
                    0.0
                } else {
                    self.conflicts_aliased as f64 / classified as f64
                }
            }
        }

        #[derive(Debug, Default)]
        struct StatShard {
            $($f: AtomicU64,)+
        }

        impl StatShard {
            fn snapshot(&self) -> StatCounters {
                StatCounters {
                    $($f: self.$f.load(Ordering::Relaxed),)+
                }
            }
        }
    };
}

for_each_stat!(define_counters);

const SHARDS: usize = 8;

/// Sharded atomic statistics for one partition.
#[derive(Debug, Default)]
pub struct PartitionStats {
    shards: [CachePadded<StatShard>; SHARDS],
}

macro_rules! define_bump {
    ($(#[$doc:meta] $f:ident),+ $(,)?) => {
        impl PartitionStats {
            $(
                #[$doc]
                #[inline]
                pub fn $f(&self, slot: usize, n: u64) {
                    if n != 0 {
                        self.shards[slot % SHARDS]
                            .$f
                            .fetch_add(n, Ordering::Relaxed);
                    }
                }
            )+

            /// Sums all shards into a consistent-enough snapshot (counters
            /// are monotonically increasing; tuning tolerates slight skew).
            pub fn snapshot(&self) -> StatCounters {
                let mut acc = StatCounters::default();
                for s in &self.shards {
                    acc = acc.add(&s.snapshot());
                }
                acc
            }
        }
    };
}

for_each_stat!(define_bump);

/// Per-transaction, per-partition local counters, flushed once at
/// transaction end.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalStats {
    /// Reads performed in the partition during this attempt.
    pub reads: u32,
    /// Writes performed in the partition during this attempt.
    pub writes: u32,
    /// Successful snapshot extensions triggered by this partition.
    pub extensions: u32,
    /// Kills this transaction issued against readers of this partition.
    pub kills: u32,
    /// Conflicts classified true (hint matched the touched address).
    pub conflicts_true: u32,
    /// Conflicts classified aliased (hint named a different address).
    pub conflicts_aliased: u32,
    /// Ring evictions diverted to the overflow list during this attempt's
    /// commit (reader-protected victims).
    pub ring_overflows: u32,
}

impl LocalStats {
    /// Flush into the partition aggregate.
    pub fn flush(&self, stats: &PartitionStats, slot: usize) {
        stats.reads(slot, self.reads as u64);
        stats.writes(slot, self.writes as u64);
        stats.extensions(slot, self.extensions as u64);
        stats.kills_issued(slot, self.kills as u64);
        stats.conflicts_true(slot, self.conflicts_true as u64);
        stats.conflicts_aliased(slot, self.conflicts_aliased as u64);
        stats.ring_overflow_pushes(slot, self.ring_overflows as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_land_in_snapshot_across_shards() {
        let s = PartitionStats::default();
        for slot in 0..32 {
            s.commits(slot, 1);
            s.reads(slot, 10);
        }
        let snap = s.snapshot();
        assert_eq!(snap.commits, 32);
        assert_eq!(snap.reads, 320);
        assert_eq!(snap.aborts(), 0);
    }

    #[test]
    fn zero_bump_is_free_and_correct() {
        let s = PartitionStats::default();
        s.writes(0, 0);
        assert_eq!(s.snapshot().writes, 0);
    }

    #[test]
    fn delta_and_aborts() {
        let a = StatCounters {
            commits: 10,
            aborts_wlock: 3,
            aborts_validation: 2,
            ..Default::default()
        };
        let b = StatCounters {
            commits: 4,
            aborts_wlock: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.commits, 6);
        assert_eq!(d.aborts_wlock, 2);
        assert_eq!(d.aborts(), 4);
        // Saturating: never underflows even with skewed shard reads.
        let u = b.delta(&a);
        assert_eq!(u.commits, 0);
    }

    #[test]
    fn local_stats_flush() {
        let s = PartitionStats::default();
        let l = LocalStats {
            reads: 5,
            writes: 2,
            extensions: 1,
            kills: 3,
            conflicts_true: 4,
            conflicts_aliased: 6,
            ring_overflows: 7,
        };
        l.flush(&s, 9);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 5);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.extensions, 1);
        assert_eq!(snap.kills_issued, 3);
        assert_eq!(snap.conflicts_true, 4);
        assert_eq!(snap.conflicts_aliased, 6);
        assert_eq!(snap.ring_overflow_pushes, 7);
        assert!((snap.aliased_share() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn aliased_share_handles_zero_classified() {
        assert_eq!(StatCounters::default().aliased_share(), 0.0);
        let only_true = StatCounters {
            conflicts_true: 7,
            ..Default::default()
        };
        assert_eq!(only_true.aliased_share(), 0.0);
        let only_aliased = StatCounters {
            conflicts_aliased: 7,
            ..Default::default()
        };
        assert_eq!(only_aliased.aliased_share(), 1.0);
    }

    #[test]
    fn concurrent_bumps_do_not_lose_counts() {
        use std::sync::Arc;
        let s = Arc::new(PartitionStats::default());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.commits(t, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().commits, 80_000);
    }
}
