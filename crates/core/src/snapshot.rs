//! The multi-version snapshot read path: read-only transactions that
//! *cannot abort* on data conflicts.
//!
//! [`ThreadCtx::snapshot_read`] runs a closure against a consistent
//! snapshot of transactional state pinned at a single timestamp `T`,
//! without taking locks, registering reader bits, building a read set, or
//! validating anything. Writers make that possible by publishing the value
//! they overwrite into a small per-orec *version ring* at commit time
//! ([`RingSlot`]; the commit side lives in `txn.rs`): where the regular
//! path validates, the snapshot path *reconstructs*.
//!
//! The only restart causes are a configuration switch caught in flight
//! and a user-requested retry — never a concurrent writer. That is the
//! multi-version guarantee this module exists for, and the property the
//! `snapshot_read` test battery pins down.
//!
//! # The reconstruction rule
//!
//! Every history record is a triple `(addr, old, to)` published by the
//! committing writer that overwrote `addr`: "`addr` held `old` until
//! commit `to`" (`to` is the writer's own commit version, so the stamp is
//! exact, not inferred). Records for an orec live in its ring slots, plus
//! a per-partition overflow list for records whose ring victim was still
//! reader-protected. The value of `addr` at snapshot `T` is:
//!
//! > the `old` of the record for `addr` with the **smallest `to` strictly
//! > greater than `T`** (searching ring and overflow together); if no such
//! > record exists, the live cell value.
//!
//! *Why this is exact.* The `to` stamps of `addr`'s records are exactly
//! `addr`'s commit points. If some commit overwrote `addr` after `T`, the
//! earliest such commit `wv₁ > T` recorded the value `addr` held when it
//! committed — which is the value at `T`, because by minimality no commit
//! touched `addr` in `(T, wv₁)`, and every commit at or before `T` is
//! fully applied before its records become reachable. If no commit
//! overwrote `addr` after `T`, the live cell already holds the value at
//! `T`.
//!
//! # Why a pinned snapshot is consistent
//!
//! **Against concurrent commits.** Pinning is a two-step hazard-pointer
//! handshake with the eviction floor:
//!
//! 1. the reader *publishes* a preliminary pin `p = clock.now()` into its
//!    thread slot (`ro_snap`), then
//! 2. re-reads the clock and uses that second value as `T ≥ p`.
//!
//! Writers recycle a ring slot only when its record's `to` is at or below
//! the *floor* — `min(clock-before-scan, min over published pins)`
//! ([`StmInner::ro_floor_recompute`](crate::stm)). Any record a reader
//! with snapshot `T` could ever need has `to > T ≥ p`; since the floor
//! never exceeds a published pin, that record can never be recycled while
//! the pin stands, and since records never migrate between ring and
//! overflow (a protected victim stays put; the *new* record is diverted),
//! a needed record cannot vanish mid-scan either. The clock cap handles
//! the no-readers case: with every slot at `u64::MAX` the floor is capped
//! at the clock value read *before* the slot scan, so a record created
//! after the scan (with `to` above that clock value) fails a stale cached
//! floor test and forces a recompute, which then sees the new pin. A
//! floor, once valid, stays valid forever — pins only rise between
//! recomputes — so caching it is sound.
//!
//! Slot protection alone does not make the history *lookup* sound,
//! because the lookup observes state piece by piece. While it is parked
//! between two slot reads — or between the ring scan and the overflow
//! look — whole commits can complete and keep extending the history,
//! every step individually legal (victims at or below the floor). Two
//! concrete failures, both observed in the storm batteries before the
//! fix:
//!
//! * records cycle *behind* the scan cursor, so the record the reader
//!   needs lands in a slot the cursor already passed and the scan sees
//!   only the latest of the new records (or none);
//! * the ring scan completes (empty), the ring then fills past the floor
//!   and later records divert to overflow, and the overflow look serves
//!   one of those — shadowing the smaller-stamped ring record published
//!   into the gap.
//!
//! This is the **marching hazard**. The cure is a per-orec ring epoch
//! ([`Orec::ring_epoch`]): committing writers bump it to odd before and
//! even after every history publication for that orec — slot publishes
//! *and* overflow diverts; they hold the orec lock, so bumps never race —
//! and the reader brackets ring scan plus overflow look with two epoch
//! loads, retrying until both are the same even value. A stable pass
//! overlapped no history mutation for the orec, so it is equivalent to
//! reading ring and overflow at one instant — and at any instant that
//! pair contains every record a pinned reader needs (previous paragraph:
//! protected records are neither evicted nor pruned, and they never
//! migrate between ring and overflow).
//!
//! Per read, the orec's versioned lock word arbitrates:
//!
//! * **Unlocked, version ≤ T** — no commit has touched this orec after
//!   `T`, hence none has touched `addr` after `T` (the orec version
//!   upper-bounds the commit stamps of every address it covers). The cell
//!   value, read under the same `l1`/value/`l2` seqlock sandwich as the
//!   regular path, is the value at `T`. This is the common fast path: no
//!   ring scan at all.
//! * **Unlocked, version > T** — some commit moved this orec past `T`;
//!   reconstruct via the rule above. A lookup miss is *proof* that no
//!   commit overwrote `addr` after `T`: any such commit pushed its record
//!   before storing the cell and before unlocking, the sandwich ordered
//!   our cell read after that unlock, and the record — protected by our
//!   published pin — was still findable at scan time. The sandwiched cell
//!   value is then correct.
//! * **Locked** — the owner may be mid-write-back, so the cell is
//!   unreadable. Try the history first (the owner pushes records *before*
//!   overwriting cells, so a record proving the pre-image appears no later
//!   than the overwrite); otherwise spin until the lock clears and
//!   re-arbitrate. If the owner's commit version turns out ≤ T its new
//!   value *is* the snapshot value and the post-unlock fast path serves
//!   it; if > T the history (or the untouched cell) serves the pre-image.
//!   The wait is bounded by the owner's commit write-back — except under
//!   encounter-time acquisition, where it spans the owner's remaining
//!   execution; read-heavy partitions should prefer commit-time
//!   acquisition (see the README's read-path guidance).
//!
//! Reads at different times thus agree with the one state at timestamp
//! `T`: the snapshot is a consistent cut by construction, not by
//! validation, so there is nothing to validate and nothing that can force
//! an abort.
//!
//! **Against migrations and orec resizes.** Both run strictly inside a
//! flag→quiesce→generation+1 window ([`crate::Stm::resize_orecs`],
//! [`crate::Stm::migrate_pvars`]/`split_partition`, and
//! [`crate::Stm::set_ring_depth`] for the rings themselves). A snapshot
//! attempt participates in quiescence exactly like a regular attempt (odd
//! `seq`, `start_epoch`), so the window and the attempt cannot overlap:
//! an attempt that observed the flag clear at first touch runs entirely
//! before the window's mutations, and an attempt that begins after the
//! epoch bump observes the flag and **restarts instead of spinning** —
//! spinning would deadlock against the switcher waiting for us to
//! quiesce. Cached view state (table, mask, ring pointer, depth) is
//! therefore stable for the attempt, and old allocations are parked, not
//! freed, so even a stale pointer could only read stale telemetry.
//!
//! Those windows *discard* accumulated history (rings cleared or swapped
//! fresh, overflow emptied). Safe: readers pinned before the window were
//! drained by the quiesce; a reader pinning after it gets `T` at least
//! the clock value at the window (the clock never goes backwards), while
//! every discarded record closed at `to ≤` that clock value — so no
//! discarded record satisfies `to > T`, meaning no post-window reader
//! could have used it. Its absence routes them to the live cell, which
//! all pre-window commits have fully reached.
//!
//! **Against privatization.** A privatization hold
//! ([`crate::Stm::privatize`]) is the same window with the close deferred:
//! the flag stays installed while a [`crate::PrivateGuard`] owner mutates
//! cells with plain stores, and republish advances the clock, stamps every
//! orec with the new time and truncates rings/overflow before clearing the
//! flag. The same two cases cover snapshot readers exactly: a reader
//! pinned before the hold was drained by the quiesce (it cannot observe
//! any private store), and a reader pinning after republish gets `T` at
//! least the advanced clock — which upper-bounds the close stamp of every
//! truncated record, and which every private store is ordered *before*
//! (the stores happen-before the flag-clearing release that the reader's
//! flag check acquires). A reader that attempts *during* the hold restarts
//! on the flag like any attempt (counted as `snapshot_restarts` plus
//! `privatized_collisions`); there is no third case.
//!
//! # Cost model
//!
//! Writers pay one ring scan (`ring_depth` stamps, one cache line for
//! depth ≤ 2... 4 slots per line at 32 B/slot) plus one seqlock publish
//! and two ring-epoch bumps (on an orec line the writer already owns
//! exclusively) per written word — on the commit path only, after the
//! point of no return. Readers pay two clock loads and two slot stores per
//! transaction, and per read the same sandwich as the regular path; the
//! ring is scanned only when an orec moved past `T`. Memory is
//! `orec_count × ring_depth × 32` bytes per partition, bounded; the
//! overflow list is pruned against the floor at a doubling watermark, so
//! it is proportional to records actually protected by a live pin.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::{self, Granularity};
use crate::error::{Abort, TxResult};
use crate::orec::{is_locked, version_of, Orec, RingSlot};
use crate::partition::{orec_index, Partition};
use crate::pvar::{PVar, PVarBinding};
use crate::stm::{StmInner, ThreadCtx};
use crate::tvar::TVar;
use crate::word::TxWord;

/// Per-partition state of one snapshot attempt: the read-only analogue of
/// the engine's partition view (same one-decode-per-attempt soundness
/// argument, see the `txn` module docs), without the write-side fields.
pub(crate) struct RoView {
    part: Arc<Partition>,
    /// `Arc::as_ptr(&part)`, for lookups.
    ptr: *const Partition,
    granularity: Granularity,
    table: *const Orec,
    mask: usize,
    ring: *const RingSlot,
    ring_depth: usize,
    generation: u32,
    /// Reads served this attempt (flushed as `reads` + `snapshot_reads`).
    reads: u32,
    /// Reads served from a history record rather than the live cell.
    hist_reads: u32,
}

impl core::fmt::Debug for RoView {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RoView")
            .field("partition", &self.part.id())
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

/// Why the current snapshot attempt must restart. Data conflicts are not
/// representable on purpose.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Restart {
    /// Cause already attributed to a partition (switch collision).
    Attributed,
    /// User-requested retry ([`Abort::retry`]); attributed at restart.
    User,
}

/// An in-flight read-only snapshot transaction. Obtained inside
/// [`ThreadCtx::snapshot_read`]; deliberately exposes no write operations
/// — the read-only/update split is enforced by the type, not by a runtime
/// check.
///
/// Lifetimes mirror [`Tx`](crate::Tx): `'e` is the environment every
/// `&PVar`/`&TVar`/`&Arc<Partition>` must outlive, `'s` the engine's
/// borrow of its scratch state.
pub struct ReadTx<'e, 's> {
    stm: &'s StmInner,
    slot: usize,
    views: &'s mut Vec<RoView>,
    /// The pinned snapshot timestamp.
    t: u64,
    in_attempt: bool,
    restart: Restart,
    _env: PhantomData<fn(&'e ()) -> &'e ()>,
}

impl<'e, 's> ReadTx<'e, 's> {
    /// The snapshot timestamp this attempt is pinned to. Every read
    /// observes the committed state as of exactly this clock value.
    pub fn snapshot_version(&self) -> u64 {
        self.t
    }

    fn begin(&mut self) {
        let slot = &self.stm.slots[self.slot];
        let seq = slot.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert!(
            seq.is_multiple_of(2),
            "snapshot begin from inside a transaction"
        );
        slot.start_epoch.store(
            self.stm.switch_epoch.load(Ordering::SeqCst),
            Ordering::SeqCst,
        );
        // Publish-then-re-read pin (module docs): the floor scan must be
        // able to see `p` before we trust any timestamp derived from it.
        let p = self.stm.clock.now();
        slot.ro_snap.store(p, Ordering::SeqCst);
        self.t = self.stm.clock.now();
        self.views.clear();
        self.restart = Restart::User;
        self.in_attempt = true;
    }

    /// Unpins the snapshot and returns the slot to even (shared by commit,
    /// restart and the panic-unwind drop).
    fn end_slot(&mut self) {
        let slot = &self.stm.slots[self.slot];
        slot.ro_snap.store(u64::MAX, Ordering::SeqCst);
        slot.seq.fetch_add(1, Ordering::SeqCst); // -> even
        self.in_attempt = false;
    }

    fn finish_commit(&mut self) {
        // Same debug tripwire as the regular commit: no touched partition
        // may have switched configurations mid-attempt.
        #[cfg(debug_assertions)]
        for v in self.views.iter() {
            debug_assert_eq!(
                config::generation(v.part.config_word()),
                v.generation,
                "partition config switched mid-snapshot (quiesce protocol violated)"
            );
        }
        self.end_slot();
        for v in self.views.iter_mut() {
            let st = &v.part.stats;
            st.starts(self.slot, 1);
            st.commits(self.slot, 1);
            st.ro_commits(self.slot, 1);
            st.snapshot_commits(self.slot, 1);
            st.reads(self.slot, v.reads as u64);
            st.snapshot_reads(self.slot, v.reads as u64);
            st.snapshot_history_reads(self.slot, v.hist_reads as u64);
        }
    }

    fn do_restart(&mut self) {
        self.end_slot();
        if self.restart == Restart::User {
            if let Some(v) = self.views.first() {
                v.part.stats.aborts_user(self.slot, 1);
                v.part.stats.snapshot_restarts(self.slot, 1);
            }
        }
        for v in self.views.iter() {
            let st = &v.part.stats;
            st.starts(self.slot, 1);
            st.reads(self.slot, v.reads as u64);
            st.snapshot_reads(self.slot, v.reads as u64);
            st.snapshot_history_reads(self.slot, v.hist_reads as u64);
        }
    }

    /// Resolves (or creates) the view for a partition. A set switching
    /// flag restarts the attempt — abort-not-spin, so the switcher waiting
    /// for our quiescence is never deadlocked (module docs).
    fn view_of(&mut self, part: *const Partition) -> Result<u16, Abort> {
        if let Some(i) = self.views.iter().position(|v| v.ptr == part) {
            return Ok(i as u16);
        }
        let part = PVarBinding::arc_of(part);
        assert_eq!(
            part.stm_id, self.stm.id,
            "partition belongs to a different Stm"
        );
        let word = part.config_word();
        if config::is_switching(word) {
            if config::is_privatized(word) {
                part.stats.privatized_collisions(self.slot, 1);
            }
            part.stats.starts(self.slot, 1);
            part.stats.aborts_switching(self.slot, 1);
            part.stats.snapshot_restarts(self.slot, 1);
            self.restart = Restart::Attributed;
            return Err(Abort(()));
        }
        // Snapshot table and ring registers after observing the flag
        // clear; stable for the attempt (same argument as `Tx`).
        let (table, mask) = part.table_view();
        let (ring, ring_depth) = part.ring_view();
        let cfg = config::decode(word);
        let ptr = Arc::as_ptr(&part);
        self.views.push(RoView {
            part,
            ptr,
            granularity: cfg.granularity,
            table,
            mask,
            ring,
            ring_depth,
            generation: config::generation(word),
            reads: 0,
            hist_reads: 0,
        });
        Ok((self.views.len() - 1) as u16)
    }

    /// Snapshot read of a partition-bound variable.
    #[inline]
    pub fn read<T: TxWord>(&mut self, var: &'e PVar<T>) -> TxResult<T> {
        let ptr = var.binding.load();
        let vi = self.view_of(ptr)?;
        // Binding recheck, exactly as the regular bound tier: a changed
        // pointer means the load straddled a completing migration — the
        // attempt restarts as if it had caught the switching flag itself.
        if var.binding.load() != ptr {
            self.views[vi as usize]
                .part
                .stats
                .snapshot_restarts(self.slot, 1);
            self.views[vi as usize]
                .part
                .stats
                .aborts_switching(self.slot, 1);
            self.restart = Restart::Attributed;
            return Err(Abort(()));
        }
        self.read_at(vi, &var.var)
    }

    /// Snapshot read, raw tier: the caller names the partition guarding
    /// `var`, with the same always-the-same-partition obligation as
    /// [`Tx::read_raw`](crate::Tx::read_raw).
    pub fn read_raw<T: TxWord>(
        &mut self,
        part: &'e Arc<Partition>,
        var: &'e TVar<T>,
    ) -> TxResult<T> {
        let vi = self.view_of(Arc::as_ptr(part))?;
        self.read_at(vi, var)
    }

    fn read_at<T: TxWord>(&mut self, vi: u16, var: &'e TVar<T>) -> TxResult<T> {
        let cell = &var.cell as *const AtomicU64;
        let w = self.read_word(vi, cell);
        Ok(T::from_word(w))
    }

    /// The snapshot read protocol for one word (module docs, "Why a
    /// pinned snapshot is consistent"). Infallible: every arm either
    /// serves a value or retries locally.
    fn read_word(&mut self, vi: u16, cell: *const AtomicU64) -> u64 {
        let t = self.t;
        let addr = cell as usize;
        let v = &self.views[vi as usize];
        // SAFETY: index masked into the view's table; the allocation is
        // alive for the partition's lifetime and stable for the attempt
        // (module docs).
        let orec_ptr = unsafe { v.table.add(orec_index(v.mask, addr, v.granularity)) };
        // SAFETY: as above.
        let orec = unsafe { &*orec_ptr };
        let mut spins = 0u32;
        loop {
            let l1 = orec.load_lock();
            if !is_locked(l1) {
                // SAFETY: `cell` outlives `'e` (signature of `read`).
                let val = unsafe { &*cell }.load(Ordering::Acquire);
                let l2 = orec.load_lock();
                if l1 != l2 {
                    continue;
                }
                if version_of(l1) <= t {
                    // Fast path: nothing covering `addr` committed after
                    // `T`; the sandwiched cell value is the value at `T`.
                    self.views[vi as usize].reads += 1;
                    return val;
                }
                // The orec moved past `T`: reconstruct from history. A
                // miss proves `addr` itself was not overwritten after `T`
                // (module docs), so the sandwiched value stands.
                if let Some((h, _)) = self.history_lookup(vi, orec_ptr, addr, t) {
                    let v = &mut self.views[vi as usize];
                    v.reads += 1;
                    v.hist_reads += 1;
                    return h;
                }
                self.views[vi as usize].reads += 1;
                return val;
            }
            // Locked: the owner may be mid-write-back. The pre-image, if
            // we need one, is already published (records are pushed before
            // cells are overwritten); otherwise wait for the unlock and
            // re-arbitrate on the new version.
            if let Some((h, _)) = self.history_lookup(vi, orec_ptr, addr, t) {
                let v = &mut self.views[vi as usize];
                v.reads += 1;
                v.hist_reads += 1;
                return h;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                // Single-core friendliness: let the lock owner run.
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// The reconstruction rule's search: among records for `addr` with
    /// close stamp strictly greater than `t`, the value of the one with
    /// the smallest stamp — across the orec's ring and, only when
    /// non-empty, the partition overflow list. Returns `(val, to)`.
    ///
    /// The ring scan visits slots one at a time, so on its own it is *not*
    /// a consistent snapshot of the ring: while the scan is parked between
    /// two slots, commits can keep cycling the ring — each eviction
    /// individually legal (victims stamped at or below the floor) — and
    /// publish the very record this reader needs into a slot the cursor
    /// has already passed (the *marching hazard*; module docs). The scan
    /// is therefore bracketed by the orec's ring epoch and retried until
    /// it overlapped no publish, which makes it equivalent to an atomic
    /// read of the ring at one instant.
    fn history_lookup(
        &self,
        vi: u16,
        orec: *const Orec,
        addr: usize,
        t: u64,
    ) -> Option<(u64, u64)> {
        let v = &self.views[vi as usize];
        let idx = (orec as usize - v.table as usize) / core::mem::size_of::<Orec>();
        debug_assert!(idx <= v.mask);
        // SAFETY: orec points into the view's table (computed by caller).
        let orec = unsafe { &*orec };
        // SAFETY: the ring has `(mask + 1) * ring_depth` slots and `idx <=
        // mask`; alive and stable as the table is (module docs).
        let base = unsafe { v.ring.add(idx * v.ring_depth) };
        let mut best: Option<(u64, u64)>; // (to, val)
        let mut tries = 0u32;
        let mut scanned = 0u64;
        loop {
            let e1 = orec.ring_epoch();
            if e1.is_multiple_of(2) {
                best = None;
                for k in 0..v.ring_depth {
                    // SAFETY: `k < ring_depth`, within the allocation.
                    let (a, val, to) = unsafe { &*base.add(k) }.read_stable();
                    scanned += 1;
                    if to != 0 && a == addr as u64 && to > t && best.is_none_or(|(bt, _)| to < bt) {
                        best = Some((to, val));
                    }
                }
                // The overflow look must sit INSIDE the epoch bracket:
                // commits bump the epoch on diverts too, so a stable pass
                // proves ring + overflow were observed as one instant. An
                // overflow record found after an unprotected gap could
                // otherwise shadow a smaller-stamped ring record published
                // into the gap (the second marching variant; module docs).
                if v.part.overflow_len() > 0 {
                    if let Some((val, to)) = v.part.overflow_best(addr, t) {
                        if best.is_none_or(|(bt, _)| to < bt) {
                            best = Some((to, val));
                        }
                    }
                }
                if orec.ring_epoch() == e1 {
                    break;
                }
            }
            tries += 1;
            if tries.is_multiple_of(64) {
                // Single-core friendliness: let the publisher finish.
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
        // Total slots visited, retries included: the histogram shape shows
        // both configured depth and epoch-bracket churn.
        if crate::telemetry::enabled() {
            crate::telemetry::global()
                .snapshot_scan_depth
                .record(scanned);
        }
        best.map(|(to, val)| (val, to))
    }
}

impl Drop for ReadTx<'_, '_> {
    fn drop(&mut self) {
        // Cleans up after a panic in user code mid-attempt: the pin must
        // be released and the slot returned to even, or the next quiesce
        // would wait on us forever.
        if self.in_attempt {
            self.end_slot();
        }
    }
}

impl ThreadCtx {
    /// Runs `f` as a read-only transaction against a consistent snapshot,
    /// retrying until it completes. **Cannot abort on data conflicts**:
    /// concurrent writers never invalidate a pinned snapshot (module
    /// docs), so the only restarts are a configuration switch caught in
    /// flight and [`Abort::retry`] from the closure itself.
    ///
    /// The closure receives a [`ReadTx`], which exposes reads only — the
    /// read/update split is enforced at compile time. Writes (and reads
    /// that must observe them) go through [`ThreadCtx::run`].
    ///
    /// Reads observe the committed state as of one clock value
    /// ([`ReadTx::snapshot_version`]), which is pinned *at attempt begin*:
    /// values committed after the snapshot was pinned are not visible,
    /// the price of never validating. Lifetime obligations are as in
    /// [`ThreadCtx::run`].
    ///
    /// # Panics
    ///
    /// Panics if called from inside a running transaction on the same
    /// thread (nesting is not supported).
    pub fn snapshot_read<'e, T, F>(&'e self, mut f: F) -> T
    where
        F: for<'s> FnMut(&mut ReadTx<'e, 's>) -> TxResult<T>,
    {
        let mut scratch = self
            .scratch
            .try_borrow_mut()
            .expect("snapshot_read inside a running transaction on the same thread");
        // Take the view buffer out so a panic cannot leave it aliased;
        // restored below (a panic merely costs its capacity).
        let mut views = std::mem::take(&mut scratch.ro_views);
        let out = {
            let mut rtx = ReadTx {
                stm: &self.stm.inner,
                slot: self.slot,
                views: &mut views,
                t: 0,
                in_attempt: false,
                restart: Restart::User,
                _env: PhantomData,
            };
            loop {
                rtx.begin();
                match f(&mut rtx) {
                    Ok(v) => {
                        rtx.finish_commit();
                        break v;
                    }
                    Err(_) => {
                        rtx.do_restart();
                        std::thread::yield_now();
                    }
                }
            }
        };
        scratch.ro_views = views;
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{AcquireMode, PartitionConfig};
    use crate::error::Abort;
    use crate::stm::Stm;

    #[test]
    fn snapshot_read_sees_committed_state() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let a = p.tvar(10u64);
        let b = p.tvar(20u64);
        let ctx = stm.register_thread();
        let (va, vb, t) = ctx.snapshot_read(|tx| {
            let va = tx.read(&a)?;
            let vb = tx.read(&b)?;
            Ok((va, vb, tx.snapshot_version()))
        });
        assert_eq!((va, vb), (10, 20));
        assert_eq!(t, stm.clock_now());
        let s = p.stats();
        assert_eq!(s.snapshot_commits, 1);
        assert_eq!(s.snapshot_reads, 2);
        assert_eq!(s.snapshot_restarts, 0);
        assert_eq!(s.ro_commits, 1, "snapshot commits count as ro commits");
        assert_eq!(s.aborts(), 0);
    }

    #[test]
    fn snapshot_read_serves_history_after_overwrites() {
        // Force every address onto one orec so an unrelated write moves
        // the orec version past the snapshot and the ring must answer.
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default().orecs(1).ring(4));
        let x = p.tvar(1u64);
        let y = p.tvar(100u64);
        let ctx = stm.register_thread();
        // Commit a few overwrites of y; x stays at 1 the whole time.
        for i in 0..3u64 {
            ctx.run(|tx| tx.write(&y, 101 + i));
        }
        let (vx, vy) = ctx.snapshot_read(|tx| Ok((tx.read(&x)?, tx.read(&y)?)));
        assert_eq!(vx, 1);
        assert_eq!(vy, 103);
        assert_eq!(p.stats().snapshot_restarts, 0);
    }

    #[test]
    fn snapshot_read_raw_tier() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = p.tvar(5u64);
        let ctx = stm.register_thread();
        let v = ctx.snapshot_read(|tx| tx.read_raw(&p, x.var()));
        assert_eq!(v, 5);
    }

    #[test]
    fn user_retry_restarts_without_abort_counters_beyond_user() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = p.tvar(7u64);
        let ctx = stm.register_thread();
        let mut tries = 0;
        let v = ctx.snapshot_read(|tx| {
            tries += 1;
            let v = tx.read(&x)?;
            if tries < 3 {
                return Err(Abort::retry());
            }
            Ok(v)
        });
        assert_eq!(v, 7);
        assert_eq!(tries, 3);
        let s = p.stats();
        assert_eq!(s.snapshot_restarts, 2);
        assert_eq!(s.aborts_user, 2);
        assert_eq!(s.snapshot_commits, 1);
    }

    #[test]
    fn switching_flag_restarts_instead_of_spinning() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = p.tvar(3u64);
        let ctx = stm.register_thread();
        p.debug_force_switch_flag(true);
        let mut saw_flag = false;
        let v = ctx.snapshot_read(|tx| {
            match tx.read(&x) {
                Ok(v) => Ok(v),
                Err(e) => {
                    // First attempt hits the flag; clear it so the retry
                    // succeeds (a real switch clears it itself).
                    saw_flag = true;
                    p.debug_force_switch_flag(false);
                    Err(e)
                }
            }
        });
        assert_eq!(v, 3);
        assert!(saw_flag);
        let s = p.stats();
        assert_eq!(s.aborts_switching, 1);
        assert_eq!(s.snapshot_restarts, 1);
    }

    #[test]
    fn snapshot_never_blocks_on_commit_time_writers() {
        // Concurrent writers under commit-time acquisition: snapshot
        // readers must complete with zero data-conflict restarts.
        let stm = Stm::new();
        let p = stm.new_partition(
            PartitionConfig::default()
                .orecs(8)
                .ring(4)
                .acquire(AcquireMode::Commit),
        );
        let vars: Vec<_> = (0..4)
            .map(|i| std::sync::Arc::new(p.tvar(i as u64)))
            .collect();
        let sum0: u64 = (0..4).sum();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let ctx = stm.register_thread();
                let vars = vars.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let (a, b) = ((i % 4) as usize, ((i + 1) % 4) as usize);
                        ctx.run(|tx| {
                            let va = tx.read(&vars[a])?;
                            let vb = tx.read(&vars[b])?;
                            tx.write(&vars[a], va.wrapping_sub(1))?;
                            tx.write(&vars[b], vb.wrapping_add(1))?;
                            Ok(())
                        });
                    }
                });
            }
            let ctx = stm.register_thread();
            let vars = vars.clone();
            s.spawn(move || {
                for _ in 0..500 {
                    let total = ctx.snapshot_read(|tx| {
                        let mut t = 0u64;
                        for v in vars.iter() {
                            t = t.wrapping_add(tx.read(v)?);
                        }
                        Ok(t)
                    });
                    assert_eq!(total, sum0, "snapshot saw an inconsistent cut");
                }
            });
        });
        let s = p.stats();
        assert_eq!(s.snapshot_commits, 500);
        assert_eq!(s.snapshot_restarts, 0, "no switch ran: zero restarts");
    }

    #[test]
    #[should_panic(expected = "snapshot_read inside a running transaction")]
    fn nesting_inside_run_panics() {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::default());
        let x = p.tvar(1u64);
        let ctx = stm.register_thread();
        ctx.run(|_tx| {
            let _ = ctx.snapshot_read(|rtx| rtx.read(&x));
            Ok(())
        });
    }
}
