//! The runtime's telemetry singleton: one process-wide flight recorder
//! plus the named histograms the engine records into.
//!
//! Telemetry is always compiled in and toggled at runtime
//! ([`set_enabled`]); disabled, the hot path pays exactly one relaxed
//! load and a predictable branch per transaction begin. Enabled,
//! transaction lifecycle recording is still 1-in-N sampled
//! ([`set_tx_sample_period`], default every 64th transaction per thread)
//! so the `Instant` reads and ring writes stay off the common path, while
//! control-plane events (quiesce windows, splits, resizes,
//! privatize/republish, controller decisions) are recorded
//! unconditionally — they are rare by construction.
//!
//! The building blocks live in the dependency-free `partstm-obs` crate,
//! re-exported here so downstream crates (the repartition controller, the
//! bench harness) reach everything through `partstm_core::telemetry`
//! without a new dependency edge.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

pub use partstm_obs::{
    codes, now_micros, prometheus_text, render_event, Counter, Event, EventKind, EventRing,
    FlightRecorder, HistSnapshot, Histogram, MetricsRegistry, RegistrySnapshot,
};

/// The engine's instruments, registered once in the global
/// [`MetricsRegistry`] and cached as direct handles for wait-free
/// recording.
#[derive(Debug)]
pub struct Telemetry {
    /// The process flight recorder (per-thread lanes + control ring).
    pub recorder: FlightRecorder,
    /// The registry behind the named instruments below; exporters snapshot
    /// it ([`MetricsRegistry::snapshot`]).
    pub registry: MetricsRegistry,
    /// Sampled begin→commit latency of committed transactions, ns.
    pub commit_latency_ns: Arc<Histogram>,
    /// Sampled abort-to-retry contention-manager backoff, ns.
    pub backoff_ns: Arc<Histogram>,
    /// Flag→quiesce drain duration of every structural window, µs.
    pub quiesce_us: Arc<Histogram>,
    /// Sampled commit-time validation pass length (read-set entries).
    pub validate_len: Arc<Histogram>,
    /// Version-ring slots scanned per snapshot history lookup.
    pub snapshot_scan_depth: Arc<Histogram>,
    /// Privatize→republish hold duration, µs.
    pub privatize_hold_us: Arc<Histogram>,
    /// Quiesce windows drained (successfully or not).
    pub quiesce_total: Arc<Counter>,
    /// Quiesce windows that hit the hard deadline and rolled back.
    pub quiesce_timeouts: Arc<Counter>,
    /// Thread slots whose kill flag was raised by the quiesce rescue
    /// stage (soft deadline crossed).
    pub kill_rescue_kills: Arc<Counter>,
    /// Slots still blocking at the hard deadline — each produced a
    /// structured `StuckSlot` diagnostic.
    pub stuck_slots: Arc<Counter>,
}

impl Telemetry {
    fn new() -> Telemetry {
        let registry = MetricsRegistry::new();
        Telemetry {
            recorder: FlightRecorder::default(),
            commit_latency_ns: registry.histogram("commit_latency_ns"),
            backoff_ns: registry.histogram("backoff_ns"),
            quiesce_us: registry.histogram("quiesce_us"),
            validate_len: registry.histogram("validate_len"),
            snapshot_scan_depth: registry.histogram("snapshot_scan_depth"),
            privatize_hold_us: registry.histogram("privatize_hold_us"),
            quiesce_total: registry.counter("quiesce_total"),
            quiesce_timeouts: registry.counter("quiesce_timeouts"),
            kill_rescue_kills: registry.counter("kill_rescue_kills"),
            stuck_slots: registry.counter("stuck_slots"),
            registry,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TX_SAMPLE_PERIOD: AtomicU64 = AtomicU64::new(64);

/// The process-wide telemetry instance (created on first use).
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Turns recording on or off process-wide. Off (the default), every
/// instrumentation site short-circuits on one relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the transaction-lifecycle sampling period: every `period`-th
/// transaction per thread records its begin/validate/commit/abort events
/// and latency histograms. 0 disables lifecycle sampling entirely
/// (control-plane recording is unaffected).
pub fn set_tx_sample_period(period: u64) {
    TX_SAMPLE_PERIOD.store(period, Ordering::Relaxed);
}

/// Current lifecycle sampling period (see [`set_tx_sample_period`]).
#[inline(always)]
pub fn tx_sample_period() -> u64 {
    TX_SAMPLE_PERIOD.load(Ordering::Relaxed)
}

/// Maps a [`SwitchOutcome`](crate::stm::SwitchOutcome) to its event
/// payload code (see [`codes`]).
pub fn outcome_code(o: crate::stm::SwitchOutcome) -> u64 {
    match o {
        crate::stm::SwitchOutcome::Switched => codes::OUTCOME_SWITCHED,
        crate::stm::SwitchOutcome::Unchanged => codes::OUTCOME_UNCHANGED,
        crate::stm::SwitchOutcome::Contended => codes::OUTCOME_CONTENDED,
        crate::stm::SwitchOutcome::TimedOut => codes::OUTCOME_TIMED_OUT,
    }
}

/// Records a control-plane event on the shared control ring, if enabled.
/// Public so sibling crates (e.g. the repartition controller) can emit
/// their decisions into the same timeline.
#[inline]
pub fn control_event(kind: EventKind, a: u64, b: u64, c: u64) {
    if enabled() {
        global().recorder.record_control(Event::now(kind, a, b, c));
    }
}

/// Records a per-thread lifecycle event on `lane`, if enabled. Callers
/// are expected to have made the sampling decision already.
#[inline]
pub(crate) fn lane_event(lane: usize, kind: EventKind, a: u64, b: u64, c: u64) {
    if enabled() {
        global().recorder.record(lane, Event::now(kind, a, b, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        // Other tests may have toggled the global flag; force a known
        // state, record, and restore.
        let was = enabled();
        set_enabled(false);
        let before = global().recorder.recorded();
        control_event(EventKind::QuiesceBegin, 1, 0, 0);
        assert_eq!(global().recorder.recorded(), before);
        set_enabled(true);
        control_event(EventKind::QuiesceBegin, 1, 0, 0);
        assert_eq!(global().recorder.recorded(), before + 1);
        set_enabled(was);
    }

    #[test]
    fn named_instruments_live_in_the_registry() {
        let t = global();
        t.commit_latency_ns.record(10);
        let snap = t.registry.snapshot();
        assert!(snap.hist("commit_latency_ns").unwrap().count >= 1);
        assert!(snap.hist("quiesce_us").is_some());
        assert!(snap.hist("privatize_hold_us").is_some());
    }
}
