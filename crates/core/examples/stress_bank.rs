//! Atomicity stress: N transfer threads against a concurrent summer; any
//! snapshot that does not conserve the total aborts the run. Used as a
//! long-running soak test (`cargo run --release -p partstm-core --example
//! stress_bank`).
use partstm_core::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    for round in 0..50 {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("bank"));
        let n = 16usize;
        let accounts: Arc<Vec<PVar<i64>>> = Arc::new((0..n).map(|_| p.tvar(1000)).collect());
        let expect = 16_000i64;
        let stop = Arc::new(AtomicBool::new(false));
        let bad = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let ctx = stm.register_thread();
                let accounts = Arc::clone(&accounts);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut r = (t as u64 + 1) * 0x9E37_79B9;
                    while !stop.load(Ordering::Relaxed) {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        let from = (r % 16) as usize;
                        let to = ((r >> 8) % 16) as usize;
                        let amt = (r % 50) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            let t2 = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], t2 + amt)?;
                            Ok(())
                        });
                    }
                });
            }
            let ctx = stm.register_thread();
            let accounts2 = Arc::clone(&accounts);
            let stop2 = Arc::clone(&stop);
            let bad2 = Arc::clone(&bad);
            s.spawn(move || {
                for i in 0..3000 {
                    let sum = ctx.run(|tx| {
                        let mut s = 0i64;
                        for a in accounts2.iter() {
                            s += tx.read(a)?;
                        }
                        Ok(s)
                    });
                    if sum != expect {
                        println!(
                            "round {round} iter {i}: BAD SUM {sum} (delta {})",
                            sum - expect
                        );
                        bad2.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                stop2.store(true, Ordering::Relaxed);
            });
        });
        if bad.load(Ordering::Relaxed) {
            println!("reproduced in round {round}");
            std::process::exit(1);
        }
        drop(p);
    }
    println!("no violation in 50 rounds");
}
