//! Engine-level integration tests: transactional allocation lifecycles,
//! the reconfiguration protocol's orec re-stamping, kill mechanics and
//! contention-management policies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use partstm_core::{Abort, Arena, CmPolicy, Granularity, PartitionConfig, ReadMode, Stm, TVar};

#[derive(Default)]
struct Node {
    val: TVar<u64>,
}

#[test]
fn aborted_alloc_is_reclaimed() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("a"));
    let arena: Arena<Node> = Arena::new();
    let ctx = stm.register_thread();
    let mut attempts = 0;
    ctx.run(|tx| {
        attempts += 1;
        let h = arena.alloc(tx)?;
        let n = arena.get(h);
        tx.write_raw(&p, &n.val, 42)?;
        if attempts < 4 {
            return Err(Abort::retry());
        }
        Ok(())
    });
    // Three aborted attempts each allocated a node which must have been
    // returned; only the committed one is live.
    assert_eq!(arena.live(), 1, "aborted allocations must be reclaimed");
}

#[test]
fn free_is_deferred_to_commit() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("a"));
    let arena: Arena<Node> = Arena::new();
    let ctx = stm.register_thread();
    let h = ctx.run(|tx| {
        let h = arena.alloc(tx)?;
        tx.write_raw(&p, &arena.get(h).val, 1)?;
        Ok(h)
    });
    assert_eq!(arena.live(), 1);
    // Abort after freeing: the free must be forgotten.
    let mut first = true;
    ctx.run(|tx| {
        if first {
            first = false;
            arena.free(tx, h);
            return Err(Abort::retry());
        }
        Ok(())
    });
    assert_eq!(
        arena.live(),
        1,
        "free in an aborted attempt must not happen"
    );
    // Commit the free: now the slot recycles.
    ctx.run(|tx| {
        arena.free(tx, h);
        Ok(())
    });
    assert_eq!(arena.live(), 0);
    let h2 = arena.alloc_raw();
    assert_eq!(h, h2, "slot recycled after committed free");
}

#[test]
fn switch_restamps_orec_versions() {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("x"));
    let v = TVar::new(0u64);
    let ctx = stm.register_thread();
    for i in 0..10u64 {
        ctx.run(|tx| tx.write_raw(&p, &v, i));
    }
    let clock_before = stm.clock_now();
    assert_eq!(clock_before, 10);
    // Switch granularity: every orec must now carry the current clock, so
    // a transaction with a pre-switch snapshot cannot silently accept
    // remapped state. Observable effect: a fresh reader still works and
    // sees the committed value.
    let mut cfg = p.current_config();
    cfg.granularity = Granularity::Stripe { shift: 8 };
    assert!(stm.switch_partition(&p, cfg).switched());
    assert_eq!(ctx.run(|tx| tx.read_raw(&p, &v)), 9);
    // And updates continue normally under the new mapping.
    ctx.run(|tx| tx.write_raw(&p, &v, 99));
    assert_eq!(v.load_direct(), 99);
}

#[test]
fn snapshots_stay_consistent_across_granularity_switches() {
    // Regression test for the remapped-stale-version bug: long read-only
    // transactions race writers while granularity flips word<->plock.
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("x"));
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..16).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writers keep all variables equal.
        for t in 0..3u64 {
            let ctx = stm.register_thread();
            let (p, vars, stop) = (p.clone(), vars.clone(), stop.clone());
            s.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    ctx.run(|tx| {
                        for v in vars.iter() {
                            tx.write_raw(&p, v, i)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Readers assert all-equal.
        let ctx = stm.register_thread();
        let (p2, vars2, stop2) = (p.clone(), vars.clone(), stop.clone());
        s.spawn(move || {
            for _ in 0..4000 {
                ctx.run(|tx| {
                    let first = tx.read_raw(&p2, &vars2[0])?;
                    for v in vars2.iter().skip(1) {
                        assert_eq!(tx.read_raw(&p2, v)?, first, "mixed snapshot");
                    }
                    Ok(())
                });
            }
            stop2.store(true, Ordering::Relaxed);
        });
        // Switcher flips granularity continuously.
        let stm2 = stm.clone();
        let (p3, stop3) = (p.clone(), stop.clone());
        s.spawn(move || {
            let mut flip = false;
            while !stop3.load(Ordering::Relaxed) {
                let mut cfg = p3.current_config();
                cfg.granularity = if flip {
                    Granularity::Word
                } else {
                    Granularity::PartitionLock
                };
                flip = !flip;
                let _ = stm2.switch_partition(&p3, cfg);
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        });
    });
}

#[test]
fn visible_reader_is_killed_by_writer() {
    // A visible reader parks on a value; a writer must be able to kill it
    // and make progress (writer-wins arbitration).
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("k").read_mode(ReadMode::Visible));
    let v = Arc::new(TVar::new(0u64));
    let reader_attempts = Arc::new(AtomicU64::new(0));
    let reader_in = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let ctx_r = stm.register_thread();
        let (p1, v1, ra, rin) = (
            p.clone(),
            v.clone(),
            reader_attempts.clone(),
            reader_in.clone(),
        );
        s.spawn(move || {
            ctx_r.run(|tx| {
                ra.fetch_add(1, Ordering::SeqCst);
                let x = tx.read_raw(&p1, &v1)?;
                rin.store(true, Ordering::SeqCst);
                if x == 0 {
                    // Busy-wait transactionally until the writer commits;
                    // the kill must interrupt this (`read` polls the flag).
                    loop {
                        let now = tx.read_raw(&p1, &v1)?;
                        if now != 0 {
                            return Ok(now);
                        }
                        std::hint::spin_loop();
                    }
                }
                Ok(x)
            });
        });
        let ctx_w = stm.register_thread();
        let (p2, v2, rin2) = (p.clone(), v.clone(), reader_in.clone());
        s.spawn(move || {
            while !rin2.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            ctx_w.run(|tx| tx.write_raw(&p2, &v2, 7));
        });
    });
    assert_eq!(v.load_direct(), 7);
    assert!(
        reader_attempts.load(Ordering::SeqCst) >= 1,
        "reader ran at least once"
    );
    let stats = p.stats();
    assert!(stats.commits >= 2);
}

#[test]
fn delay_then_abort_makes_progress_under_contention() {
    let stm = Stm::new();
    let p = stm.new_partition(
        PartitionConfig::named("d")
            .cm(CmPolicy::DelayThenAbort)
            .granularity(Granularity::PartitionLock),
    );
    let v = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        for _ in 0..6 {
            let ctx = stm.register_thread();
            let (p, v) = (p.clone(), v.clone());
            s.spawn(move || {
                for _ in 0..2000 {
                    ctx.run(|tx| tx.modify_raw(&p, &v, |x| x + 1).map(|_| ()));
                }
            });
        }
    });
    assert_eq!(v.load_direct(), 12_000);
}

#[test]
fn stats_attribute_aborts_to_the_conflicting_partition() {
    let stm = Stm::new();
    let hot =
        stm.new_partition(PartitionConfig::named("hot").granularity(Granularity::PartitionLock));
    let cold = stm.new_partition(PartitionConfig::named("cold"));
    let h = Arc::new(TVar::new(0u64));
    let c = Arc::new(TVar::new(0u64));
    std::thread::scope(|s| {
        for _ in 0..6 {
            let ctx = stm.register_thread();
            let (hot, cold, h, c) = (hot.clone(), cold.clone(), h.clone(), c.clone());
            s.spawn(move || {
                for i in 0..400u64 {
                    ctx.run(|tx| {
                        // Read-only traffic in `cold`, contended updates in
                        // `hot`. The sleep between read and write stretches
                        // the conflict window across a reschedule so the
                        // counter genuinely conflicts even on a single-core
                        // host (sub-microsecond transactions never
                        // interleave there otherwise).
                        let _ = tx.read_raw(&cold, &c)?;
                        let v = tx.read_raw(&hot, &h)?;
                        std::thread::sleep(std::time::Duration::from_micros(20));
                        tx.write_raw(&hot, &h, v + i)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let sh = hot.stats();
    let sc = cold.stats();
    assert!(
        sh.aborts() > 0,
        "partition-locked counter under 6 threads must conflict"
    );
    assert_eq!(
        sc.aborts_wlock + sc.aborts_rlock,
        0,
        "cold partition never causes lock conflicts"
    );
    assert_eq!(sh.commits, sc.commits, "same transactions touched both");
}

/// Regression test for the snapshot-stale recycling hazard: an allocating
/// transaction whose snapshot predates a slot's free must not receive the
/// slot while it is still a live node in that snapshot. Before the reuse
/// barrier (free tags + snapshot extension in `Arena::alloc`) this workload
/// wedged all threads within seconds: a "fresh" node aliased a reachable
/// node of the allocator's own consistent view.
#[test]
fn recycled_slots_never_alias_the_allocators_snapshot() {
    use partstm_core::{Handle, TxResult, TxWord};

    #[derive(Default)]
    struct TreeNode {
        key: TVar<u64>,
        left: TVar<Option<Handle<TreeNode>>>,
        right: TVar<Option<Handle<TreeNode>>>,
    }

    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("t"));
    let arena: Arc<Arena<TreeNode>> = Arc::new(Arena::with_capacity(512));
    let root: Arc<TVar<Option<Handle<TreeNode>>>> = Arc::new(TVar::new(None));
    let ops_done = Arc::new(AtomicU64::new(0));

    // High-churn BST insert/delete on a tiny key range: constant free/alloc
    // recycling under contention.
    fn bst_op<'e>(
        tx: &mut partstm_core::Tx<'e, '_>,
        p: &'e Arc<partstm_core::Partition>,
        arena: &'e Arena<TreeNode>,
        root: &'e TVar<Option<Handle<TreeNode>>>,
        k: u64,
        insert: bool,
    ) -> TxResult<()> {
        let mut prev: Option<Handle<TreeNode>> = None;
        let mut went_left = false;
        let mut cur = tx.read_raw(p, root)?;
        let mut steps = 0u32;
        while let Some(h) = cur {
            steps += 1;
            assert!(steps < 10_000, "cycle in snapshot: recycling hazard back");
            let n = arena.get(h);
            let nk = tx.read_raw(p, &n.key)?;
            if nk == k {
                break;
            }
            prev = Some(h);
            went_left = k < nk;
            cur = if k < nk {
                tx.read_raw(p, &n.left)?
            } else {
                tx.read_raw(p, &n.right)?
            };
        }
        if insert && cur.is_none() {
            let h = arena.alloc(tx)?;
            let n = arena.get(h);
            tx.write_raw(p, &n.key, k)?;
            tx.write_raw(p, &n.left, None)?;
            tx.write_raw(p, &n.right, None)?;
            match prev {
                None => tx.write_raw(p, root, Some(h))?,
                Some(ph) => {
                    let pn = arena.get(ph);
                    if went_left {
                        tx.write_raw(p, &pn.left, Some(h))?;
                    } else {
                        tx.write_raw(p, &pn.right, Some(h))?;
                    }
                }
            }
        } else if !insert {
            if let Some(h) = cur {
                let n = arena.get(h);
                let l = tx.read_raw(p, &n.left)?;
                let r = tx.read_raw(p, &n.right)?;
                let repl = match (l, r) {
                    (None, x) => Some(x),
                    (x, None) => Some(x),
                    _ => None, // two children: skip (keeps the test simple)
                };
                if let Some(repl) = repl {
                    match prev {
                        None => tx.write_raw(p, root, repl)?,
                        Some(ph) => {
                            let pn = arena.get(ph);
                            if went_left {
                                tx.write_raw(p, &pn.left, repl)?;
                            } else {
                                tx.write_raw(p, &pn.right, repl)?;
                            }
                        }
                    }
                    arena.free(tx, h);
                }
            }
        }
        Ok(())
    }

    std::thread::scope(|s| {
        for t in 0..8u64 {
            let ctx = stm.register_thread();
            let (p, arena, root, ops_done) =
                (p.clone(), arena.clone(), root.clone(), ops_done.clone());
            s.spawn(move || {
                let mut r = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..30_000 {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let k = r % 64;
                    let insert = (r >> 33) & 1 == 0;
                    ctx.run(|tx| bst_op(tx, &p, &arena, &root, k, insert));
                    ops_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(ops_done.load(Ordering::Relaxed), 240_000);
    // Committed tree must be a valid BST with unique keys.
    let mut keys = Vec::new();
    fn walk(arena: &Arena<TreeNode>, h: Option<Handle<TreeNode>>, out: &mut Vec<u64>) {
        if let Some(h) = h {
            let n = arena.get(h);
            walk(arena, n.left.load_direct(), out);
            out.push(n.key.load_direct());
            walk(arena, n.right.load_direct(), out);
        }
    }
    walk(&arena, root.load_direct(), &mut keys);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "in-order walk must be strictly sorted");
    let _ = Option::<Handle<TreeNode>>::from_word(0); // silence unused TxWord import
}
