//! Scratch probe: where do the cold-scan aborts go when the workload mix
//! approaches the struct phase-shift scenario? (Diagnosing the dip.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::{PartitionConfig, Stm};
use partstm_structures::THashMap;

fn run(label: &str, threads: usize, scan_pct: u64, hold: &str) {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("mixed").orecs(256));
    let hot = Arc::new(THashMap::new(Arc::clone(&part), 16));
    let cold = Arc::new(THashMap::new(Arc::clone(&part), 1024));
    let ctx = stm.register_thread();
    for k in 0..16u64 {
        ctx.run(|tx| hot.put(tx, k, 100).map(|_| ()));
    }
    for k in 0..4080u64 {
        ctx.run(|tx| cold.put(tx, k, 100).map(|_| ()));
    }
    drop(ctx);

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let ctx = stm.register_thread();
            let (hot, cold, stop, ops) = (
                Arc::clone(&hot),
                Arc::clone(&cold),
                Arc::clone(&stop),
                Arc::clone(&ops),
            );
            let hold = hold.to_string();
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if (r >> 16) % 100 < scan_pct {
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0u64;
                            for _ in 0..64 {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let k = (x >> 16) % 4080;
                                sum = sum.wrapping_add(cold.get(tx, k)?.unwrap_or(0));
                            }
                            Ok(sum)
                        });
                    } else {
                        let from = r % 16;
                        let to = (r >> 8) % 16;
                        let amt = r % 90;
                        let hold = hold.as_str();
                        ctx.run(|tx| {
                            let f = hot.get(tx, from)?.unwrap_or(0);
                            hot.put(tx, from, f.wrapping_sub(amt))?;
                            match hold {
                                "sleep" => std::thread::sleep(Duration::from_micros(50)),
                                "spin" => {
                                    let t0 = Instant::now();
                                    while t0.elapsed() < Duration::from_micros(25) {
                                        core::hint::spin_loop();
                                    }
                                }
                                _ => std::thread::yield_now(),
                            }
                            let t2 = hot.get(tx, to)?.unwrap_or(0);
                            hot.put(tx, to, t2.wrapping_add(amt))?;
                            Ok(())
                        });
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::Relaxed);
    });
    let st = part.stats();
    println!(
        "{label:>28}: ops/s={:>7} commits={} wlock={} valid={} user={}",
        ops.load(Ordering::Relaxed) / 2,
        st.commits,
        st.aborts_wlock,
        st.aborts_validation,
        st.aborts_user,
    );
}

fn main() {
    run("2thr scan85 sleep", 2, 85, "sleep");
    run("4thr scan85 sleep", 4, 85, "sleep");
    run("4thr scan85 spin", 4, 85, "spin");
    run("4thr scan85 yield", 4, 85, "yield");
    run("4thr scan50 sleep", 4, 50, "sleep");
}
