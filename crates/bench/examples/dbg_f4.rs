// f4's exact first mode, with heartbeats and an attempt-count watchdog.
use partstm_bench::{intset_op, prefill};
use partstm_core::*;
use partstm_stamp::SplitMix64;
use partstm_structures::TRbTree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let range = 2048u64;
    let phase = 1.5f64;
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("tree"));
    let tree = Arc::new(TRbTree::with_capacity(Arc::clone(&part), range as usize));
    prefill(&stm, &*tree, range);
    println!("prefill done");
    let beats: Arc<Vec<AtomicU64>> = Arc::new((0..8).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..8usize {
            let ctx = stm.register_thread();
            let (tree, beats, stop) = (tree.clone(), beats.clone(), stop.clone());
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x5E71E5 ^ (t as u64 + 1).wrapping_mul(0x517C_C1B7));
                while !stop.load(Ordering::Relaxed) {
                    let el = start.elapsed();
                    let p = (el.as_secs_f64() / phase) as u64;
                    let upd = if p.is_multiple_of(2) { 2 } else { 60 };
                    intset_op(&*tree, &ctx, &mut rng, range, upd);
                    beats[t].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let (b2, s2) = (beats.clone(), stop.clone());
        let part2 = Arc::clone(&part);
        let stm2 = stm.clone();
        s.spawn(move || {
            let mut last = vec![0u64; 8];
            for sec in 0..12 {
                std::thread::sleep(std::time::Duration::from_secs(1));
                let now: Vec<u64> = b2.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                let stuck: Vec<usize> = (0..8).filter(|&i| now[i] == last[i]).collect();
                let (locked, owners, maxv) = part2.debug_scan();
                println!(
                    "t={sec} total={} stuck={stuck:?} clock={} locked={locked} owners={owners:?} maxv={maxv}",
                    now.iter().sum::<u64>(),
                    stm2.clock_now()
                );
                last = now;
            }
            s2.store(true, Ordering::Relaxed);
        });
    });
    println!("clean exit");
}
