//! Scratch diagnostics for the phase-shift scenario (not part of repro).

use partstm_bench::phase_shift::{run_phase_shift, run_struct_shift, PhaseShiftConfig};

fn main() {
    for (label, mk) in [
        (
            "static",
            Box::new(|| PhaseShiftConfig::standard(4, 4.0).without_controller())
                as Box<dyn Fn() -> PhaseShiftConfig>,
        ),
        ("ctrl", Box::new(|| PhaseShiftConfig::standard(4, 4.0))),
        (
            "struct-static",
            Box::new(|| PhaseShiftConfig::struct_standard(4, 4.0).without_controller()),
        ),
        (
            "struct-ctrl",
            Box::new(|| PhaseShiftConfig::struct_standard(4, 4.0)),
        ),
    ] {
        let rep = if label.starts_with("struct") {
            run_struct_shift(&mk())
        } else {
            run_phase_shift(&mk())
        };
        println!("== {label}");
        println!("windows: {:?}", rep.window_ops);
        println!(
            "baseline {:.0} dip {:.0} recovered {:.0} recovery {:.2} split {:?} abort {:.3}",
            rep.baseline, rep.dip, rep.recovered, rep.recovery, rep.split_window, rep.abort_rate
        );
        for e in &rep.events {
            println!("event: {e:?}");
        }
        for (name, s) in &rep.partition_stats {
            println!(
                "{name}: commits={} aborts={} (wlock={} valid={} switch={}) reads={} writes={}",
                s.commits,
                s.aborts(),
                s.aborts_wlock,
                s.aborts_validation,
                s.aborts_switching,
                s.reads,
                s.writes
            );
        }
    }
}
