//! # partstm-bench — reproduction harness
//!
//! Reusable measurement machinery for the `repro` binary (one sub-command
//! per figure/table of the paper's evaluation, see DESIGN.md §4) and the
//! Criterion microbenches: fixed-time multithreaded drivers, a time-series
//! driver for the phase-change experiment, the intset operation mix, and
//! table formatting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod hetero;
pub mod hotkey;
pub mod json_out;
pub mod orec_pressure;
pub mod phase_shift;
pub mod privatize;
pub mod readpath;

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::{
    DynConfig, Granularity, PartitionConfig, ReadMode, StatCounters, Stm, ThreadCtx,
};
use partstm_stamp::SplitMix64;
use partstm_structures::IntSet;

/// One measured data point.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Committed operations per second.
    pub ops_per_sec: f64,
    /// Total operations performed.
    pub ops: u64,
    /// Wall-clock seconds measured.
    pub secs: f64,
}

/// Runs `op` in a loop on `threads` threads for `secs` seconds (plus a
/// fixed 15% warmup that is not counted). `op` receives the thread's
/// context, its index and a deterministic per-thread RNG.
pub fn drive(
    stm: &Stm,
    threads: usize,
    secs: f64,
    op: &(dyn Fn(&ThreadCtx, usize, &mut SplitMix64) + Sync),
) -> Measurement {
    let stop = AtomicBool::new(false);
    let counting = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let warmup = Duration::from_secs_f64(secs * 0.15);
    let measure = Duration::from_secs_f64(secs);
    let mut measured_secs = 0.0;
    std::thread::scope(|s| {
        for t in 0..threads {
            let ctx = stm.register_thread();
            let (stop, counting, ops) = (&stop, &counting, &ops);
            s.spawn(move || {
                let mut rng =
                    SplitMix64::new(0xBE7_C0DE ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9));
                let mut local = 0u64;
                let mut was_counting = false;
                while !stop.load(Ordering::Relaxed) {
                    let c = counting.load(Ordering::Relaxed);
                    if c != was_counting {
                        local = 0; // warmup ended: restart the local count
                        was_counting = c;
                    }
                    op(&ctx, t, &mut rng);
                    local += 1;
                }
                if was_counting {
                    ops.fetch_add(local, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(warmup);
        counting.store(true, Ordering::Relaxed);
        let t0 = Instant::now();
        std::thread::sleep(measure);
        measured_secs = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
    });
    let total = ops.load(Ordering::Relaxed);
    Measurement {
        ops_per_sec: total as f64 / measured_secs,
        ops: total,
        secs: measured_secs,
    }
}

/// Time-series variant: returns committed-ops counts per `window` over
/// `total` seconds (no warmup; the first windows *are* the experiment).
/// `op` additionally receives the elapsed time since start so workloads can
/// phase-shift.
pub fn drive_timeseries(
    stm: &Stm,
    threads: usize,
    total: f64,
    window: f64,
    op: &(dyn Fn(&ThreadCtx, usize, &mut SplitMix64, Duration) + Sync),
) -> Vec<u64> {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    let mut series = Vec::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let ctx = stm.register_thread();
            let (stop, ops) = (&stop, &ops);
            s.spawn(move || {
                let mut rng = SplitMix64::new(0x5E71E5 ^ (t as u64 + 1).wrapping_mul(0x517C_C1B7));
                while !stop.load(Ordering::Relaxed) {
                    op(&ctx, t, &mut rng, start.elapsed());
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let windows = (total / window).round() as usize;
        let mut prev = 0u64;
        for w in 1..=windows {
            let target = start + Duration::from_secs_f64(w as f64 * window);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let cur = ops.load(Ordering::Relaxed);
            series.push(cur - prev);
            prev = cur;
        }
        stop.store(true, Ordering::Relaxed);
    });
    series
}

/// The classic integer-set operation mix: `update_pct`% of operations are
/// updates (half inserts, half removes), the rest are lookups, keys uniform
/// in `0..range`.
pub fn intset_op(
    set: &dyn IntSet,
    ctx: &ThreadCtx,
    rng: &mut SplitMix64,
    range: u64,
    update_pct: u64,
) {
    let key = rng.below(range);
    if rng.pct(update_pct) {
        if rng.pct(50) {
            ctx.run(|tx| set.insert(tx, key).map(|_| ()));
        } else {
            ctx.run(|tx| set.remove(tx, key).map(|_| ()));
        }
    } else {
        ctx.run(|tx| set.contains(tx, key).map(|_| ()));
    }
}

/// Pre-fills a set to 50% occupancy of its key range (even keys), the
/// standard intset steady-state setup.
pub fn prefill(stm: &Stm, set: &dyn IntSet, range: u64) {
    let ctx = stm.register_thread();
    for k in (0..range).step_by(2) {
        ctx.run(|tx| set.insert(tx, k).map(|_| ()));
    }
}

/// The static configurations F2 sweeps (label, config).
pub fn static_configs() -> Vec<(&'static str, DynConfig)> {
    let base = DynConfig::from(&PartitionConfig::default());
    let mut inv_word = base;
    inv_word.read_mode = ReadMode::Invisible;
    inv_word.granularity = Granularity::Word;
    let mut vis_word = base;
    vis_word.read_mode = ReadMode::Visible;
    vis_word.granularity = Granularity::Word;
    let mut inv_plock = base;
    inv_plock.read_mode = ReadMode::Invisible;
    inv_plock.granularity = Granularity::PartitionLock;
    let mut vis_plock = base;
    vis_plock.read_mode = ReadMode::Visible;
    vis_plock.granularity = Granularity::PartitionLock;
    vec![
        ("inv/word", inv_word),
        ("vis/word", vis_word),
        ("inv/plock", inv_plock),
        ("vis/plock", vis_plock),
    ]
}

/// Formats operations per second as `Kops` with 1 decimal.
pub fn kops(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}

/// Thread counts to sweep: powers of two up to `max` (bounded by the
/// machine and the 64-slot limit), always including 1 and the cap.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let cap = max.min(hw).clamp(1, 64);
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= cap {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != cap && cap > 1 {
        v.push(cap);
    }
    v
}

/// Per-partition runtime summary row (used by T1/T2 reporting).
#[derive(Debug, Clone)]
pub struct PartReport {
    /// Partition name.
    pub name: String,
    /// Counter deltas over the observation run.
    pub stats: StatCounters,
    /// Final configuration (after any tuning).
    pub config: DynConfig,
}

/// Snapshot all partitions' counters (order = creation order).
pub fn snapshot_all(stm: &Stm) -> Vec<StatCounters> {
    stm.partitions().iter().map(|p| p.stats()).collect()
}

/// Collects per-partition reports from an `Stm`, subtracting `baseline`
/// snapshots taken before the run (matched by creation order).
pub fn partition_reports(stm: &Stm, baseline: &[StatCounters]) -> Vec<PartReport> {
    stm.partitions()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let base = baseline.get(i).copied().unwrap_or_default();
            PartReport {
                name: p.name().to_string(),
                stats: p.stats().delta(&base),
                config: p.current_config(),
            }
        })
        .collect()
}

/// Short human config label like `vis/plock`.
pub fn config_label(c: &DynConfig) -> String {
    let rm = match c.read_mode {
        ReadMode::Invisible => "inv",
        ReadMode::Visible => "vis",
    };
    let g = match c.granularity {
        Granularity::Word => "word".to_string(),
        Granularity::Stripe { shift } => format!("s{shift}"),
        Granularity::PartitionLock => "plock".to_string(),
    };
    format!("{rm}/{g}")
}

/// Makes a partition with a given dynamic config (helper for sweeps).
pub fn partition_with(
    stm: &Stm,
    name: &str,
    cfg: DynConfig,
    tunable: bool,
) -> Arc<partstm_core::Partition> {
    let mut pc = PartitionConfig::named(name);
    pc.read_mode = cfg.read_mode;
    pc.acquire = cfg.acquire;
    pc.granularity = cfg.granularity;
    pc.cm = cfg.cm;
    pc.reader_arb = cfg.reader_arb;
    pc.tune = tunable;
    stm.new_partition(pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_structures::THashSet;

    #[test]
    fn drive_measures_something() {
        let stm = Stm::new();
        let set = THashSet::new(stm.new_partition(PartitionConfig::named("s")), 64);
        prefill(&stm, &set, 128);
        let m = drive(&stm, 2, 0.2, &|ctx, _t, rng| {
            intset_op(&set, ctx, rng, 128, 20);
        });
        assert!(m.ops > 0);
        assert!(m.ops_per_sec > 100.0, "{}", m.ops_per_sec);
        assert!(m.secs >= 0.19);
    }

    #[test]
    fn timeseries_has_expected_windows() {
        let stm = Stm::new();
        let set = THashSet::new(stm.new_partition(PartitionConfig::named("s")), 64);
        let series = drive_timeseries(&stm, 2, 0.5, 0.1, &|ctx, _t, rng, _el| {
            intset_op(&set, ctx, rng, 64, 50);
        });
        assert_eq!(series.len(), 5);
        assert!(series.iter().sum::<u64>() > 0);
    }

    #[test]
    fn sweep_and_labels() {
        let s = thread_sweep(8);
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(static_configs().len(), 4);
        let c = DynConfig::from(&PartitionConfig::default());
        assert_eq!(config_label(&c), "inv/word");
    }

    #[test]
    fn prefill_hits_half_range() {
        let stm = Stm::new();
        let set = THashSet::new(stm.new_partition(PartitionConfig::named("s")), 64);
        prefill(&stm, &set, 100);
        assert_eq!(set.snapshot_keys().len(), 50);
    }

    #[test]
    fn partition_with_applies_config() {
        let stm = Stm::new();
        let mut cfg = DynConfig::from(&PartitionConfig::default());
        cfg.read_mode = ReadMode::Visible;
        cfg.granularity = Granularity::Stripe { shift: 7 };
        let p = partition_with(&stm, "x", cfg, true);
        assert_eq!(p.current_config(), cfg);
        assert!(p.is_tunable());
        assert_eq!(config_label(&cfg), "vis/s7");
    }
}
