//! The privatization workload: the end-to-end demonstration of the
//! safe-privatization bulk tier (`repro privatize`).
//!
//! Two phases:
//!
//! * **Load race** — the same `N`-account bank is initialized twice, once
//!   with one transaction per account (the streaming-load idiom every
//!   application starts from) and once through a [`PrivateGuard`] with
//!   [`Bank::bulk_load`]'s plain stores. The ratio is the headline
//!   `bulk_speedup` metric CI gates on: the bulk tier must beat the
//!   transactional loop by at least an order of magnitude, because it
//!   pays neither per-transaction bookkeeping nor per-write orec traffic.
//!
//! * **Mixed phase** — the bank serves concurrent transfer traffic, then
//!   mid-run the main thread privatizes the partition, "compacts" it (a
//!   full bulk scan + rewrite that levels every balance while preserving
//!   the total), republishes, and traffic resumes. Transactional attempts
//!   that land inside the hold abort-and-retry (counted as
//!   `privatized_collisions`); the conserved-sum check at the end proves
//!   the whole excursion was atomic from the traffic's point of view.
//!
//! [`PrivateGuard`]: partstm_core::PrivateGuard
//! [`Bank::bulk_load`]: partstm_structures::Bank::bulk_load

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use partstm_core::{PartitionConfig, PrivatizeError, StatCounters, Stm};
use partstm_structures::Bank;

/// Initial balance per account in the mixed phase (conserved-sum probe).
const INITIAL: i64 = 100;

/// Privatization experiment parameters.
#[derive(Debug, Clone)]
pub struct PrivatizeConfig {
    /// Accounts loaded in the load race.
    pub load_accounts: usize,
    /// Accounts served in the mixed phase.
    pub serve_accounts: usize,
    /// Traffic threads in the mixed phase.
    pub threads: usize,
    /// Mixed-phase length in seconds (half before the hold, half after).
    pub total_secs: f64,
}

impl PrivatizeConfig {
    /// The standard scenario at a given scale.
    pub fn standard(threads: usize, total_secs: f64) -> Self {
        PrivatizeConfig {
            load_accounts: 65_536,
            serve_accounts: 4096,
            threads: threads.max(2),
            total_secs: total_secs.max(0.5),
        }
    }
}

/// Measured outcome of one privatization run.
#[derive(Debug, Clone)]
pub struct PrivatizeReport {
    /// Seconds to initialize the bank with one transaction per account.
    pub txn_load_secs: f64,
    /// Seconds to initialize it under a guard (flag→quiesce→stores→republish).
    pub bulk_load_secs: f64,
    /// `txn_load_secs / bulk_load_secs` — the headline metric.
    pub bulk_speedup: f64,
    /// Transactional loads per second.
    pub txn_load_kops: f64,
    /// Guard-gated loads per second.
    pub bulk_load_kops: f64,
    /// Mixed-phase transfer throughput before the hold (Kops/s).
    pub serve_kops: f64,
    /// Mixed-phase transfer throughput after republish (Kops/s).
    pub recover_kops: f64,
    /// Microseconds the partition was held (privatize through republish).
    pub hold_us: f64,
    /// Partition counter deltas over the mixed phase.
    pub stats: StatCounters,
    /// Whether the conserved-sum invariant held at the end.
    pub conserved: bool,
}

/// Times `n` one-transaction-per-account initializations.
fn txn_load(n: usize) -> f64 {
    let stm = Stm::new();
    let bank = Bank::new(stm.new_partition(PartitionConfig::named("txnload")), n, 0);
    let ctx = stm.register_thread();
    let t0 = Instant::now();
    for i in 0..n {
        ctx.run(|tx| bank.set_balance(tx, i, (i as i64 + 1) * 3));
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        bank.total_direct(),
        (1..=n as i64).map(|i| i * 3).sum::<i64>(),
        "transactional load must land every balance"
    );
    secs
}

/// Times the same initialization through a `PrivateGuard`, *including* the
/// privatize and republish protocol overhead — the whole escape hatch, not
/// just the stores.
fn bulk_load(n: usize) -> f64 {
    let stm = Stm::new();
    let bank = Bank::new(stm.new_partition(PartitionConfig::named("bulkload")), n, 0);
    let t0 = Instant::now();
    let guard = stm.privatize(bank.partition()).expect("uncontended");
    bank.bulk_load(&guard, |i| (i as i64 + 1) * 3);
    guard.republish();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        bank.total_direct(),
        (1..=n as i64).map(|i| i * 3).sum::<i64>(),
        "bulk load must land every balance"
    );
    secs
}

/// Runs the scenario: the load race, then the mixed phase.
pub fn run_privatize(cfg: &PrivatizeConfig) -> PrivatizeReport {
    let txn_load_secs = txn_load(cfg.load_accounts);
    let bulk_load_secs = bulk_load(cfg.load_accounts);

    // Mixed phase: serve → privatize → compact → republish → recover.
    let stm = Stm::new();
    let bank = Bank::new(
        stm.new_partition(PartitionConfig::named("serve")),
        cfg.serve_accounts,
        INITIAL,
    );
    let part = std::sync::Arc::clone(bank.partition());
    let base = part.stats();

    let stop = AtomicBool::new(false);
    let republished = AtomicBool::new(false);
    let serve_ops = AtomicU64::new(0);
    let recover_ops = AtomicU64::new(0);
    let half = Duration::from_secs_f64(cfg.total_secs / 2.0);
    let mut hold_us = 0.0;
    let mut serve_secs = 0.0;
    let mut recover_secs = 0.0;

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (bank, stop, republished) = (&bank, &stop, &republished);
            let (serve_ops, recover_ops) = (&serve_ops, &recover_ops);
            let n = cfg.serve_accounts as u64;
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % n) as usize;
                    let to = ((r >> 8) % n) as usize;
                    ctx.run(|tx| bank.transfer(tx, from, to, (r % 50) as i64));
                    if republished.load(Ordering::Relaxed) {
                        recover_ops.fetch_add(1, Ordering::Relaxed);
                    } else {
                        serve_ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        let t_serve = Instant::now();
        std::thread::sleep(half);
        serve_secs = t_serve.elapsed().as_secs_f64();

        // Privatize against live traffic. A Contended outcome can only
        // come from a racing control-plane window, not from traffic, but
        // retry anyway so the scenario composes with a tuner.
        let t_hold = Instant::now();
        let guard = loop {
            match stm.privatize(&part) {
                Ok(g) => break g,
                Err(PrivatizeError::Contended) => std::thread::yield_now(),
                Err(e) => panic!("privatize failed: {e}"),
            }
        };
        // "Compact": level every balance while preserving the total —
        // a full read pass plus a full write pass at raw-memory speed.
        let mut total = 0i64;
        bank.bulk_for_each(&guard, |_, b| total += b);
        let n = cfg.serve_accounts as i64;
        let (each, rem) = (total / n, total % n);
        bank.bulk_load(&guard, |i| each + i64::from((i as i64) < rem));
        guard.republish();
        hold_us = t_hold.elapsed().as_secs_f64() * 1e6;
        republished.store(true, Ordering::Relaxed);

        let t_rec = Instant::now();
        std::thread::sleep(half);
        recover_secs = t_rec.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
    });

    let conserved = bank.total_direct() == cfg.serve_accounts as i64 * INITIAL;
    let stats = part.stats().delta(&base);

    PrivatizeReport {
        txn_load_secs,
        bulk_load_secs,
        bulk_speedup: txn_load_secs / bulk_load_secs,
        txn_load_kops: cfg.load_accounts as f64 / txn_load_secs / 1000.0,
        bulk_load_kops: cfg.load_accounts as f64 / bulk_load_secs / 1000.0,
        serve_kops: serve_ops.into_inner() as f64 / serve_secs / 1000.0,
        recover_kops: recover_ops.into_inner() as f64 / recover_secs / 1000.0,
        hold_us,
        stats,
        conserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature run: the conserved sum survives the
    /// serve→privatize→compact→republish→recover excursion, the guard
    /// protocol completed exactly once, and the bulk loader actually beat
    /// the transactional loop. (The full-scale speedup gate runs under
    /// `repro privatize`, not in unit tests.)
    #[test]
    fn mixed_phase_conserves_and_bulk_wins() {
        let cfg = PrivatizeConfig {
            load_accounts: 4096,
            serve_accounts: 256,
            threads: 2,
            total_secs: 0.6,
        };
        let rep = run_privatize(&cfg);
        assert!(rep.conserved, "sum must be conserved across the hold");
        assert!(rep.serve_kops > 0.0 && rep.recover_kops > 0.0);
        assert_eq!(rep.stats.privatizations, 1);
        assert_eq!(rep.stats.republishes, 1);
        assert_eq!(rep.stats.privatize_rollbacks, 0);
        assert!(
            rep.bulk_speedup > 1.0,
            "bulk load slower than transactional: {:.2}x",
            rep.bulk_speedup
        );
    }
}
