//! Machine-readable bench output.
//!
//! `repro --json` folds every measured scenario into one JSON document
//! (default `BENCH_repro.json`) so the performance trajectory of the
//! repository can be tracked across commits by tooling instead of by
//! eyeballing tables. The schema is deliberately flat: a list of
//! `{name, metrics{...}}` scenarios, metrics all numeric.

use std::io;
use std::path::Path;

use parking_lot::Mutex;
use partstm_analysis::json::Json;

/// Schema version stamped into the document (`schema_version` field).
/// 2.0 added the field itself (replacing the older `version`) and the
/// `telemetry` scenario with histogram p50/p99 metrics; comparison
/// tooling warns across versions instead of diffing blindly.
pub const BENCH_JSON_VERSION: f64 = 2.0;

/// One recorded scenario: a name plus numeric metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario id, e.g. `"f2/linked-list r=512 u=20%/inv-word/t4"`.
    pub name: String,
    /// Metric name → value (insertion order preserved).
    pub metrics: Vec<(String, f64)>,
}

/// Collects scenarios during a `repro` run; written once at exit.
#[derive(Debug, Default)]
pub struct BenchRecorder {
    scenarios: Mutex<Vec<Scenario>>,
}

impl BenchRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one scenario.
    pub fn record(&self, name: impl Into<String>, metrics: &[(&str, f64)]) {
        self.scenarios.lock().push(Scenario {
            name: name.into(),
            metrics: metrics.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        });
    }

    /// Number of scenarios recorded.
    pub fn len(&self) -> usize {
        self.scenarios.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.scenarios.lock().is_empty()
    }

    /// Renders the document.
    pub fn to_json(&self) -> String {
        let scenarios = self
            .scenarios
            .lock()
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::Str(s.name.clone())),
                    (
                        "metrics".to_owned(),
                        Json::Obj(
                            s.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_owned(), Json::Num(BENCH_JSON_VERSION)),
            ("scenarios".to_owned(), Json::Arr(scenarios)),
        ])
        .to_string_pretty()
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_roundtrips_through_the_json_codec() {
        let rec = BenchRecorder::new();
        assert!(rec.is_empty());
        rec.record("a/b t4", &[("kops", 12.5), ("abort_rate", 0.031)]);
        rec.record("c", &[("recovery", 0.4)]);
        assert_eq!(rec.len(), 2);
        let doc = Json::parse(&rec.to_json()).expect("valid json");
        let scenarios = doc.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].get("name").unwrap().as_str(), Some("a/b t4"));
        let metrics = scenarios[0].get("metrics").unwrap();
        assert_eq!(
            metrics.get("kops"),
            Some(&Json::Num(12.5)),
            "metric preserved"
        );
    }

    #[test]
    fn write_creates_the_file() {
        let rec = BenchRecorder::new();
        rec.record("x", &[("v", 1.0)]);
        let path = std::env::temp_dir().join("partstm_bench_json_test.json");
        rec.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\""));
        let _ = std::fs::remove_file(&path);
    }
}
