//! The phase-shift workload: the end-to-end demonstration of the dynamic
//! repartitioning loop.
//!
//! A bank of accounts lives in one partition; the traffic is a mix of
//! two-account transfers and read-only multi-account scans (balance
//! audits). For the first third of the run transfers pick accounts
//! uniformly — the single partition the static analysis would produce is
//! optimal. Then the workload *shifts*: most transfers start hammering a
//! small hot cluster, holding their encounter locks across a reschedule
//! (as a real computation between debit and credit would — and so the
//! shift bites even on a single core). The hot locks now live in the same
//! orec table as everything else, so scans and cold transfers keep
//! aliasing with them and abort: the dip is dominated by *false*
//! conflicts on cold data.
//!
//! With the [`RepartitionController`] running, the sampled profiler sees
//! the write load concentrate in a few buckets, the online analyzer
//! proposes a split, and the controller migrates the hot accounts into a
//! fresh partition with its own orec table — cold traffic stops aliasing
//! with hot locks and throughput recovers while the run is still going.
//! The report quantifies the recovery as the fraction of the lost
//! throughput won back: `(recovered - dip) / (baseline - dip)`.

//! ## The structure-backed variant
//!
//! [`run_struct_shift`] replays the same phase shift against *arena-backed
//! structures*: two transactional hash maps share one partition — a large
//! cold map the scans walk and a small map the post-shift transfers
//! hammer (hot-key skew). Flat-variable migration cannot help here; the
//! controller must execute an **arena-level split**: the
//! [`ArenaDirectory`] maps the hot buckets back to the over-represented
//! map, and the whole structure (arena home, every node, bucket roots)
//! migrates to a fresh partition under the repartition protocol.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::{Migratable, PVar, PartitionConfig, Stm};
use partstm_repart::{
    ArenaDirectory, ControllerConfig, RepartEvent, RepartitionController, StaticDirectory,
};
use partstm_structures::THashMap;

/// Initial balance per account (the conserved-sum probe).
const INITIAL: i64 = 100;

/// Phase-shift experiment parameters.
#[derive(Debug, Clone)]
pub struct PhaseShiftConfig {
    /// Total accounts (one `PVar` each).
    pub accounts: usize,
    /// Size of the hot cluster the workload shifts onto.
    pub hot: usize,
    /// Worker threads.
    pub threads: usize,
    /// Total run length in seconds.
    pub total_secs: f64,
    /// Measurement window in seconds.
    pub window_secs: f64,
    /// Fraction of the run before the phase shift.
    pub shift_frac: f64,
    /// Percent of post-shift transfers that hit the hot cluster.
    pub hot_pct: u64,
    /// Percent of all operations that are read-only scans.
    pub scan_pct: u64,
    /// Accounts read per scan.
    pub scan_len: usize,
    /// Orec count of the initial account partition. Deliberately modest:
    /// a memory-lean table sized for the *uniform* phase (where locks are
    /// held for nanoseconds and aliasing is harmless), which makes hot
    /// writers alias with scans and cold transfers after the shift —
    /// exactly the false sharing a split removes.
    pub orecs: usize,
    /// Run the repartition controller (false = static baseline).
    pub with_controller: bool,
}

impl PhaseShiftConfig {
    /// The standard scenario at a given scale.
    pub fn standard(threads: usize, total_secs: f64) -> Self {
        PhaseShiftConfig {
            accounts: 4096,
            hot: 16,
            threads: threads.max(2),
            total_secs: total_secs.max(2.0),
            window_secs: 0.25,
            shift_frac: 1.0 / 3.0,
            hot_pct: 90,
            scan_pct: 85,
            scan_len: 64,
            orecs: 256,
            with_controller: true,
        }
    }

    /// Same scenario without the controller (the dip baseline).
    pub fn without_controller(mut self) -> Self {
        self.with_controller = false;
        self
    }

    /// The standard *structure-backed* scenario ([`run_struct_shift`]):
    /// like [`PhaseShiftConfig::standard`] but with a heavier transfer
    /// share. The hash-map scans are ~6× more expensive per operation
    /// than flat-array scans, so at the flat scenario's 85% scan share
    /// the hot transfers are too rare a slice of wall time to strand
    /// locks often enough for the abort signal to clear the analyzer's
    /// split gate on one core.
    pub fn struct_standard(threads: usize, total_secs: f64) -> Self {
        PhaseShiftConfig {
            scan_pct: 70,
            ..Self::standard(threads, total_secs)
        }
    }
}

/// Measured outcome of one phase-shift run.
#[derive(Debug, Clone)]
pub struct PhaseShiftReport {
    /// Committed operations per window.
    pub window_ops: Vec<u64>,
    /// Index of the first post-shift window.
    pub shift_window: usize,
    /// Window in which the controller's first split landed (if any).
    pub split_window: Option<usize>,
    /// Mean pre-shift throughput (ops/s; first window skipped as warmup).
    pub baseline: f64,
    /// Worst post-shift window throughput (ops/s).
    pub dip: f64,
    /// Mean settled throughput after the split (or of the last four
    /// windows when no split landed), in ops/s.
    pub recovered: f64,
    /// Fraction of the lost throughput won back:
    /// `(recovered - dip) / (baseline - dip)`; 0 when nothing was lost.
    pub recovery: f64,
    /// Whole-run abort rate across all partitions.
    pub abort_rate: f64,
    /// Partitions alive at the end of the run.
    pub partitions: usize,
    /// Whether the conserved-sum invariant held at the end.
    pub conserved: bool,
    /// Controller event log (empty without the controller).
    pub events: Vec<RepartEvent>,
    /// Final per-partition cumulative counters (name, stats).
    pub partition_stats: Vec<(String, partstm_core::StatCounters)>,
}

/// The controller preset both phase-shift scenarios use.
fn recovery_controller_config() -> ControllerConfig {
    let mut ctrl_cfg = ControllerConfig::responsive();
    // Deliberately not instant: reacting ~1s after the shift leaves
    // several fully dipped windows in the series, so the run measures
    // its *own* loss before the split repairs it.
    ctrl_cfg.interval = Duration::from_millis(250);
    // 1-in-32 keeps profiling overhead out of the measurement while
    // still feeding hundreds of samples per window.
    ctrl_cfg.sample_period = 32;
    // A first split computed right after the shift still carries
    // decayed uniform-phase history and can leave hot residue behind;
    // a lower abort threshold and hot-share gate (the 4x-mean
    // concentration test still guards against diffuse splits) let a
    // cleanup split finish the job.
    ctrl_cfg.online.split_abort_rate = 0.05;
    ctrl_cfg.online.split_hot_share = 0.30;
    ctrl_cfg.decay = 0.4;
    ctrl_cfg
}

/// The windowed measurement loop both scenarios share: sleeps to each
/// window boundary, records the ops delta, and latches the window in
/// which the controller's first split landed.
fn measure_windows(
    cfg: &PhaseShiftConfig,
    start: Instant,
    ops: &AtomicU64,
    controller: &Option<RepartitionController>,
) -> (Vec<u64>, Option<usize>) {
    let windows = (cfg.total_secs / cfg.window_secs).round() as usize;
    let mut window_ops = Vec::with_capacity(windows);
    let mut split_window = None;
    let mut prev = 0u64;
    for w in 0..windows {
        let target = start + Duration::from_secs_f64((w + 1) as f64 * cfg.window_secs);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let cur = ops.load(Ordering::Relaxed);
        window_ops.push(cur - prev);
        prev = cur;
        if split_window.is_none() {
            if let Some(c) = controller {
                if c.has_split() {
                    split_window = Some(w);
                }
            }
        }
    }
    (window_ops, split_window)
}

/// Runs the scenario and measures the recovery.
pub fn run_phase_shift(cfg: &PhaseShiftConfig) -> PhaseShiftReport {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("accounts").orecs(cfg.orecs));
    let accounts: Vec<Arc<PVar<i64>>> = (0..cfg.accounts)
        .map(|_| Arc::new(part.tvar(INITIAL)))
        .collect();
    let dir = Arc::new(StaticDirectory::new());
    for a in &accounts {
        dir.register(Arc::clone(a) as Arc<dyn Migratable>);
    }
    let controller = cfg
        .with_controller
        .then(|| RepartitionController::spawn(&stm, dir, recovery_controller_config()));

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    let shift_at = Duration::from_secs_f64(cfg.total_secs * cfg.shift_frac);
    let (mut window_ops, mut split_window) = (Vec::new(), None);

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (accounts, stop, ops) = (&accounts, &stop, &ops);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    // Scans and cold transfers work the cold range only:
                    // they share *no data* with the hot cluster, so any
                    // conflict between them and hot traffic is metadata
                    // aliasing in the shared orec table — precisely the
                    // false sharing a partition split removes.
                    let cold = cfg.accounts - cfg.hot;
                    if (r >> 16) % 100 < cfg.scan_pct {
                        // Read-only audit: sum scan_len random cold accounts.
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0i64;
                            for _ in 0..cfg.scan_len {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let i = cfg.hot + (x >> 16) as usize % cold;
                                sum += tx.read(&accounts[i])?;
                            }
                            Ok(sum)
                        });
                    } else {
                        let shifted = start.elapsed() >= shift_at;
                        let hot = shifted && r % 100 < cfg.hot_pct;
                        let (from, to) = if hot {
                            (
                                (r % cfg.hot as u64) as usize,
                                ((r >> 8) % cfg.hot as u64) as usize,
                            )
                        } else {
                            (
                                cfg.hot + (r % cold as u64) as usize,
                                cfg.hot + ((r >> 8) % cold as u64) as usize,
                            )
                        };
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            if hot {
                                // Hold the encounter lock across a
                                // reschedule (stands in for real work
                                // between debit and credit).
                                std::thread::yield_now();
                            }
                            let t = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], t + amt)?;
                            Ok(())
                        });
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Measurement loop on the scope's own thread.
        (window_ops, split_window) = measure_windows(cfg, start, &ops, &controller);
        stop.store(true, Ordering::Relaxed);
    });

    let events = controller.map(|c| c.stop()).unwrap_or_default();
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    let conserved = total == cfg.accounts as i64 * INITIAL;
    build_report(cfg, &stm, window_ops, split_window, events, conserved)
}

/// Folds a measured window series into the report (baseline/dip/recovery
/// arithmetic shared by both scenarios).
fn build_report(
    cfg: &PhaseShiftConfig,
    stm: &Stm,
    window_ops: Vec<u64>,
    split_window: Option<usize>,
    events: Vec<RepartEvent>,
    conserved: bool,
) -> PhaseShiftReport {
    let windows = window_ops.len();
    let shift_window = ((cfg.shift_frac * windows as f64).ceil() as usize).min(windows - 1);
    let per_sec = 1.0 / cfg.window_secs;
    let pre = &window_ops[1.min(shift_window)..shift_window];
    let baseline = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<u64>() as f64 / pre.len() as f64 * per_sec
    };
    let post = &window_ops[shift_window..];
    let dip = post.iter().copied().min().unwrap_or(0) as f64 * per_sec;
    // Recovered steady state: every window after the split has settled
    // (split window + 2), or the last four windows when no split landed.
    // Averaging the whole settled region keeps scheduler noise on this
    // one-window scale out of the verdict.
    let settle = split_window
        .map(|w| (w + 2).saturating_sub(shift_window))
        .unwrap_or_else(|| post.len().saturating_sub(4))
        .min(post.len().saturating_sub(1));
    let tail = &post[settle..];
    let recovered = if tail.is_empty() {
        0.0
    } else {
        tail.iter().sum::<u64>() as f64 / tail.len() as f64 * per_sec
    };
    let lost = baseline - dip;
    let recovery = if lost > 0.0 {
        ((recovered - dip) / lost).max(0.0)
    } else {
        0.0
    };
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut partition_stats = Vec::new();
    for p in stm.partitions() {
        let s = p.stats();
        commits += s.commits;
        aborts += s.aborts();
        partition_stats.push((p.name().to_string(), s));
    }

    PhaseShiftReport {
        window_ops,
        shift_window,
        split_window,
        baseline,
        dip,
        recovered,
        recovery,
        abort_rate: aborts as f64 / (commits + aborts).max(1) as f64,
        partitions: stm.partitions().len(),
        conserved,
        events,
        partition_stats,
    }
}

/// The structure-backed phase shift: a large cold [`THashMap`] (scanned)
/// and a small hot one (hammered after the shift) share one partition.
/// Recovery requires an *arena-level* migration — the controller, fed by
/// an [`ArenaDirectory`], splits the whole hot structure (arena + roots)
/// into a fresh partition. See the module docs.
///
/// Interprets `cfg` as: `accounts` = total keys across both maps, `hot` =
/// keys of the hot map, with all other knobs as in [`run_phase_shift`].
pub fn run_struct_shift(cfg: &PhaseShiftConfig) -> PhaseShiftReport {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("mixed").orecs(cfg.orecs));
    let cold_keys = (cfg.accounts - cfg.hot) as u64;
    let hot = Arc::new(THashMap::new(Arc::clone(&part), cfg.hot));
    let cold = Arc::new(THashMap::new(Arc::clone(&part), (cold_keys as usize) / 4));
    {
        let ctx = stm.register_thread();
        for k in 0..cfg.hot as u64 {
            ctx.run(|tx| hot.put(tx, k, INITIAL as u64).map(|_| ()));
        }
        for k in 0..cold_keys {
            ctx.run(|tx| cold.put(tx, k, INITIAL as u64).map(|_| ()));
        }
    }
    let expect = (cfg.accounts as u64).wrapping_mul(INITIAL as u64);

    let dir = Arc::new(ArenaDirectory::new());
    hot.attach_directory(&*dir);
    cold.attach_directory(&*dir);
    let controller = cfg
        .with_controller
        .then(|| RepartitionController::spawn(&stm, dir, recovery_controller_config()));

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    let shift_at = Duration::from_secs_f64(cfg.total_secs * cfg.shift_frac);
    let (mut window_ops, mut split_window) = (Vec::new(), None);

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (hot, cold, stop, ops) = (&hot, &cold, &stop, &ops);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if (r >> 16) % 100 < cfg.scan_pct {
                        // Read-only audit over the cold map only: shares no
                        // data with the hot structure, so post-shift
                        // conflicts are pure orec aliasing.
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0u64;
                            for _ in 0..cfg.scan_len {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let k = (x >> 16) % cold_keys;
                                sum = sum.wrapping_add(cold.get(tx, k)?.unwrap_or(0));
                            }
                            Ok(sum)
                        });
                    } else {
                        let shifted = start.elapsed() >= shift_at;
                        let is_hot = shifted && r % 100 < cfg.hot_pct;
                        let amt = r % 90;
                        if is_hot {
                            let from = r % cfg.hot as u64;
                            let to = (r >> 8) % cfg.hot as u64;
                            ctx.run(|tx| {
                                let f = hot.get(tx, from)?.unwrap_or(0);
                                hot.put(tx, from, f.wrapping_sub(amt))?;
                                // Hold the encounter lock across a real
                                // reschedule (stands in for work between
                                // debit and credit): the sleeping holder
                                // strands its lock while the other threads
                                // run scans into it — false sharing in the
                                // shared orec table, exactly what the
                                // arena-level split removes. (A bare yield
                                // is a no-op here: the heavyweight
                                // hash-map scans dominate each thread's
                                // vruntime, so a yielding hot writer is
                                // rescheduled immediately and the window
                                // never opens.)
                                std::thread::sleep(Duration::from_micros(50));
                                let t = hot.get(tx, to)?.unwrap_or(0);
                                hot.put(tx, to, t.wrapping_add(amt))?;
                                Ok(())
                            });
                        } else {
                            let from = r % cold_keys;
                            let to = (r >> 8) % cold_keys;
                            ctx.run(|tx| {
                                let f = cold.get(tx, from)?.unwrap_or(0);
                                cold.put(tx, from, f.wrapping_sub(amt))?;
                                let t = cold.get(tx, to)?.unwrap_or(0);
                                cold.put(tx, to, t.wrapping_add(amt))?;
                                Ok(())
                            });
                        }
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Measurement loop on the scope's own thread.
        (window_ops, split_window) = measure_windows(cfg, start, &ops, &controller);
        stop.store(true, Ordering::Relaxed);
    });

    let events = controller.map(|c| c.stop()).unwrap_or_default();
    // Conserved-sum probe across both maps (transfers wrap in u64 space;
    // the sum is conserved modulo 2^64).
    let total = hot
        .snapshot_pairs()
        .into_iter()
        .chain(cold.snapshot_pairs())
        .fold(0u64, |acc, (_, v)| acc.wrapping_add(v));
    build_report(cfg, &stm, window_ops, split_window, events, total == expect)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run without the controller: the report plumbing works
    /// and the invariant holds. (The full recovery measurement runs under
    /// `repro repart`, not in unit tests.)
    #[test]
    fn phase_shift_baseline_reports_and_conserves() {
        let mut cfg = PhaseShiftConfig::standard(2, 2.0).without_controller();
        cfg.accounts = 256;
        let rep = run_phase_shift(&cfg);
        assert_eq!(rep.window_ops.len(), 8);
        assert!(rep.conserved, "sum must be conserved");
        assert!(rep.baseline > 0.0);
        assert_eq!(rep.partitions, 1, "no controller, no split");
        assert!(rep.events.is_empty());
        assert!(rep.split_window.is_none());
    }

    /// Miniature structure-backed run without the controller: plumbing +
    /// the cross-map conserved sum.
    #[test]
    fn struct_shift_baseline_reports_and_conserves() {
        let mut cfg = PhaseShiftConfig::standard(2, 2.0).without_controller();
        cfg.accounts = 256;
        let rep = run_struct_shift(&cfg);
        assert_eq!(rep.window_ops.len(), 8);
        assert!(rep.conserved, "sum must be conserved across both maps");
        assert!(rep.baseline > 0.0);
        assert_eq!(rep.partitions, 1, "no controller, no split");
        assert!(rep.events.is_empty());
    }
}
