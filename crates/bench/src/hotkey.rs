//! The hot-key (celebrity) workload: the end-to-end demonstration of
//! slot-subset tear and heal.
//!
//! One 64Ki-entry [`THashMap`] lives in a single partition; traffic is a
//! mix of uniform read-only scans and uniform two-key transfers. Mid-run
//! the key stream turns *skewed*: most transfers start hammering a
//! handful of celebrity keys, holding their encounter locks across a real
//! reschedule (so contention bites even on one core). The celebrity locks
//! live in the same orec table as the other 64Ki keys, so scans keep
//! aliasing with them and abort.
//!
//! Splitting the *whole map* out would not help — the map IS the
//! partition's working set. With the [`RepartitionController`] running,
//! the analyzer sees the write heat concentrated in a celebrity-narrow
//! bucket set and proposes a **tear**: the [`ArenaDirectory`]'s reverse
//! map names just the hot slots, and only that slot subset migrates into
//! a fresh partition with its own orec table. Scans stop aliasing and
//! throughput recovers while the skew is still live. In the final third
//! of the run the skew passes; the torn partition's load share collapses
//! and the controller **heals** the slots back into the origin, retiring
//! the torn partition.
//!
//! The report tracks tear latency (skew onset to the tear landing),
//! post-tear recovery (`(recovered - dip) / (baseline - dip)` inside the
//! skew phase), and whether the heal landed after the skew passed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::{PartitionConfig, Stm};
use partstm_repart::{ArenaDirectory, ControllerConfig, RepartEvent, RepartitionController};
use partstm_structures::THashMap;

/// Initial value per key (the conserved-sum probe).
const INITIAL: u64 = 100;

/// Hot-key experiment parameters.
#[derive(Debug, Clone)]
pub struct HotkeyConfig {
    /// Total keys in the map (one arena slot each).
    pub keys: usize,
    /// Celebrity keys the skew phase hammers.
    pub celebs: u64,
    /// Worker threads.
    pub threads: usize,
    /// Total run length in seconds. The middle third is the skew phase;
    /// the final third is calm again (the heal window).
    pub total_secs: f64,
    /// Measurement window in seconds.
    pub window_secs: f64,
    /// Percent of skew-phase transfers that hit the celebrity keys.
    pub hot_pct: u64,
    /// Percent of all operations that are read-only scans.
    pub scan_pct: u64,
    /// Keys read per scan.
    pub scan_len: usize,
    /// Orec count of the map's partition — modest, sized for the uniform
    /// phases, so celebrity writers alias with scans during the skew.
    pub orecs: usize,
    /// Run the repartition controller (false = static baseline).
    pub with_controller: bool,
}

impl HotkeyConfig {
    /// The standard scenario at a given scale.
    pub fn standard(threads: usize, total_secs: f64) -> Self {
        HotkeyConfig {
            keys: 64 * 1024,
            // Enough celebrities that skew-phase transfers mostly strand
            // locks against *other* traffic (false sharing the tear
            // removes) rather than serializing against each other (true
            // conflicts no repartitioning can fix).
            celebs: 6,
            threads: threads.max(2),
            total_secs: total_secs.max(3.0),
            window_secs: 0.25,
            hot_pct: 90,
            // Scan-dominated: the dip must come from scans aborting
            // against stranded celebrity locks, not from the celebrity
            // sleeps themselves eating the wall clock.
            scan_pct: 85,
            scan_len: 64,
            orecs: 256,
            with_controller: true,
        }
    }

    /// Same scenario without the controller (the dip baseline).
    pub fn without_controller(mut self) -> Self {
        self.with_controller = false;
        self
    }
}

/// Measured outcome of one hot-key run.
#[derive(Debug, Clone)]
pub struct HotkeyReport {
    /// Committed operations per window.
    pub window_ops: Vec<u64>,
    /// Index of the first skew-phase window.
    pub skew_window: usize,
    /// Index of the first post-skew (calm) window.
    pub calm_window: usize,
    /// Window in which the controller's first tear landed (if any).
    pub tear_window: Option<usize>,
    /// Window in which the heal landed (if any).
    pub heal_window: Option<usize>,
    /// Seconds from skew onset to the first tear landing.
    pub tear_latency_s: Option<f64>,
    /// Mean pre-skew throughput (ops/s; first window skipped as warmup).
    pub baseline: f64,
    /// Worst skew-phase window throughput (ops/s).
    pub dip: f64,
    /// Mean settled skew-phase throughput after the tear (or of the last
    /// skew windows when no tear landed), in ops/s.
    pub recovered: f64,
    /// Fraction of the lost throughput won back *while the skew was
    /// still live*: `(recovered - dip) / (baseline - dip)`.
    pub recovery: f64,
    /// Slots the first tear moved (across all collections).
    pub torn_moved: usize,
    /// Live slots of the torn collections at tear time — `torn_moved`
    /// being a small fraction of this is the whole point.
    pub torn_total_live: usize,
    /// Whole-run abort rate across all partitions.
    pub abort_rate: f64,
    /// Partitions alive at the end of the run.
    pub partitions: usize,
    /// Whether the conserved-sum invariant held at the end.
    pub conserved: bool,
    /// Controller event log (empty without the controller).
    pub events: Vec<RepartEvent>,
}

/// The controller preset the hot-key scenario uses: the phase-shift
/// recovery preset, slightly faster windows so tear latency and the heal
/// both fit inside a `--quick` run's thirds.
fn hotkey_controller_config() -> ControllerConfig {
    let mut cfg = ControllerConfig::responsive();
    cfg.interval = Duration::from_millis(150);
    cfg.sample_period = 16;
    // Scans hitting a stranded celebrity lock mostly *wait* (DelayThenAbort
    // CM) rather than abort, so the abort-rate signal is much weaker than
    // the throughput dip it accompanies; gate low, like the repart e2e
    // tests do.
    cfg.online.split_abort_rate = 0.02;
    cfg.online.split_hot_share = 0.30;
    // The torn subset is whole profiler buckets, so it carries ~1/256 of
    // the uniform write load per hot bucket; give the heal gate headroom
    // above that floor.
    cfg.online.heal_max_share = 0.15;
    cfg.decay = 0.4;
    cfg
}

/// Runs the scenario and measures tear latency, recovery and the heal.
pub fn run_hotkey(cfg: &HotkeyConfig) -> HotkeyReport {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("table").orecs(cfg.orecs));
    let map = Arc::new(THashMap::new(Arc::clone(&part), cfg.keys));
    // Bulk-load 64Ki entries at raw memory speed under a PrivateGuard —
    // transactional prefill would dominate a --quick run's wall time.
    {
        let guard = stm.privatize(&part).expect("uncontended at startup");
        for k in 0..cfg.keys as u64 {
            map.bulk_put(&guard, k, INITIAL);
        }
        guard.republish();
    }
    let dir = Arc::new(ArenaDirectory::new());
    map.attach_directory(&*dir);
    let controller = cfg
        .with_controller
        .then(|| RepartitionController::spawn(&stm, dir, hotkey_controller_config()));

    let keys = cfg.keys as u64;
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    let skew_at = Duration::from_secs_f64(cfg.total_secs / 3.0);
    let calm_at = Duration::from_secs_f64(cfg.total_secs * 2.0 / 3.0);
    let windows = (cfg.total_secs / cfg.window_secs).round() as usize;
    let mut window_ops = Vec::with_capacity(windows);
    let mut tear_window = None;
    let mut heal_window = None;
    let mut tear_latency_s = None;

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (map, stop, ops) = (&map, &stop, &ops);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let el = start.elapsed();
                    let in_skew = el >= skew_at && el < calm_at;
                    if (r >> 16) % 100 < cfg.scan_pct {
                        // Read-only audit over uniform keys: shares no
                        // data with the celebrities, so skew-phase
                        // conflicts are pure orec aliasing — what the
                        // tear removes without moving the map.
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0u64;
                            for _ in 0..cfg.scan_len {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                sum = sum.wrapping_add(map.get(tx, (x >> 16) % keys)?.unwrap_or(0));
                            }
                            Ok(sum)
                        });
                    } else if in_skew && r % 100 < cfg.hot_pct {
                        // Celebrity transfer holding its encounter lock
                        // across a reschedule (stands in for real work
                        // between debit and credit).
                        let from = r % cfg.celebs;
                        let to = (r >> 8) % cfg.celebs;
                        let amt = r % 50;
                        ctx.run(|tx| {
                            let f = map.get(tx, from)?.unwrap_or(0);
                            map.put(tx, from, f.wrapping_sub(amt))?;
                            std::thread::sleep(Duration::from_micros(50));
                            let v = map.get(tx, to)?.unwrap_or(0);
                            map.put(tx, to, v.wrapping_add(amt))?;
                            Ok(())
                        });
                    } else {
                        // Uniform transfer, no stranded lock.
                        let from = r % keys;
                        let to = (r >> 8) % keys;
                        let amt = r % 50;
                        ctx.run(|tx| {
                            let f = map.get(tx, from)?.unwrap_or(0);
                            map.put(tx, from, f.wrapping_sub(amt))?;
                            let v = map.get(tx, to)?.unwrap_or(0);
                            map.put(tx, to, v.wrapping_add(amt))?;
                            Ok(())
                        });
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Measurement loop on the scope's own thread.
        let mut prev = 0u64;
        for w in 0..windows {
            let target = start + Duration::from_secs_f64((w + 1) as f64 * cfg.window_secs);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let cur = ops.load(Ordering::Relaxed);
            window_ops.push(cur - prev);
            prev = cur;
            if let Some(c) = &controller {
                if tear_window.is_none() && c.has_tear() {
                    tear_window = Some(w);
                    tear_latency_s =
                        Some((start.elapsed().as_secs_f64() - skew_at.as_secs_f64()).max(0.0));
                }
                if heal_window.is_none() && c.has_heal() {
                    heal_window = Some(w);
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    let events = controller.map(|c| c.stop()).unwrap_or_default();
    // Conserved-sum probe (transfers wrap in u64 space; the sum is
    // conserved modulo 2^64).
    let total = map
        .snapshot_pairs()
        .into_iter()
        .fold(0u64, |acc, (_, v)| acc.wrapping_add(v));
    let conserved = total == keys.wrapping_mul(INITIAL);

    let skew_window = ((windows as f64 / 3.0).ceil() as usize).min(windows.saturating_sub(1));
    let calm_window = ((windows as f64 * 2.0 / 3.0).ceil() as usize).min(windows);
    let per_sec = 1.0 / cfg.window_secs;
    let pre = &window_ops[1.min(skew_window)..skew_window];
    let baseline = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<u64>() as f64 / pre.len() as f64 * per_sec
    };
    let skew = &window_ops[skew_window..calm_window];
    let dip = skew.iter().copied().min().unwrap_or(0) as f64 * per_sec;
    // Settled skew-phase tail: windows after the tear has landed and
    // settled (tear window + 2) up to the calm boundary — recovery is
    // only counted while the skew is still live. Without a tear, the
    // last two skew windows stand in.
    let settle = tear_window
        .map(|w| (w + 2).saturating_sub(skew_window))
        .unwrap_or_else(|| skew.len().saturating_sub(2))
        .min(skew.len().saturating_sub(1));
    let tail = &skew[settle..];
    let recovered = if tail.is_empty() {
        0.0
    } else {
        tail.iter().sum::<u64>() as f64 / tail.len() as f64 * per_sec
    };
    let lost = baseline - dip;
    let recovery = if lost > 0.0 {
        ((recovered - dip) / lost).max(0.0)
    } else {
        0.0
    };
    let (torn_moved, torn_total_live) = events
        .iter()
        .find_map(|e| match e {
            RepartEvent::Tear {
                moved, total_live, ..
            } => Some((*moved, *total_live)),
            _ => None,
        })
        .unwrap_or((0, 0));
    let mut commits = 0u64;
    let mut aborts = 0u64;
    for p in stm.partitions() {
        let s = p.stats();
        commits += s.commits;
        aborts += s.aborts();
    }

    HotkeyReport {
        window_ops,
        skew_window,
        calm_window,
        tear_window,
        heal_window,
        tear_latency_s,
        baseline,
        dip,
        recovered,
        recovery,
        torn_moved,
        torn_total_live,
        abort_rate: aborts as f64 / (commits + aborts).max(1) as f64,
        partitions: stm.partitions().len(),
        conserved,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run without the controller: the report plumbing works
    /// and the invariant holds. (The full tear/heal measurement runs
    /// under `repro hotkey`, not in unit tests.)
    #[test]
    fn hotkey_baseline_reports_and_conserves() {
        let mut cfg = HotkeyConfig::standard(2, 3.0).without_controller();
        cfg.keys = 1024;
        let rep = run_hotkey(&cfg);
        assert_eq!(rep.window_ops.len(), 12);
        assert!(rep.conserved, "sum must be conserved");
        assert!(rep.baseline > 0.0);
        assert_eq!(rep.partitions, 1, "no controller, no tear");
        assert!(rep.events.is_empty());
        assert!(rep.tear_window.is_none());
        assert!(rep.heal_window.is_none());
        assert!(rep.skew_window < rep.calm_window);
    }
}
