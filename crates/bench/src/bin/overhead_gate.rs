//! `overhead_gate` — CI gate for telemetry instrumentation overhead.
//!
//! Telemetry is compiled in unconditionally and toggled at runtime
//! ([`partstm_core::telemetry::set_enabled`]); the contract is that the
//! hot paths pay at most a relaxed load and a predictable branch when it
//! is off, and sampled recording when it is on. This binary measures the
//! two hot-path microbenchmarks the bench suite gates on —
//! `cached_view_64r` (64 `PVar` reads in one transaction) and
//! `validate_64r_1w` (64 reads + 1 write with a clock pump forcing a full
//! commit-time validation pass) — once with telemetry disabled and once
//! enabled, in the *same process* with the same binary, and fails
//! (exit 1) when the enabled run is slower by more than the threshold
//! (default 5%, `--threshold 0.05`).
//!
//! Minimum-of-trials is compared rather than the mean: the minimum is the
//! best estimate of the true cost of the loop (everything above it is
//! scheduler or allocator noise), and the instrumentation cost being
//! gated is deterministic per iteration.
//!
//! ```text
//! overhead_gate [--threshold F] [--iters N] [--trials N]
//! ```

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use partstm_core::telemetry;
use partstm_core::{PVar, PartitionConfig, Stm, ThreadCtx};

/// One timed trial: `iters` iterations of `f`, returning ns/op.
fn trial(iters: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum ns/op over `trials` runs of `iters` iterations.
fn min_of_trials(trials: u32, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        best = best.min(trial(iters, &mut f));
    }
    best
}

/// `cached_view_64r`: 64 reads of one partition in one transaction.
fn cached_view_64r(ctx: &ThreadCtx, vars: &[PVar<u64>]) {
    black_box(ctx.run(|tx| {
        let mut s = 0u64;
        for v in vars {
            s = s.wrapping_add(tx.read(v)?);
        }
        Ok(s)
    }));
}

/// Measures `cached_view_64r` at both telemetry states. Returns
/// (disabled ns/op, enabled ns/op).
fn measure_cached_view(trials: u32, iters: u64) -> (f64, f64) {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("gate-cached"));
    let vars: Vec<PVar<u64>> = (0..64u64).map(|v| p.tvar(v)).collect();
    let ctx = stm.register_thread();
    // Warm both states once so lazily-created telemetry globals and code
    // paths exist before anything is timed.
    telemetry::set_enabled(true);
    cached_view_64r(&ctx, &vars);
    telemetry::set_enabled(false);
    cached_view_64r(&ctx, &vars);
    let off = min_of_trials(trials, iters, || cached_view_64r(&ctx, &vars));
    telemetry::set_enabled(true);
    let on = min_of_trials(trials, iters, || cached_view_64r(&ctx, &vars));
    telemetry::set_enabled(false);
    (off, on)
}

/// Measures `validate_64r_1w` (64 reads + 1 write, clock pump on a second
/// thread forcing the full commit validation pass) at both telemetry
/// states. Returns (disabled ns/op, enabled ns/op).
fn measure_validate(trials: u32, iters: u64) -> (f64, f64) {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("gate-rw"));
    let vars: Vec<PVar<u64>> = (0..64u64).map(|v| p.tvar(v)).collect();
    let sink = p.tvar(0u64);
    let stop = AtomicBool::new(false);
    let mut result = (0.0, 0.0);
    std::thread::scope(|scope| {
        let pump_stm = stm.clone();
        let stop_ref = &stop;
        scope.spawn(move || {
            // Clock pump on its own partition: advances the global clock
            // without ever conflicting with the measured transaction, so
            // every measured commit walks all 64 read-set entries.
            let q = pump_stm.new_partition(PartitionConfig::named("gate-pump"));
            let t = q.tvar(0u64);
            let ctx = pump_stm.register_thread();
            while !stop_ref.load(Ordering::Relaxed) {
                ctx.run(|tx| tx.modify(&t, |v| v + 1).map(|_| ()));
                std::thread::yield_now();
            }
        });
        let ctx = stm.register_thread();
        let body = |ctx: &ThreadCtx| {
            black_box(ctx.run(|tx| {
                let mut s = 0u64;
                for v in &vars {
                    s = s.wrapping_add(tx.read(v)?);
                }
                tx.write(&sink, s)?;
                Ok(s)
            }));
        };
        telemetry::set_enabled(true);
        body(&ctx);
        telemetry::set_enabled(false);
        body(&ctx);
        let off = min_of_trials(trials, iters, || body(&ctx));
        telemetry::set_enabled(true);
        let on = min_of_trials(trials, iters, || body(&ctx));
        telemetry::set_enabled(false);
        stop.store(true, Ordering::Relaxed);
        result = (off, on);
    });
    result
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.05f64;
    let mut iters = 20_000u64;
    let mut trials = 7u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold = args[i + 1].parse().expect("--threshold takes a float");
                i += 2;
            }
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters takes an integer");
                i += 2;
            }
            "--trials" => {
                trials = args[i + 1].parse().expect("--trials takes an integer");
                i += 2;
            }
            other => panic!("unknown option {other}"),
        }
    }

    println!(
        "overhead_gate: telemetry on-vs-off, min of {trials} trials x {iters} iters, \
         threshold {:.0}%",
        threshold * 100.0
    );
    let mut failed = false;
    for (name, (off, on)) in [
        ("cached_view_64r", measure_cached_view(trials, iters)),
        ("validate_64r_1w", measure_validate(trials, iters)),
    ] {
        let overhead = on / off - 1.0;
        let verdict = if overhead > threshold {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<18} off {off:>8.1} ns/op | on {on:>8.1} ns/op | overhead {:>+6.2}%  {verdict}",
            overhead * 100.0
        );
    }
    if failed {
        println!(
            "telemetry instrumentation exceeds the {:.0}% hot-path budget",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
