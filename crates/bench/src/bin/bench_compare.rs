//! `bench_compare` — the regression gate behind CI's `bench-trend` job.
//!
//! Compares a freshly measured `BENCH_repro.json` against the committed
//! baseline and fails (exit 1) when a *gated* metric regressed:
//!
//! * higher-is-better metrics named `recovery`, `tail_kops` or
//!   `read_kops` may not drop by more than the threshold (default 30%,
//!   `--threshold 0.30`) relative to a positive baseline — generous on
//!   purpose, since CI runners are noisy and `--quick` runs are short;
//! * `ro_aborts` may not become non-zero when the baseline recorded
//!   zero: snapshot read-only transactions aborting at all is a
//!   correctness regression of the multi-version read path, not noise.
//!
//! * absolute floors (`--floor metric=value`, repeatable) fail any fresh
//!   scenario whose named metric falls below the value — the gate for
//!   metrics whose meaning is a ratio rather than a trend, like the
//!   privatization scenario's `bulk_speedup`.
//!
//! Everything else is reported for the diff artifact but never gates.
//! Scenarios present on only one side are listed as added/removed and do
//! not fail the run (new benchmarks must be able to land with their
//! first baseline). The same applies one level down: a metric present on
//! only one side — fresh code reporting a new metric the committed
//! baseline has never recorded, or a baseline metric the fresh run no
//! longer emits — is warned about and skipped, never failed, so a PR
//! that adds instrumentation does not have to regenerate the baseline in
//! the same commit.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--threshold F] [--floor M=V]..
//!               [--out FILE]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use partstm_analysis::json::Json;

/// Higher-is-better metrics gated against the relative-drop threshold.
const GATED: [&str; 3] = ["recovery", "tail_kops", "read_kops"];

/// One parsed document: schema version (None for pre-versioned files)
/// plus scenario name → (metric name, value) list.
struct Doc {
    schema_version: Option<f64>,
    scenarios: Vec<(String, Vec<(String, f64)>)>,
}

fn load(path: &str) -> Doc {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: reading {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("bench_compare: {path}: {e:?}"));
    // `schema_version` is current; `version` is the pre-2.0 spelling.
    let schema_version = doc
        .get("schema_version")
        .or_else(|| doc.get("version"))
        .and_then(|v| match v {
            Json::Num(n) => Some(*n),
            _ => None,
        });
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("bench_compare: {path}: no scenarios array"));
    let scenarios = scenarios
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .expect("scenario has a name")
                .to_owned();
            let metrics = match s.get("metrics") {
                Some(Json::Obj(members)) => members
                    .iter()
                    .filter_map(|(k, v)| match v {
                        Json::Num(n) => Some((k.clone(), *n)),
                        _ => None,
                    })
                    .collect(),
                _ => Vec::new(),
            };
            (name, metrics)
        })
        .collect();
    Doc {
        schema_version,
        scenarios,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.30f64;
    let mut floors: Vec<(String, f64)> = Vec::new();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold = args[i + 1].parse().expect("--threshold takes a float");
                i += 2;
            }
            "--floor" => {
                let (m, v) = args[i + 1]
                    .split_once('=')
                    .expect("--floor takes metric=value");
                floors.push((m.to_owned(), v.parse().expect("--floor value is a float")));
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                paths.push(other.to_owned());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_compare <baseline.json> <fresh.json> [--threshold F] \
             [--floor M=V].. [--out FILE]"
        );
        return ExitCode::from(2);
    }
    let base_doc = load(&paths[0]);
    let fresh_doc = load(&paths[1]);

    let mut report = String::new();
    let mut regressions = 0usize;
    // Version skew is a warning, not a failure: the per-metric one-sided
    // warn-and-skip logic below already keeps a schema change from gating,
    // but the diff should say *why* metrics are appearing/disappearing.
    if base_doc.schema_version != fresh_doc.schema_version {
        let _ = writeln!(
            report,
            "WARNING: schema_version mismatch: baseline {} vs fresh {} — \
             metrics unique to either side are skipped, not diffed\n",
            base_doc
                .schema_version
                .map_or("<none>".to_owned(), |v| v.to_string()),
            fresh_doc
                .schema_version
                .map_or("<none>".to_owned(), |v| v.to_string()),
        );
    }
    let base = &base_doc.scenarios;
    let fresh = &fresh_doc.scenarios;
    let _ = writeln!(
        report,
        "bench_compare: {} (baseline) vs {} (fresh), threshold {:.0}%\n",
        paths[0],
        paths[1],
        threshold * 100.0
    );
    let _ = writeln!(
        report,
        "{:<40} {:>16} {:>12} {:>12} {:>8}  verdict",
        "scenario/metric", "", "baseline", "fresh", "delta%"
    );

    for (name, base_metrics) in base {
        let Some((_, fresh_metrics)) = fresh.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(report, "{name:<40} REMOVED from fresh run");
            continue;
        };
        // Metrics the fresh run reports but the baseline never recorded:
        // warn and skip, never gate — a new counter must be able to land
        // without a same-commit baseline regeneration.
        for (metric, _) in fresh_metrics {
            if !base_metrics.iter().any(|(m, _)| m == metric) {
                let _ = writeln!(
                    report,
                    "{name:<40} {metric:>16} absent from baseline (warn, skipped)"
                );
            }
        }
        for (metric, b) in base_metrics {
            let Some((_, f)) = fresh_metrics.iter().find(|(m, _)| m == metric) else {
                let _ = writeln!(
                    report,
                    "{name:<40} {metric:>16} absent from fresh run (warn, skipped)"
                );
                continue;
            };
            let delta = if *b != 0.0 { (f - b) / b * 100.0 } else { 0.0 };
            let verdict = if GATED.contains(&metric.as_str()) && *b > 0.0 && (b - f) / b > threshold
            {
                regressions += 1;
                "REGRESSED"
            } else if metric == "ro_aborts" && *f > 0.0 && *b == 0.0 {
                regressions += 1;
                "REGRESSED (aborts appeared)"
            } else if GATED.contains(&metric.as_str()) || metric == "ro_aborts" {
                "ok"
            } else {
                ""
            };
            let _ = writeln!(
                report,
                "{:<40} {:>16} {:>12.3} {:>12.3} {:>7.1}%  {verdict}",
                name, metric, b, f, delta
            );
        }
    }
    for (name, _) in fresh {
        if !base.iter().any(|(n, _)| n == name) {
            let _ = writeln!(report, "{name:<40} ADDED (no baseline yet)");
        }
    }
    // Absolute floors gate the fresh run alone — no baseline needed.
    for (fm, floor) in &floors {
        let mut seen = false;
        for (name, fresh_metrics) in fresh {
            let Some((_, v)) = fresh_metrics.iter().find(|(m, _)| m == fm) else {
                continue;
            };
            seen = true;
            let verdict = if *v < *floor {
                regressions += 1;
                "REGRESSED (below floor)"
            } else {
                "ok"
            };
            let _ = writeln!(
                report,
                "{:<40} {:>16} {:>12} {:>12.3} floor {:.3}  {verdict}",
                name, fm, "", v, floor
            );
        }
        if !seen {
            let _ = writeln!(
                report,
                "--floor {fm}={floor}: metric absent from fresh run (warn, skipped)"
            );
        }
    }
    let _ = writeln!(
        report,
        "\n{} gated regression(s) beyond {:.0}%",
        regressions,
        threshold * 100.0
    );

    print!("{report}");
    if let Some(path) = out {
        std::fs::write(&path, &report)
            .unwrap_or_else(|e| panic!("bench_compare: writing {path}: {e}"));
        eprintln!("[bench_compare] wrote diff to {path}");
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
