//! `repro` — regenerates every figure and table of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>.. [--secs S] [--threads 1,2,4,...] [--quick] [--json [file]]
//!                      [--prom [file]]
//! experiments: f2 f3 f4 t1 t2 f5 f6 f7 f8 a1 a2 a3 repart hotkey orecs readpath
//!              privatize chaos report all
//! ```
//!
//! Several experiments may be named in one invocation (`repro repart
//! orecs --json`); their scenarios land in one JSON document.
//!
//! Each experiment prints the table/series the corresponding paper artifact
//! reports (see DESIGN.md §4 for the reconstruction rationale and
//! EXPERIMENTS.md for measured-vs-expected). `repart` runs the two
//! phase-shift workloads that exercise the online repartitioner end to end
//! — flat variables, then arena-backed structures whose recovery requires
//! an arena-level split — and `--json` writes per-scenario metrics to
//! `BENCH_repro.json` for cross-commit tracking.
//!
//! The whole binary runs with engine telemetry enabled
//! ([`partstm_core::telemetry`]): `--json` additionally emits a
//! `telemetry` scenario with p50/p99 per engine histogram, `--prom`
//! writes a Prometheus text-exposition snapshot at exit, and the
//! `report` experiment prints the flight-recorder timeline of a
//! controller phase-shift run, correlating control-plane actions against
//! per-window throughput.

use std::sync::Arc;
use std::time::Instant;

use partstm_bench::chaos::{run_chaos, ChaosConfig};
use partstm_bench::hetero::{self, HeteroApp, HeteroMode};
use partstm_bench::hotkey::{run_hotkey, HotkeyConfig, HotkeyReport};
use partstm_bench::json_out::BenchRecorder;
use partstm_bench::orec_pressure::{run_orec_pressure, OrecPressureConfig};
use partstm_bench::phase_shift::{
    run_phase_shift, run_struct_shift, PhaseShiftConfig, PhaseShiftReport,
};
use partstm_bench::privatize::{run_privatize, PrivatizeConfig};
use partstm_bench::readpath::{run_readpath, ReadpathConfig, ReadpathReport};
use partstm_bench::{
    config_label, drive, drive_timeseries, intset_op, kops, partition_with, prefill, snapshot_all,
    static_configs, thread_sweep,
};
use partstm_core::telemetry;
use partstm_core::{DynConfig, Granularity, PartitionConfig, ReadMode, ReaderArb, Stm};
use partstm_stamp::genome::{self, GenomeConfig, GenomeParts};
use partstm_stamp::intruder::{self, IntruderConfig, IntruderParts};
use partstm_stamp::kmeans::{self, KmeansConfig};
use partstm_stamp::vacation::{self, Manager, ManagerParts, VacationConfig, VacationStats};
use partstm_stamp::SplitMix64;
use partstm_structures::{IntSet, THashSet, TLinkedList, TRbTree, TSkipList};
use partstm_tuning::{ThresholdPolicy, Thresholds};

struct Opts {
    secs: f64,
    threads: Vec<usize>,
    /// Write machine-readable results here at exit (`--json [file]`).
    json: Option<String>,
    /// Write a Prometheus text-exposition snapshot here at exit
    /// (`--prom [file]`).
    prom: Option<String>,
    rec: BenchRecorder,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut secs = 0.5;
    let mut threads = thread_sweep(usize::MAX);
    let mut json = None;
    let mut prom = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--secs" => {
                secs = args[i + 1].parse().expect("--secs takes a float");
                i += 2;
            }
            "--threads" => {
                threads = args[i + 1]
                    .split(',')
                    .map(|t| t.parse().expect("--threads takes a list"))
                    .collect();
                i += 2;
            }
            "--quick" => {
                secs = 0.2;
                threads = vec![1, 2, 4];
                i += 1;
            }
            "--json" => {
                // Optional explicit path: `--json out.json`.
                if args.get(i + 1).is_some_and(|a| a.ends_with(".json")) {
                    json = Some(args[i + 1].clone());
                    i += 2;
                } else {
                    json = Some("BENCH_repro.json".to_string());
                    i += 1;
                }
            }
            "--prom" => {
                // Optional explicit path: `--prom out.prom`.
                if args.get(i + 1).is_some_and(|a| !a.starts_with("--")) {
                    prom = Some(args[i + 1].clone());
                    i += 2;
                } else {
                    prom = Some("telemetry.prom".to_string());
                    i += 1;
                }
            }
            other => panic!("unknown option {other}"),
        }
    }
    Opts {
        secs,
        threads,
        json,
        prom,
        rec: BenchRecorder::new(),
    }
}

/// A tuner with windows small enough for short harness runs.
fn harness_tuner() -> Arc<ThresholdPolicy> {
    Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
        window: 1024,
        min_commits: 128,
        ..Thresholds::default()
    }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Experiments are every leading non-flag argument, so one invocation
    // can record several into a single JSON document
    // (`repro repart orecs --json`).
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (cmds, flags) = args.split_at(split);
    if cmds.is_empty() {
        eprintln!(
            "usage: repro <f2|f3|f4|t1|t2|f5|f6|f7|f8|a1|a2|a3|repart|hotkey|orecs|readpath|\
             privatize|chaos|report|all>.. \
             [--secs S] [--threads ..] [--quick] [--json [file]] [--prom [file]]"
        );
        std::process::exit(2);
    }
    let opts = parse_opts(flags);
    // The harness is the consumer the observability layer exists for:
    // record everything (histograms, flight recorder, sampled lifecycle).
    telemetry::set_enabled(true);
    let t0 = Instant::now();
    for cmd in cmds {
        match cmd.as_str() {
            "f2" => f2(&opts),
            "f3" => f3(&opts),
            "f4" => f4(&opts),
            "t1" => t1(&opts),
            "t2" => t2(&opts),
            "f5" => f5(&opts),
            "f6" => f6(&opts),
            "f7" => f7(&opts),
            "f8" => f8(&opts),
            "a1" => a1(&opts),
            "a2" => a2(&opts),
            "a3" => a3(&opts),
            "repart" => repart(&opts),
            "hotkey" => hotkey(&opts),
            "orecs" => orecs(&opts),
            "readpath" => readpath(&opts),
            "privatize" => privatize(&opts),
            "chaos" => chaos(&opts),
            "report" => report(&opts),
            "all" => {
                f2(&opts);
                f3(&opts);
                f4(&opts);
                t1(&opts);
                t2(&opts);
                f5(&opts);
                f6(&opts);
                f7(&opts);
                f8(&opts);
                a1(&opts);
                a2(&opts);
                a3(&opts);
                repart(&opts);
                hotkey(&opts);
                orecs(&opts);
                readpath(&opts);
                privatize(&opts);
                chaos(&opts);
            }
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &opts.json {
        record_telemetry_scenario(&opts.rec);
        opts.rec
            .write(path)
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("[repro] wrote {} scenarios to {path}", opts.rec.len());
    }
    if let Some(path) = &opts.prom {
        let text = telemetry::prometheus_text(&telemetry::global().registry.snapshot());
        std::fs::write(path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("[repro] wrote Prometheus snapshot to {path}");
    }
    eprintln!("[repro] total wall time {:.1}s", t0.elapsed().as_secs_f64());
}

/// Folds the run's engine histograms into the JSON document as one
/// `telemetry` scenario: `<hist>_p50` / `<hist>_p99` / `<hist>_count` per
/// registered histogram (commit latency, quiesce duration, …), aggregated
/// over every experiment the invocation ran.
fn record_telemetry_scenario(rec: &BenchRecorder) {
    let snap = telemetry::global().registry.snapshot();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (name, h) in &snap.hists {
        metrics.push((format!("{name}_p50"), h.p50()));
        metrics.push((format!("{name}_p99"), h.p99()));
        metrics.push((format!("{name}_count"), h.count as f64));
    }
    let borrowed: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    rec.record("telemetry", &borrowed);
}

enum Structure {
    List,
    Skip,
    Tree,
}

fn make_set(
    structure: &Structure,
    part: Arc<partstm_core::Partition>,
    range: u64,
) -> Box<dyn IntSet> {
    match structure {
        Structure::List => Box::new(TLinkedList::with_capacity(part, range as usize)),
        Structure::Skip => Box::new(TSkipList::with_capacity(part, range as usize)),
        Structure::Tree => Box::new(TRbTree::with_capacity(part, range as usize)),
    }
}

// ---------------------------------------------------------------- F2

/// F2: no one-size-fits-all — throughput vs threads for each static config
/// on three intset workloads.
fn f2(opts: &Opts) {
    println!(
        "\n=== F2: intset microbenchmarks, throughput (Kops/s) vs threads per static config ==="
    );
    let workloads: [(&str, Structure, u64, u64); 3] = [
        ("linked-list r=512 u=20%", Structure::List, 512, 20),
        ("skip-list r=4096 u=20%", Structure::Skip, 4096, 20),
        ("rb-tree r=16384 u=50%", Structure::Tree, 16384, 50),
    ];
    let configs = static_configs();
    for (wname, structure, range, upd) in workloads {
        println!("\n-- {wname}");
        print!("{:>8}", "threads");
        for (label, _) in &configs {
            print!("{label:>12}");
        }
        println!();
        for &t in &opts.threads {
            print!("{t:>8}");
            for (_, cfg) in &configs {
                let stm = Stm::new();
                let part = partition_with(&stm, "set", *cfg, false);
                let set = make_set(&structure, Arc::clone(&part), range);
                prefill(&stm, set.as_ref(), range);
                let m = drive(&stm, t, opts.secs, &|ctx, _i, rng| {
                    intset_op(set.as_ref(), ctx, rng, range, upd);
                });
                let s = part.stats();
                opts.rec.record(
                    format!("f2/{wname}/{}/t{t}", config_label(cfg)),
                    &[
                        ("kops", m.ops_per_sec / 1000.0),
                        (
                            "abort_rate",
                            s.aborts() as f64 / (s.commits + s.aborts()).max(1) as f64,
                        ),
                    ],
                );
                print!("{:>12}", kops(m.ops_per_sec));
            }
            println!();
        }
    }
}

// ---------------------------------------------------------------- F3

/// F3: heterogeneous application — per-partition tuning vs global statics.
fn f3(opts: &Opts) {
    println!("\n=== F3: heterogeneous app (list 50%u + rb-tree 5%u + hash 20%u), Kops/s ===");
    let configs = static_configs();
    // Oracle probe: best static config per structure, measured standalone
    // at the largest thread count.
    let probe_threads = *opts.threads.last().unwrap_or(&4);
    let probe_secs = (opts.secs * 0.5).max(0.15);
    let mut best: [DynConfig; 3] = [configs[0].1; 3];
    for (si, (range, upd)) in [
        (hetero::LIST_RANGE, hetero::LIST_UPD),
        (hetero::TREE_RANGE, hetero::TREE_UPD),
        (hetero::HASH_RANGE, hetero::HASH_UPD),
    ]
    .iter()
    .enumerate()
    {
        let mut best_tput = 0.0;
        for (_, cfg) in &configs {
            let stm = Stm::new();
            let part = partition_with(&stm, "probe", *cfg, false);
            let set: Box<dyn IntSet> = match si {
                0 => Box::new(TLinkedList::with_capacity(part, *range as usize)),
                1 => Box::new(TRbTree::with_capacity(part, *range as usize)),
                _ => Box::new(THashSet::new(part, *range as usize / 4)),
            };
            prefill(&stm, set.as_ref(), *range);
            let m = drive(&stm, probe_threads, probe_secs, &|ctx, _i, rng| {
                intset_op(set.as_ref(), ctx, rng, *range, *upd);
            });
            if m.ops_per_sec > best_tput {
                best_tput = m.ops_per_sec;
                best[si] = *cfg;
            }
        }
    }
    println!(
        "oracle per-structure statics: list={} tree={} hash={}",
        config_label(&best[0]),
        config_label(&best[1]),
        config_label(&best[2])
    );

    type AppCtor = Box<dyn Fn(&Stm) -> HeteroApp>;
    let mut modes: Vec<(String, AppCtor)> = Vec::new();
    for (label, cfg) in &configs {
        let c = *cfg;
        modes.push((
            format!("global {label}"),
            Box::new(move |stm: &Stm| HeteroApp::new(stm, HeteroMode::Single(c))),
        ));
    }
    modes.push((
        "per-part static".to_string(),
        Box::new(move |stm: &Stm| HeteroApp::new(stm, HeteroMode::PerPartition(best))),
    ));
    modes.push((
        "per-part adaptive".to_string(),
        Box::new(|stm: &Stm| {
            stm.set_tuner(harness_tuner());
            HeteroApp::new(stm, HeteroMode::Adaptive)
        }),
    ));

    print!("{:>20}", "mode");
    for &t in &opts.threads {
        print!("{t:>10}");
    }
    println!();
    for (label, make) in &modes {
        print!("{label:>20}");
        for &t in &opts.threads {
            let stm = Stm::new();
            let app = make(&stm);
            app.prefill(&stm);
            let m = drive(&stm, t, opts.secs, &|ctx, _i, rng| app.op(ctx, rng));
            print!("{:>10}", kops(m.ops_per_sec));
        }
        println!();
    }
}

// ---------------------------------------------------------------- F4

/// F4: dynamic phases — adaptive tracks an update-rate flip.
fn f4(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&8)).min(8);
    let total = 6.0f64;
    let window = 0.2f64;
    let phase = 1.5f64; // seconds per phase
    println!(
        "\n=== F4: phase-changing rb-tree (r=2048, update 2% <-> 60% every {phase}s), {threads} threads, Kops per {window}s window ==="
    );
    let range = 2048u64;
    let run = |mode: &str| -> (Vec<u64>, u32) {
        let stm = Stm::new();
        let cfg = match mode {
            "inv/word" => Some(static_configs()[0].1),
            "vis/word" => Some(static_configs()[1].1),
            _ => None,
        };
        let part = match cfg {
            Some(c) => partition_with(&stm, "tree", c, false),
            None => {
                stm.set_tuner(harness_tuner());
                partition_with(
                    &stm,
                    "tree",
                    DynConfig::from(&PartitionConfig::default()),
                    true,
                )
            }
        };
        let tree = TRbTree::with_capacity(Arc::clone(&part), range as usize);
        prefill(&stm, &tree, range);
        let series = drive_timeseries(&stm, threads, total, window, &|ctx, _t, rng, el| {
            let p = (el.as_secs_f64() / phase) as u64;
            let upd = if p.is_multiple_of(2) { 2 } else { 60 };
            intset_op(&tree, ctx, rng, range, upd);
        });
        (series, part.generation())
    };
    let (inv, _) = run("inv/word");
    let (vis, _) = run("vis/word");
    let (ada, switches) = run("adaptive");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10}",
        "window", "t(s)", "inv/word", "vis/word", "adaptive"
    );
    for i in 0..inv.len().min(vis.len()).min(ada.len()) {
        let phase_mark = if (((i as f64 + 0.5) * window / phase) as u64).is_multiple_of(2) {
            "lo"
        } else {
            "HI"
        };
        println!(
            "{:>6}{:>2} {:>6.1} {:>10} {:>10} {:>10}",
            i,
            phase_mark,
            (i as f64 + 1.0) * window,
            kops(inv[i] as f64 / window),
            kops(vis[i] as f64 / window),
            kops(ada[i] as f64 / window),
        );
    }
    println!("adaptive config switches: {switches}");
}

// ---------------------------------------------------------------- T1

/// T1: partition census (static analysis) + per-partition runtime profile.
fn t1(opts: &Opts) {
    println!("\n=== T1: partition census (compile-time analysis) ===");
    for model in [
        hetero::partition_plan(),
        vacation::partition_plan(),
        kmeans_plan(),
        genome_plan(),
        intruder::partition_plan(),
    ] {
        let census = partstm_analysis::census(&model).expect("models are valid");
        println!("\n{}", census.to_table());
    }

    println!(
        "=== T1b: per-partition runtime profile (vacation-high, {} threads, {:.1}s) ===",
        opts.threads.last().unwrap_or(&4),
        opts.secs.max(1.0)
    );
    let stm = Stm::new();
    let manager = Manager::new(ManagerParts::partitioned(&stm, false));
    let cfg = VacationConfig::high(4096);
    let ctx = stm.register_thread();
    vacation::populate(&ctx, &manager, &cfg);
    drop(ctx);
    let base = snapshot_all(&stm);
    let threads = *opts.threads.last().unwrap_or(&4);
    drive(&stm, threads, opts.secs.max(1.0), &|ctx, t, rng| {
        let mut stats = VacationStats::default();
        let mut local = SplitMix64::new(rng.next() ^ t as u64);
        vacation::run_one_task(ctx, &manager, &cfg, &mut local, &mut stats);
    });
    println!(
        "{:>22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "partition", "commits", "share%", "upd-frac", "abort%", "reads/tx"
    );
    let reports = partstm_bench::partition_reports(&stm, &base);
    let total: u64 = reports.iter().map(|r| r.stats.commits).sum();
    for r in &reports {
        let s = &r.stats;
        let aborts = s.aborts();
        opts.rec.record(
            format!("t1b/vacation-high/{}", r.name),
            &[
                ("commits", s.commits as f64),
                (
                    "abort_rate",
                    aborts as f64 / (s.commits + aborts).max(1) as f64,
                ),
            ],
        );
        println!(
            "{:>22} {:>10} {:>10.1} {:>10.2} {:>10.1} {:>10.1}",
            r.name,
            s.commits,
            100.0 * s.commits as f64 / total.max(1) as f64,
            s.update_commits as f64 / s.commits.max(1) as f64,
            100.0 * aborts as f64 / (s.commits + aborts).max(1) as f64,
            s.reads as f64 / s.commits.max(1) as f64,
        );
    }
    manager
        .check_invariants()
        .expect("vacation invariants hold");
}

fn kmeans_plan() -> partstm_analysis::ProgramModel {
    use partstm_analysis::{AccessKind, ModelBuilder};
    let mut b = ModelBuilder::new("kmeans");
    let acc = b.alloc("cluster_accumulators", "ClusterAcc");
    b.access("accumulate_point", AccessKind::ReadWrite, &[acc]);
    b.build().unwrap()
}

fn genome_plan() -> partstm_analysis::ProgramModel {
    use partstm_analysis::{AccessKind, ModelBuilder};
    let mut b = ModelBuilder::new("genome");
    let segs = b.alloc("segment_set_nodes", "HashNode");
    let starts = b.alloc("prefix_map_nodes", "HashNode");
    let links = b.alloc("chain_nodes", "SegNode");
    b.access("dedup_insert", AccessKind::ReadWrite, &[segs]);
    b.access("starts_insert", AccessKind::ReadWrite, &[starts]);
    b.access("starts_consume", AccessKind::ReadWrite, &[starts]);
    b.access("link_claim", AccessKind::ReadWrite, &[links]);
    b.build().unwrap()
}

// ---------------------------------------------------------------- T2

/// T2: overhead of partition tracking and tuning.
fn t2(opts: &Opts) {
    println!("\n=== T2: partition-tracking and tuning overhead (hetero app, Kops/s) ===");
    let threads_hi = *opts.threads.last().unwrap_or(&4);
    let base_cfg = DynConfig::from(&PartitionConfig::default());
    let modes: [(&str, u8); 3] = [
        ("base (1 partition)", 0),
        ("partitioned (3)", 1),
        ("partitioned+tuning", 2),
    ];
    println!(
        "{:>22} {:>10} {:>10} {:>12} {:>12}",
        "mode", "1 thr", "n thr", "vs base(1)", "vs base(n)"
    );
    let mut base1 = 0.0;
    let mut basen = 0.0;
    for (label, mode) in modes {
        let run = |threads: usize| -> f64 {
            let stm = Stm::new();
            let app = match mode {
                0 => HeteroApp::new(&stm, HeteroMode::Single(base_cfg)),
                1 => HeteroApp::new(&stm, HeteroMode::PerPartition([base_cfg; 3])),
                _ => {
                    stm.set_tuner(harness_tuner());
                    HeteroApp::new(&stm, HeteroMode::Adaptive)
                }
            };
            app.prefill(&stm);
            drive(&stm, threads, opts.secs, &|ctx, _t, rng| app.op(ctx, rng)).ops_per_sec
        };
        let m1 = run(1);
        let mn = run(threads_hi);
        if mode == 0 {
            base1 = m1;
            basen = mn;
        }
        println!(
            "{:>22} {:>10} {:>10} {:>11.1}% {:>11.1}%",
            label,
            kops(m1),
            kops(mn),
            100.0 * m1 / base1,
            100.0 * mn / basen,
        );
    }
}

// ---------------------------------------------------------------- F5

/// F5: vacation — task throughput vs threads, base vs partitioned vs tuned.
fn f5(opts: &Opts) {
    for (variant, mk_cfg) in [
        ("low", VacationConfig::low as fn(u64) -> VacationConfig),
        ("high", VacationConfig::high as fn(u64) -> VacationConfig),
    ] {
        println!("\n=== F5: vacation-{variant} (tasks/s, r=4096) ===");
        let cfg = mk_cfg(4096);
        print!("{:>22}", "mode");
        for &t in &opts.threads {
            print!("{t:>10}");
        }
        println!();
        for mode in ["single", "partitioned", "part+tuned"] {
            print!("{mode:>22}");
            for &t in &opts.threads {
                let stm = Stm::new();
                let parts = match mode {
                    "single" => ManagerParts::single(&stm, false),
                    "partitioned" => ManagerParts::partitioned(&stm, false),
                    _ => {
                        stm.set_tuner(harness_tuner());
                        ManagerParts::partitioned(&stm, true)
                    }
                };
                let manager = Manager::new(parts);
                let ctx = stm.register_thread();
                vacation::populate(&ctx, &manager, &cfg);
                drop(ctx);
                let m = drive(&stm, t, opts.secs, &|ctx, tid, rng| {
                    let mut stats = VacationStats::default();
                    let mut local = SplitMix64::new(rng.next() ^ (tid as u64) << 32);
                    vacation::run_one_task(ctx, &manager, &cfg, &mut local, &mut stats);
                });
                manager
                    .check_invariants()
                    .expect("invariants hold after run");
                print!("{:>10}", kops(m.ops_per_sec));
            }
            println!();
        }
    }
}

// ---------------------------------------------------------------- F6

/// F6: kmeans — wall time / speedup vs threads, low and high contention.
fn f6(opts: &Opts) {
    for (variant, cfg) in [
        ("low (K=40)", KmeansConfig::low(20_000)),
        ("high (K=4)", KmeansConfig::high(20_000)),
    ] {
        println!(
            "\n=== F6: kmeans-{variant}, n={} d={} (seconds, speedup) ===",
            cfg.points, cfg.dims
        );
        let points = kmeans::generate_points(&cfg);
        println!(
            "{:>14} {:>10} {:>10} {:>10}",
            "mode", "threads", "time(s)", "speedup"
        );
        for mode in ["default", "tuned"] {
            let mut t1 = 0.0f64;
            for &t in &opts.threads {
                let stm = Stm::new();
                if mode == "tuned" {
                    stm.set_tuner(harness_tuner());
                }
                let state = kmeans::make_state(&stm, &cfg, mode == "tuned");
                let start = Instant::now();
                let res = kmeans::run_kmeans(&stm, &state, &cfg, &points, t);
                let dt = start.elapsed().as_secs_f64();
                if t == opts.threads[0] {
                    t1 = dt;
                }
                println!(
                    "{:>14} {:>10} {:>10.3} {:>10.2} (iters={})",
                    mode,
                    t,
                    dt,
                    t1 / dt,
                    res.iterations
                );
            }
        }
    }
}

// ---------------------------------------------------------------- F7

/// F7: genome — wall time vs threads, single vs partitioned vs tuned.
fn f7(opts: &Opts) {
    let cfg = GenomeConfig::scaled(16_384);
    println!(
        "\n=== F7: genome g={} s={} (seconds; phase split) ===",
        cfg.gene_length, cfg.segment_length
    );
    let gene = genome::generate_gene(&cfg);
    let segs = genome::shred(&cfg, &gene);
    println!("segments={} (coverage+extras)", segs.len());
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "mode", "threads", "time(s)", "speedup"
    );
    for mode in ["single", "partitioned", "part+tuned"] {
        let mut t1 = 0.0f64;
        for &t in &opts.threads {
            let stm = Stm::new();
            let parts = match mode {
                "single" => GenomeParts::single(&stm, false),
                "partitioned" => GenomeParts::partitioned(&stm, false),
                _ => {
                    stm.set_tuner(harness_tuner());
                    GenomeParts::partitioned(&stm, true)
                }
            };
            let start = Instant::now();
            let res = genome::run_genome(&stm, &parts, &cfg, &segs, t);
            let dt = start.elapsed().as_secs_f64();
            assert_eq!(res.gene, gene, "genome must reconstruct correctly");
            if t == opts.threads[0] {
                t1 = dt;
            }
            println!("{mode:>14} {t:>10} {dt:>10.3} {:>10.2}", t1 / dt);
        }
    }
}

// ---------------------------------------------------------------- F8

/// F8: intruder — pipeline wall time vs threads across partitioning modes.
fn f8(opts: &Opts) {
    let cfg = IntruderConfig::scaled(20_000);
    let (packets, attacks) = intruder::generate_stream(&cfg);
    println!(
        "\n=== F8: intruder flows={} packets={} attacks={} (seconds, speedup) ===",
        cfg.flows,
        packets.len(),
        attacks
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "mode", "threads", "time(s)", "speedup"
    );
    for mode in ["single", "partitioned", "part+tuned"] {
        let mut t1 = 0.0f64;
        for &t in &opts.threads {
            let stm = Stm::new();
            let parts = match mode {
                "single" => IntruderParts::single(&stm, false),
                "partitioned" => IntruderParts::partitioned(&stm, false),
                _ => {
                    stm.set_tuner(harness_tuner());
                    IntruderParts::partitioned(&stm, true)
                }
            };
            let pipeline = intruder::Intruder::new(&stm, parts, &packets);
            let start = Instant::now();
            let res = intruder::run_intruder(&stm, &pipeline, &packets, cfg.flows, t);
            let dt = start.elapsed().as_secs_f64();
            assert_eq!(res.attacks, attacks as u64, "all attacks detected");
            assert_eq!(res.flows, cfg.flows as u64);
            if t == opts.threads[0] {
                t1 = dt;
            }
            println!("{mode:>14} {t:>10} {dt:>10.3} {:>10.2}", t1 / dt);
        }
    }
}

// ---------------------------------------------------------------- A1

/// A1 (ablation): conflict-detection granularity sweep.
fn a1(opts: &Opts) {
    let threads = *opts.threads.last().unwrap_or(&4);
    println!("\n=== A1: granularity sweep (hash set r=1024 u=50%, {threads} threads, Kops/s) ===");
    let range = 1024u64;
    let base = DynConfig::from(&PartitionConfig::default());
    let mut grans: Vec<(String, Granularity)> = vec![("word".into(), Granularity::Word)];
    for shift in [4u8, 6, 8, 10, 12] {
        grans.push((format!("stripe 2^{shift}B"), Granularity::Stripe { shift }));
    }
    grans.push(("partition-lock".into(), Granularity::PartitionLock));
    println!("{:>16} {:>10} {:>10}", "granularity", "Kops/s", "abort%");
    for (label, g) in grans {
        let stm = Stm::new();
        let mut cfg = base;
        cfg.granularity = g;
        let part = partition_with(&stm, "hash", cfg, false);
        let set = THashSet::new(Arc::clone(&part), range as usize / 4);
        prefill(&stm, &set, range);
        let m = drive(&stm, threads, opts.secs, &|ctx, _t, rng| {
            intset_op(&set, ctx, rng, range, 50);
        });
        let s = part.stats();
        let ar = 100.0 * s.aborts() as f64 / (s.commits + s.aborts()).max(1) as f64;
        println!("{label:>16} {:>10} {ar:>10.2}", kops(m.ops_per_sec));
    }

    println!("\n-- orec table size sweep (word granularity)");
    println!("{:>16} {:>10} {:>10}", "orecs", "Kops/s", "abort%");
    for orecs in [64usize, 256, 1024, 4096, 16384] {
        let stm = Stm::new();
        let part = stm.new_partition(PartitionConfig::named("hash").orecs(orecs));
        let set = THashSet::new(Arc::clone(&part), range as usize / 4);
        prefill(&stm, &set, range);
        let m = drive(&stm, threads, opts.secs, &|ctx, _t, rng| {
            intset_op(&set, ctx, rng, range, 50);
        });
        let s = part.stats();
        let ar = 100.0 * s.aborts() as f64 / (s.commits + s.aborts()).max(1) as f64;
        println!("{orecs:>16} {:>10} {ar:>10.2}", kops(m.ops_per_sec));
    }
}

// ---------------------------------------------------------------- A2

/// A2 (ablation): hysteresis and window size vs oscillation.
fn a2(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&8)).min(8);
    println!("\n=== A2: tuner hysteresis ablation (F4 workload, {threads} threads) ===");
    let range = 2048u64;
    let total = 5.0f64;
    let phase = 1.25f64;
    println!("{:>12} {:>10} {:>10}", "hysteresis", "Kops/s", "switches");
    for hysteresis in [1u32, 2, 4, 8] {
        let stm = Stm::new();
        stm.set_tuner(Arc::new(ThresholdPolicy::with_thresholds(Thresholds {
            window: 1024,
            min_commits: 128,
            hysteresis,
            ..Thresholds::default()
        })));
        let part = partition_with(
            &stm,
            "tree",
            DynConfig::from(&PartitionConfig::default()),
            true,
        );
        let tree = TRbTree::with_capacity(Arc::clone(&part), range as usize);
        prefill(&stm, &tree, range);
        let series = drive_timeseries(&stm, threads, total, 0.25, &|ctx, _t, rng, el| {
            let p = (el.as_secs_f64() / phase) as u64;
            let upd = if p.is_multiple_of(2) { 2 } else { 60 };
            intset_op(&tree, ctx, rng, range, upd);
        });
        let tput = series.iter().sum::<u64>() as f64 / total;
        println!(
            "{hysteresis:>12} {:>10} {:>10}",
            kops(tput),
            part.generation()
        );
    }
    let _ = opts;
}

// ---------------------------------------------------------------- A3

/// A3 (ablation): reader/writer arbitration under visible reads.
fn a3(opts: &Opts) {
    println!("\n=== A3: visible-read arbitration (linked list r=512 u=50%, Kops/s) ===");
    let range = 512u64;
    print!("{:>18}", "arbitration");
    for &t in &opts.threads {
        print!("{t:>10}");
    }
    println!("   (kills, rlock-aborts at max threads)");
    for (label, arb) in [
        ("writer-wins-kill", ReaderArb::WriterWinsKill),
        ("reader-wins", ReaderArb::ReaderWins),
    ] {
        print!("{label:>18}");
        let mut last_stats = None;
        for &t in &opts.threads {
            let stm = Stm::new();
            let mut cfg = DynConfig::from(&PartitionConfig::default());
            cfg.read_mode = ReadMode::Visible;
            cfg.reader_arb = arb;
            let part = partition_with(&stm, "list", cfg, false);
            let list = TLinkedList::with_capacity(Arc::clone(&part), range as usize);
            prefill(&stm, &list, range);
            let m = drive(&stm, t, opts.secs, &|ctx, _i, rng| {
                intset_op(&list, ctx, rng, range, 50);
            });
            print!("{:>10}", kops(m.ops_per_sec));
            last_stats = Some(part.stats());
        }
        let s = last_stats.unwrap();
        println!("   ({}, {})", s.kills_issued, s.aborts_rlock);
    }
}

// ---------------------------------------------------------------- REPART

/// Phase-shift scenarios: uniform traffic flips to a hot cluster mid-run;
/// the online repartitioner must split the hot data out and win back the
/// lost throughput (acceptance: >= 20% of the loss recovered). Runs the
/// flat-variable scenario and the structure-backed one (two hash maps in
/// one partition; recovery requires an arena-level split).
fn repart(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    // Floor of 5s: the recovery tail needs a few clean windows after the
    // controller's split to measure, even in --quick mode.
    let total = (opts.secs * 12.0).clamp(5.0, 12.0);
    let with = PhaseShiftConfig::standard(threads, total);
    println!(
        "\n=== REPART: phase-shift bank ({} accounts, {}% scans; {}% of transfers hit \
         {} hot accounts after t={:.1}s), {threads} threads, {total:.1}s ===",
        with.accounts,
        with.scan_pct,
        with.hot_pct,
        with.hot,
        total * with.shift_frac
    );
    let without = with.clone().without_controller();
    let stat = run_phase_shift(&without);
    let ctrl = run_phase_shift(&with);
    report_repart(opts, &with, &stat, &ctrl, "repart");

    println!(
        "\n=== REPART-STRUCT: same shift against arena-backed hash maps \
         (cold map {} keys scanned, hot map {} keys hammered; recovery \
         needs an arena-level split) ===",
        with.accounts - with.hot,
        with.hot
    );
    let with_s = PhaseShiftConfig::struct_standard(threads, total);
    let stat_s = run_struct_shift(&with_s.clone().without_controller());
    let ctrl_s = run_struct_shift(&with_s);
    report_repart(opts, &with_s, &stat_s, &ctrl_s, "repart_struct");
}

// ---------------------------------------------------------------- HOTKEY

/// Hot-key (celebrity) scenario: a Zipf-like skew on a few keys of one
/// 64Ki-entry hash map mid-run. The whole map IS the working set, so a
/// whole-structure split cannot help; the controller must *tear* just the
/// hot slot subset into its own partition, and *heal* it back once the
/// skew passes. Tracks tear latency, post-tear recovery and the heal.
fn hotkey(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    // Floor of 6s: each third (uniform / skew / calm) needs enough
    // controller windows for the tear and then the heal to land, even in
    // --quick mode.
    let total = (opts.secs * 12.0).clamp(6.0, 12.0);
    let with = HotkeyConfig::standard(threads, total);
    println!(
        "\n=== HOTKEY: celebrity-key tear/heal ({} keys, {}% scans; {}% of skew-phase \
         transfers hit {} celebrity keys in t=[{:.1}s,{:.1}s)), {threads} threads, \
         {total:.1}s ===",
        with.keys,
        with.scan_pct,
        with.hot_pct,
        with.celebs,
        total / 3.0,
        total * 2.0 / 3.0,
    );
    let stat = run_hotkey(&with.clone().without_controller());
    let ctrl = run_hotkey(&with);

    println!(
        "{:>8} {:>6} {:>12} {:>12}   marker",
        "window", "t(s)", "static", "hotkey"
    );
    let window = with.window_secs;
    for i in 0..ctrl.window_ops.len().min(stat.window_ops.len()) {
        let mut marker = String::new();
        if i == ctrl.skew_window {
            marker.push_str("<< skew on");
        }
        if i == ctrl.calm_window {
            marker.push_str("<< skew off");
        }
        if ctrl.tear_window == Some(i) {
            marker.push_str(" << TEAR");
        }
        if ctrl.heal_window == Some(i) {
            marker.push_str(" << HEAL");
        }
        println!(
            "{i:>8} {:>6.2} {:>12} {:>12}   {marker}",
            (i as f64 + 1.0) * window,
            kops(stat.window_ops[i] as f64 / window),
            kops(ctrl.window_ops[i] as f64 / window),
        );
    }
    let line = |label: &str, r: &HotkeyReport| {
        println!(
            "{label:>10}: pre {} Kops/s | dip {} | tail {} | recovery {:>5.1}% | \
             abort {:>4.1}% | partitions {}",
            kops(r.baseline),
            kops(r.dip),
            kops(r.recovered),
            100.0 * r.recovery,
            100.0 * r.abort_rate,
            r.partitions
        );
    };
    line("static", &stat);
    line("hotkey", &ctrl);
    for e in &ctrl.events {
        println!("controller event: {e:?}");
    }
    match (ctrl.tear_window, ctrl.tear_latency_s) {
        (Some(w), Some(lat)) => println!(
            "controller tore {} of {} slots at window {w} ({lat:.2}s after skew onset); \
             heal: {}; recovery criterion (>=10%): {}",
            ctrl.torn_moved,
            ctrl.torn_total_live,
            match ctrl.heal_window {
                Some(h) => format!("window {h}"),
                None => "never".to_string(),
            },
            if ctrl.recovery >= 0.10 {
                "MET"
            } else {
                "missed"
            }
        ),
        _ => println!("controller never tore"),
    }
    assert!(stat.conserved && ctrl.conserved, "conserved-sum violated");

    opts.rec.record(
        "hotkey/static",
        &[
            ("baseline_kops", stat.baseline / 1000.0),
            ("dip_kops", stat.dip / 1000.0),
            ("tail_kops", stat.recovered / 1000.0),
            ("recovery", stat.recovery),
            ("abort_rate", stat.abort_rate),
            ("partitions", stat.partitions as f64),
        ],
    );
    opts.rec.record(
        "hotkey/controller",
        &[
            ("baseline_kops", ctrl.baseline / 1000.0),
            ("dip_kops", ctrl.dip / 1000.0),
            ("tail_kops", ctrl.recovered / 1000.0),
            // The bench-trend floor: percent of the skew-phase loss won
            // back after the tear.
            ("hotkey_recovery_pct", 100.0 * ctrl.recovery),
            (
                "tear_window",
                ctrl.tear_window.map(|w| w as f64).unwrap_or(-1.0),
            ),
            (
                "heal_window",
                ctrl.heal_window.map(|w| w as f64).unwrap_or(-1.0),
            ),
            ("tear_latency_s", ctrl.tear_latency_s.unwrap_or(-1.0)),
            ("torn_moved", ctrl.torn_moved as f64),
            ("torn_total_live", ctrl.torn_total_live as f64),
            ("abort_rate", ctrl.abort_rate),
            ("partitions", ctrl.partitions as f64),
            ("conserved", if ctrl.conserved { 1.0 } else { 0.0 }),
        ],
    );
}

// ---------------------------------------------------------------- REPORT

/// Flight-recorder timeline: runs the controller phase-shift workload once
/// and renders the control-plane events the engine recorded (quiesce
/// windows, controller proposals with scores and streaks, executed
/// actions with outcomes) against the per-window throughput, followed by
/// the sampled transaction-lifecycle summary. The human-readable answer
/// to "what did the controller do, when, and why".
fn report(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    let total = (opts.secs * 12.0).clamp(5.0, 10.0);
    let cfg = PhaseShiftConfig::standard(threads, total);
    println!(
        "\n=== REPORT: flight-recorder timeline of a controller phase-shift run \
         ({threads} threads, {total:.1}s) ==="
    );
    let t_run0 = telemetry::now_micros();
    let ctrl = run_phase_shift(&cfg);

    let window = cfg.window_secs;
    println!("\nper-window throughput:");
    println!("{:>8} {:>6} {:>12}   marker", "window", "t(s)", "Kops/s");
    for (i, ops) in ctrl.window_ops.iter().enumerate() {
        let mut marker = String::new();
        if i == ctrl.shift_window {
            marker.push_str("<< phase shift");
        }
        if ctrl.split_window == Some(i) {
            marker.push_str(" << SPLIT");
        }
        println!(
            "{i:>8} {:>6.2} {:>12}   {marker}",
            (i as f64 + 1.0) * window,
            kops(*ops as f64 / window),
        );
    }

    let events = telemetry::global().recorder.snapshot();
    println!("\ncontrol-plane timeline (+t from run start, w = throughput window above):");
    let mut shown = 0usize;
    for e in events.iter().filter(|e| e.kind.is_control_plane()) {
        // Events recorded by an earlier experiment in the same invocation
        // belong to that experiment's run, not this timeline.
        if e.micros < t_run0 {
            continue;
        }
        let dt = (e.micros - t_run0) as f64 / 1e6;
        let w = (dt / window) as usize;
        println!("  +{dt:>8.3}s  w{w:<3} {}", telemetry::render_event(e));
        shown += 1;
    }
    if shown == 0 {
        println!("  (no control-plane events recorded)");
    }

    let (mut begins, mut validates, mut commits, mut aborts) = (0u64, 0u64, 0u64, 0u64);
    for e in &events {
        match e.kind {
            telemetry::EventKind::TxBegin => begins += 1,
            telemetry::EventKind::TxValidate => validates += 1,
            telemetry::EventKind::TxCommit => commits += 1,
            telemetry::EventKind::TxAbort => aborts += 1,
            _ => {}
        }
    }
    println!(
        "\nsampled tx lifecycle events still in the ring: {begins} begin, \
         {validates} validate, {commits} commit, {aborts} abort \
         (1-in-{} sampled; per-lane rings keep only the newest events)",
        telemetry::tx_sample_period(),
    );
    let snap = telemetry::global().registry.snapshot();
    if let Some(h) = snap.hist("commit_latency_ns") {
        println!(
            "commit latency: p50 {:.0}ns p99 {:.0}ns over {} sampled commits",
            h.p50(),
            h.p99(),
            h.count
        );
    }
    if let Some(h) = snap.hist("quiesce_us") {
        println!(
            "quiesce windows: p50 {:.0}us p99 {:.0}us over {} windows",
            h.p50(),
            h.p99(),
            h.count
        );
    }

    opts.rec.record(
        "report",
        &[
            ("control_events", shown as f64),
            ("recovery", ctrl.recovery),
            ("tail_kops", ctrl.recovered / 1000.0),
        ],
    );
}

// ---------------------------------------------------------------- ORECS

/// Orec-pressure scenario: a large uniform footprint guarded by a tiny
/// orec table aborts mostly on *aliased* (false) conflicts; the controller
/// must execute at least one live in-place table resize and win back
/// throughput vs the static baseline — without migrating any data.
fn orecs(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    // Floor of 5s: the settled tail after the (possibly repeated) resizes
    // needs a few clean windows to measure, even in --quick mode.
    let total = (opts.secs * 12.0).clamp(5.0, 12.0);
    let with = OrecPressureConfig::standard(threads, total);
    println!(
        "\n=== ORECS: aliasing pressure ({} accounts on a {}-orec table, \
         {}% scans of {}), {threads} threads, {total:.1}s ===",
        with.accounts, with.orecs, with.scan_pct, with.scan_len
    );
    let stat = run_orec_pressure(&with.clone().without_controller());
    let ctrl = run_orec_pressure(&with);

    println!(
        "{:>8} {:>6} {:>12} {:>12}   marker",
        "window", "t(s)", "static", "resize"
    );
    let window = with.window_secs;
    for i in 0..ctrl.window_ops.len().min(stat.window_ops.len()) {
        let marker = if ctrl.resize_window == Some(i) {
            "<< RESIZE"
        } else {
            ""
        };
        println!(
            "{i:>8} {:>6.2} {:>12} {:>12}   {marker}",
            (i as f64 + 1.0) * window,
            kops(stat.window_ops[i] as f64 / window),
            kops(ctrl.window_ops[i] as f64 / window),
        );
    }
    println!(
        "{:>10}: mean {} Kops/s | abort {:>4.1}% | aliased {:>4.1}% | orecs {} (static)",
        "static",
        kops(stat.tail),
        100.0 * stat.abort_rate,
        100.0 * stat.aliased_share,
        stat.orecs_final,
    );
    println!(
        "{:>10}: pre {} Kops/s | tail {} | abort {:>4.1}% | aliased {:>4.1}% | \
         orecs {} -> {} ({} resizes)",
        "resize",
        kops(ctrl.pre),
        kops(ctrl.tail),
        100.0 * ctrl.abort_rate,
        100.0 * ctrl.aliased_share,
        ctrl.orecs_before,
        ctrl.orecs_final,
        ctrl.resizes,
    );
    for e in &ctrl.events {
        println!("controller event: {e:?}");
    }
    let gain_vs_static = ctrl.tail / stat.tail.max(1.0);
    match ctrl.resize_window {
        Some(w) => println!(
            "controller resized at window {w}; settled tail {:.2}x the \
             static baseline (criterion >= 1.10): {}",
            gain_vs_static,
            if gain_vs_static >= 1.10 {
                "MET"
            } else {
                "missed"
            }
        ),
        None => println!("controller never resized"),
    }
    assert!(stat.conserved && ctrl.conserved, "conserved-sum violated");

    for (name, r) in [("orecs/static", &stat), ("orecs/controller", &ctrl)] {
        opts.rec.record(
            name,
            &[
                ("pre_kops", r.pre / 1000.0),
                ("tail_kops", r.tail / 1000.0),
                ("abort_rate", r.abort_rate),
                ("aliased_share", r.aliased_share),
                ("orecs_before", r.orecs_before as f64),
                ("orecs_final", r.orecs_final as f64),
                ("resizes", r.resizes as f64),
                (
                    "resize_window",
                    r.resize_window.map(|w| w as f64).unwrap_or(-1.0),
                ),
                ("gain_vs_static", r.tail / stat.tail.max(1.0)),
            ],
        );
    }
}

// ---------------------------------------------------------------- READPATH

/// Read-path scenario: a 95/5 read-dominated bank on a commit-time
/// partition, run once through the multi-version snapshot tier and once
/// through the regular validating tier with identical traffic. The
/// snapshot side must report **zero** read-transaction aborts
/// (acceptance criterion), and both sides report read-txn throughput
/// and tail latency separately from the writer side.
fn readpath(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    let total = (opts.secs * 8.0).clamp(2.0, 6.0);
    let cfg = ReadpathConfig::standard(threads, total);
    println!(
        "\n=== READPATH: 95/5 read-dominated bank ({} accounts, scans of {}, \
         ring depth {}), {threads} threads, {total:.1}s per mode ===",
        cfg.accounts, cfg.scan_len, cfg.ring_depth
    );
    let snap = run_readpath(&cfg);
    let val = run_readpath(&cfg.clone().validating());

    println!(
        "{:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "mode", "read K/s", "write K/s", "p50(us)", "p99(us)", "aborts", "restarts", "hist%"
    );
    let line = |label: &str, r: &ReadpathReport| {
        println!(
            "{label:>12} {:>10.1} {:>10.1} {:>9.1} {:>9.1} {:>9} {:>9} {:>7.2}",
            r.read_kops,
            r.write_kops,
            r.read_p50_us,
            r.read_p99_us,
            r.ro_aborts,
            r.ro_restarts,
            100.0 * r.hist_share,
        );
    };
    line("snapshot", &snap);
    line("validating", &val);
    println!(
        "snapshot: {} history reads, {} ring-overflow pushes; \
         zero-abort criterion: {}",
        snap.hist_reads,
        snap.overflow_pushes,
        if snap.ro_aborts == 0 { "MET" } else { "MISSED" }
    );
    assert!(snap.conserved && val.conserved, "conserved-sum violated");
    assert_eq!(
        snap.ro_aborts, 0,
        "snapshot read-only transactions must never abort"
    );

    for (name, r) in [("readpath/snapshot", &snap), ("readpath/validating", &val)] {
        opts.rec.record(
            name,
            &[
                ("read_kops", r.read_kops),
                ("write_kops", r.write_kops),
                ("read_p50_us", r.read_p50_us),
                ("read_p99_us", r.read_p99_us),
                ("ro_aborts", r.ro_aborts as f64),
                ("ro_restarts", r.ro_restarts as f64),
                ("hist_share", r.hist_share),
                ("overflow_pushes", r.overflow_pushes as f64),
            ],
        );
    }
}

// ---------------------------------------------------------------- PRIVATIZE

/// PRIVATIZE: the bulk-operation escape hatch — load race (transactional
/// vs guard-gated initialization of the same bank) and the mixed phase
/// (serve → privatize → compact → republish → recover under traffic).
fn privatize(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    let total = (opts.secs * 4.0).clamp(1.0, 4.0);
    let cfg = PrivatizeConfig::standard(threads, total);
    println!(
        "\n=== PRIVATIZE: bulk escape hatch ({} load accounts; mixed phase \
         {} accounts, {threads} threads, {total:.1}s) ===",
        cfg.load_accounts, cfg.serve_accounts
    );
    let r = run_privatize(&cfg);
    println!("{:>14} {:>12} {:>12}", "load mode", "secs", "accounts K/s");
    println!(
        "{:>14} {:>12.4} {:>12.1}",
        "transactional", r.txn_load_secs, r.txn_load_kops
    );
    println!(
        "{:>14} {:>12.4} {:>12.1}",
        "bulk (guard)", r.bulk_load_secs, r.bulk_load_kops
    );
    println!(
        "bulk speedup: {:.1}x; speedup criterion (>=10x): {}",
        r.bulk_speedup,
        if r.bulk_speedup >= 10.0 {
            "MET"
        } else {
            "MISSED"
        }
    );
    let s = &r.stats;
    println!(
        "mixed phase: serve {:.1} Kops/s | hold {:.0}us | recover {:.1} Kops/s | \
         collisions {} | conserved: {}",
        r.serve_kops,
        r.hold_us,
        r.recover_kops,
        s.privatized_collisions,
        if r.conserved { "yes" } else { "NO" }
    );
    assert!(r.conserved, "conserved-sum violated across the hold");

    // The privatization counters land next to the abort classification so
    // cross-commit tooling can correlate collision aborts with holds.
    opts.rec.record(
        "privatize/bulk",
        &[
            ("bulk_speedup", r.bulk_speedup),
            ("txn_load_kops", r.txn_load_kops),
            ("bulk_load_kops", r.bulk_load_kops),
            ("serve_kops", r.serve_kops),
            ("recover_kops", r.recover_kops),
            ("hold_us", r.hold_us),
            ("privatizations", s.privatizations as f64),
            ("privatize_rollbacks", s.privatize_rollbacks as f64),
            ("republishes", s.republishes as f64),
            ("privatized_collisions", s.privatized_collisions as f64),
            ("aborts_switching", s.aborts_switching as f64),
            ("aborts_wlock", s.aborts_wlock as f64),
            ("aborts_validation", s.aborts_validation as f64),
        ],
    );
}

// ---------------------------------------------------------------- CHAOS

/// CHAOS: stuck-transaction remediation under deterministic fault
/// injection — quiesce success with only the hard deadline vs with the
/// kill-based rescue armed, then the controller's circuit breaker under
/// injected control-action failures. See [`partstm_bench::chaos`].
fn chaos(opts: &Opts) {
    let threads = (*opts.threads.last().unwrap_or(&4)).clamp(2, 8);
    let cfg = ChaosConfig::standard(threads, opts.secs);
    println!(
        "\n=== CHAOS: seeded fault injection ({} control actions per phase; stalls of \
         {:?} at {}‰ vs a {:?} hard / {:?} soft deadline), {threads} threads ===",
        cfg.actions, cfg.stall, cfg.stall_permille, cfg.quiesce_timeout, cfg.kill_after
    );
    let t_run0 = telemetry::now_micros();
    let r = run_chaos(&cfg);
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "phase", "actions", "success%", "mean(ms)", "max(ms)", "kills", "stuck"
    );
    let line = |label: &str, p: &partstm_bench::chaos::QuiescePhase, pct: f64| {
        println!(
            "{label:>14} {:>10} {pct:>9.1}% {:>10.1} {:>10.1} {:>8} {:>8}",
            p.attempts, p.mean_ms, p.max_ms, p.killed, p.stuck_slots
        );
    };
    line("deadline-only", &r.deadline, r.deadline_success_pct());
    line("kill-rescue", &r.rescue, r.rescue_success_pct());
    println!(
        "breaker: {} failed action(s) -> {} open(s), {} close(s); split after faults \
         cleared: {}",
        r.breaker.failed_actions,
        r.breaker.opens,
        r.breaker.closes,
        if r.breaker.split_after_clear {
            "yes"
        } else {
            "NO"
        }
    );
    for e in &r.breaker.events {
        println!("controller event: {e:?}");
    }
    // The remediation slice of the flight-recorder timeline: every
    // stuck-slot diagnosis, kill rescue and breaker transition this run
    // recorded (the newest still in the ring), in order.
    println!("remediation timeline (+t from chaos start):");
    let mut shown = 0usize;
    for e in telemetry::global().recorder.snapshot().iter().filter(|e| {
        e.micros >= t_run0
            && matches!(
                e.kind,
                telemetry::EventKind::StuckSlot
                    | telemetry::EventKind::KillRescue
                    | telemetry::EventKind::CtrlBreaker
            )
    }) {
        let dt = (e.micros - t_run0) as f64 / 1e6;
        println!("  +{dt:>8.3}s  {}", telemetry::render_event(e));
        shown += 1;
    }
    if shown == 0 {
        println!("  (no remediation events recorded)");
    }
    println!(
        "rescue criterion (>=95% quiesce success): {}",
        if r.rescue_success_pct() >= 95.0 {
            "MET"
        } else {
            "MISSED"
        }
    );
    assert!(
        r.deadline.conserved && r.rescue.conserved && r.breaker.conserved,
        "conserved-sum violated"
    );
    let leaked = r.deadline.leaked_locks + r.rescue.leaked_locks + r.breaker.leaked_locks;
    assert_eq!(leaked, 0, "locks leaked across the chaos phases");

    opts.rec.record(
        "chaos",
        &[
            ("chaos_quiesce_success_pct", r.rescue_success_pct()),
            ("chaos_deadline_success_pct", r.deadline_success_pct()),
            ("kill_rescues", r.rescue.killed as f64),
            ("stuck_slots", r.deadline.stuck_slots as f64),
            ("rescue_mean_ms", r.rescue.mean_ms),
            ("rescue_max_ms", r.rescue.max_ms),
            ("breaker_opens", r.breaker.opens as f64),
            ("breaker_closes", r.breaker.closes as f64),
            (
                "split_after_clear",
                if r.breaker.split_after_clear {
                    1.0
                } else {
                    0.0
                },
            ),
            ("failed_actions", r.breaker.failed_actions as f64),
            ("leaked_locks", leaked as f64),
        ],
    );
}

/// Prints one scenario's window table + summary and records its metrics.
fn report_repart(
    opts: &Opts,
    with: &PhaseShiftConfig,
    stat: &PhaseShiftReport,
    ctrl: &PhaseShiftReport,
    tag: &str,
) {
    println!(
        "{:>8} {:>6} {:>12} {:>12}   marker",
        "window", "t(s)", "static", "repart"
    );
    let window = with.window_secs;
    for i in 0..ctrl.window_ops.len().min(stat.window_ops.len()) {
        let mut marker = String::new();
        if i == ctrl.shift_window {
            marker.push_str("<< phase shift");
        }
        if ctrl.split_window == Some(i) {
            marker.push_str(" << SPLIT");
        }
        println!(
            "{i:>8} {:>6.2} {:>12} {:>12}   {marker}",
            (i as f64 + 1.0) * window,
            kops(stat.window_ops[i] as f64 / window),
            kops(ctrl.window_ops[i] as f64 / window),
        );
    }
    let line = |label: &str, r: &PhaseShiftReport| {
        println!(
            "{label:>10}: pre {} Kops/s | dip {} | tail {} | recovery {:>5.1}% | \
             abort {:>4.1}% | partitions {}",
            kops(r.baseline),
            kops(r.dip),
            kops(r.recovered),
            100.0 * r.recovery,
            100.0 * r.abort_rate,
            r.partitions
        );
    };
    line("static", stat);
    line("repart", ctrl);
    for e in &ctrl.events {
        println!("controller event: {e:?}");
    }
    // Splits that carried whole collections (arena + roots) — the
    // arena-level migrations the structure scenario must exhibit.
    let arena_splits = ctrl
        .events
        .iter()
        .filter(
            |e| matches!(e, partstm_repart::RepartEvent::Split { collections, .. } if *collections > 0),
        )
        .count();
    match ctrl.split_window {
        Some(w) => println!(
            "controller split at window {w} ({arena_splits} arena-level); \
             recovery criterion (>=20%): {}",
            if ctrl.recovery >= 0.20 {
                "MET"
            } else {
                "missed"
            }
        ),
        None => println!("controller never split"),
    }
    assert!(stat.conserved && ctrl.conserved, "conserved-sum violated");

    for (name, r) in [
        (format!("{tag}/static"), stat),
        (format!("{tag}/controller"), ctrl),
    ] {
        let r_arena_splits = r
            .events
            .iter()
            .filter(
                |e| matches!(e, partstm_repart::RepartEvent::Split { collections, .. } if *collections > 0),
            )
            .count();
        opts.rec.record(
            name,
            &[
                ("baseline_kops", r.baseline / 1000.0),
                ("dip_kops", r.dip / 1000.0),
                ("tail_kops", r.recovered / 1000.0),
                ("recovery", r.recovery),
                ("abort_rate", r.abort_rate),
                ("partitions", r.partitions as f64),
                (
                    "split_window",
                    r.split_window.map(|w| w as f64).unwrap_or(-1.0),
                ),
                ("arena_splits", r_arena_splits as f64),
            ],
        );
    }
}
