//! The heterogeneous multi-structure application (experiments F3/T2/A2).
//!
//! One application, three data structures with deliberately different
//! workloads — the paper's motivating scenario (§1: "a linked list might
//! have a high update transaction rate ... while a red/black tree in the
//! same application with a low update rate ..."):
//!
//! * a small, **update-heavy sorted linked list** (long read sets, high
//!   conflict rate — profits from visible reads / coarse detection),
//! * a large, **read-mostly red-black tree** (short paths, rare updates —
//!   profits from invisible reads / fine detection),
//! * a medium **hash set** in between.
//!
//! No single global configuration suits all three; per-partition tuning
//! should. The structures can share one partition (the unpartitioned base
//! STM), use per-partition static configs, or tunable partitions.

use std::sync::Arc;

use partstm_analysis::{AccessKind, ModelBuilder, ProgramModel};
use partstm_core::{DynConfig, Partition, PartitionConfig, Stm, ThreadCtx};
use partstm_stamp::SplitMix64;
use partstm_structures::{IntSet, THashSet, TLinkedList, TRbTree};

/// Linked-list key range (small => long chains of conflicts).
pub const LIST_RANGE: u64 = 256;
/// Linked-list update percentage.
pub const LIST_UPD: u64 = 50;
/// Red-black-tree key range (large => low conflict probability).
pub const TREE_RANGE: u64 = 16384;
/// Red-black-tree update percentage.
pub const TREE_UPD: u64 = 5;
/// Hash-set key range.
pub const HASH_RANGE: u64 = 4096;
/// Hash-set update percentage.
pub const HASH_UPD: u64 = 20;

/// How the application's structures map onto partitions.
pub enum HeteroMode {
    /// All three structures share one partition with this configuration
    /// (the unpartitioned base STM with a global static config).
    Single(DynConfig),
    /// One partition per structure with static configs `[list, tree, hash]`.
    PerPartition([DynConfig; 3]),
    /// One tunable partition per structure (pair with a tuner on the
    /// `Stm`).
    Adaptive,
}

/// The three-structure application.
pub struct HeteroApp {
    /// Update-heavy small list.
    pub list: TLinkedList,
    /// Read-mostly large tree.
    pub tree: TRbTree,
    /// Medium hash set.
    pub hash: THashSet,
}

impl HeteroApp {
    /// Builds the application in the given partitioning mode.
    pub fn new(stm: &Stm, mode: HeteroMode) -> Self {
        let mk = |name: &str, cfg: Option<DynConfig>, tunable: bool| -> Arc<Partition> {
            let mut pc = PartitionConfig::named(name);
            if let Some(c) = cfg {
                pc.read_mode = c.read_mode;
                pc.acquire = c.acquire;
                pc.granularity = c.granularity;
                pc.cm = c.cm;
                pc.reader_arb = c.reader_arb;
            }
            pc.tune = tunable;
            stm.new_partition(pc)
        };
        let (pl, pt, ph) = match mode {
            HeteroMode::Single(cfg) => {
                let p = mk("hetero.all", Some(cfg), false);
                (Arc::clone(&p), Arc::clone(&p), p)
            }
            HeteroMode::PerPartition([l, t, h]) => (
                mk("hetero.list", Some(l), false),
                mk("hetero.tree", Some(t), false),
                mk("hetero.hash", Some(h), false),
            ),
            HeteroMode::Adaptive => (
                mk("hetero.list", None, true),
                mk("hetero.tree", None, true),
                mk("hetero.hash", None, true),
            ),
        };
        HeteroApp {
            list: TLinkedList::with_capacity(pl, LIST_RANGE as usize),
            tree: TRbTree::with_capacity(pt, TREE_RANGE as usize),
            hash: THashSet::new(ph, HASH_RANGE as usize / 4),
        }
    }

    /// Pre-fills all three structures to 50% occupancy.
    pub fn prefill(&self, stm: &Stm) {
        let ctx = stm.register_thread();
        for k in (0..LIST_RANGE).step_by(2) {
            ctx.run(|tx| self.list.insert(tx, k).map(|_| ()));
        }
        for k in (0..TREE_RANGE).step_by(2) {
            ctx.run(|tx| self.tree.insert(tx, k).map(|_| ()));
        }
        for k in (0..HASH_RANGE).step_by(2) {
            ctx.run(|tx| self.hash.insert(tx, k).map(|_| ()));
        }
    }

    /// One application operation: weighted structure pick (40% list, 40%
    /// tree, 20% hash) and the standard intset mix on it.
    pub fn op(&self, ctx: &ThreadCtx, rng: &mut SplitMix64) {
        let (set, range, upd): (&dyn IntSet, u64, u64) = match rng.below(100) {
            0..=39 => (&self.list, LIST_RANGE, LIST_UPD),
            40..=79 => (&self.tree, TREE_RANGE, TREE_UPD),
            _ => (&self.hash, HASH_RANGE, HASH_UPD),
        };
        crate::intset_op(set, ctx, rng, range, upd);
    }
}

/// The application's program model for the compile-time analysis (T1).
pub fn partition_plan() -> ProgramModel {
    let mut b = ModelBuilder::new("hetero");
    let list = b.alloc("list_nodes", "ListNode");
    let tree = b.alloc("tree_nodes", "RbTreeNode");
    let hash = b.alloc("hash_nodes", "HashNode");
    b.access("list_contains", AccessKind::Read, &[list]);
    b.access("list_update", AccessKind::ReadWrite, &[list]);
    b.access("tree_lookup", AccessKind::Read, &[tree]);
    b.access("tree_update", AccessKind::ReadWrite, &[tree]);
    b.access("hash_contains", AccessKind::Read, &[hash]);
    b.access("hash_update", AccessKind::ReadWrite, &[hash]);
    b.build().expect("hetero model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_analysis::{partition, Strategy};

    #[test]
    fn modes_create_expected_partitions() {
        let stm = Stm::new();
        let cfg = DynConfig::from(&PartitionConfig::default());
        let _single = HeteroApp::new(&stm, HeteroMode::Single(cfg));
        assert_eq!(stm.partitions().len(), 1);
        let stm2 = Stm::new();
        let _per = HeteroApp::new(&stm2, HeteroMode::PerPartition([cfg, cfg, cfg]));
        assert_eq!(stm2.partitions().len(), 3);
    }

    #[test]
    fn ops_run_in_all_modes() {
        for mode in [
            HeteroMode::Single(DynConfig::from(&PartitionConfig::default())),
            HeteroMode::Adaptive,
        ] {
            let stm = Stm::new();
            let app = HeteroApp::new(&stm, mode);
            app.prefill(&stm);
            let ctx = stm.register_thread();
            let mut rng = SplitMix64::new(3);
            for _ in 0..200 {
                app.op(&ctx, &mut rng);
            }
        }
    }

    #[test]
    fn model_yields_three_partitions() {
        let plan = partition(&partition_plan(), Strategy::MayTouch).unwrap();
        assert_eq!(plan.partition_count(), 3);
    }
}
