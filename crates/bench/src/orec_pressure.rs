//! The orec-pressure workload: the end-to-end demonstration of live
//! conflict-detection-granularity adaptation (`repro orecs`).
//!
//! A large, *uniformly* accessed bank of accounts is guarded by a
//! deliberately undersized orec table (64 records for thousands of
//! accounts). Transfers hold their encounter locks across a reschedule
//! (the established 1-core contention stretcher), so at any instant a few
//! locks are stranded mid-transaction — and with a tiny table, a stranded
//! lock aliases with a large fraction of *all* addresses: scans and
//! unrelated transfers abort on orecs whose heat belongs to someone
//! else's data. There is no hot set to split (the traffic is uniform);
//! the only fix is a *finer table*.
//!
//! With the [`RepartitionController`] running, the engine's aliasing
//! telemetry (`conflicts_aliased` vs `conflicts_true`, classified against
//! each orec's acquisition hint) shows the conflicts are overwhelmingly
//! false, the profiler's bucket counters show the footprint is diffuse,
//! and the online analyzer emits a `Resize` proposal the controller
//! executes live via [`Stm::resize_orecs`] — in place, no data moves.
//! The run reports throughput per window, the windows in which resizes
//! landed, and the settled tail vs a static (no-controller) baseline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::{PVar, PartitionConfig, Stm};
use partstm_repart::{ControllerConfig, RepartEvent, RepartitionController, StaticDirectory};

/// Initial balance per account (the conserved-sum probe).
const INITIAL: i64 = 100;

/// Orec-pressure experiment parameters.
#[derive(Debug, Clone)]
pub struct OrecPressureConfig {
    /// Total accounts (one `PVar` each) — the footprint.
    pub accounts: usize,
    /// Worker threads.
    pub threads: usize,
    /// Total run length in seconds.
    pub total_secs: f64,
    /// Measurement window in seconds.
    pub window_secs: f64,
    /// Percent of operations that are read-only scans.
    pub scan_pct: u64,
    /// Accounts read per scan.
    pub scan_len: usize,
    /// Initial orec count — deliberately tiny relative to `accounts`, so
    /// stranded locks alias with most of the footprint.
    pub orecs: usize,
    /// Run the repartition controller (false = static baseline).
    pub with_controller: bool,
}

impl OrecPressureConfig {
    /// The standard scenario at a given scale.
    pub fn standard(threads: usize, total_secs: f64) -> Self {
        OrecPressureConfig {
            accounts: 8192,
            threads: threads.max(2),
            total_secs: total_secs.max(2.0),
            window_secs: 0.25,
            scan_pct: 60,
            scan_len: 32,
            orecs: 64,
            with_controller: true,
        }
    }

    /// Same scenario without the controller (the static baseline).
    pub fn without_controller(mut self) -> Self {
        self.with_controller = false;
        self
    }
}

/// Measured outcome of one orec-pressure run.
#[derive(Debug, Clone)]
pub struct OrecPressureReport {
    /// Committed operations per window.
    pub window_ops: Vec<u64>,
    /// Window in which the controller's first resize landed (if any).
    pub resize_window: Option<usize>,
    /// Mean throughput before the first resize (ops/s; first window
    /// skipped as warmup). For a static run: the whole-run mean.
    pub pre: f64,
    /// Mean settled throughput after the *last* resize (ops/s); for a
    /// static run, equals `pre`.
    pub tail: f64,
    /// Whole-run abort rate across all partitions.
    pub abort_rate: f64,
    /// Share of classified conflicts that were aliased (false) conflicts.
    pub aliased_share: f64,
    /// Orec count at the start of the run.
    pub orecs_before: usize,
    /// Orec count at the end of the run.
    pub orecs_final: usize,
    /// Completed live resizes.
    pub resizes: u64,
    /// Whether the conserved-sum invariant held at the end.
    pub conserved: bool,
    /// Controller event log (empty without the controller).
    pub events: Vec<RepartEvent>,
}

/// Runs the scenario and measures the recovery.
pub fn run_orec_pressure(cfg: &OrecPressureConfig) -> OrecPressureReport {
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("aliased").orecs(cfg.orecs));
    let accounts: Vec<Arc<PVar<i64>>> = (0..cfg.accounts)
        .map(|_| Arc::new(part.tvar(INITIAL)))
        .collect();
    let orecs_before = part.orec_count();
    // Resizes act on the partition in place; the directory stays empty
    // (uniform traffic never produces a split proposal, and the scenario
    // must recover *without* moving data).
    let controller = cfg.with_controller.then(|| {
        let mut ctrl_cfg = ControllerConfig::responsive();
        ctrl_cfg.interval = Duration::from_millis(250);
        // 1-in-32 keeps profiling overhead out of the measurement.
        ctrl_cfg.sample_period = 32;
        ctrl_cfg.decay = 0.4;
        RepartitionController::spawn(&stm, Arc::new(StaticDirectory::new()), ctrl_cfg)
    });

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    let windows = ((cfg.total_secs / cfg.window_secs).round() as usize).max(1);
    let mut window_ops = Vec::with_capacity(windows);
    let mut resize_window = None;

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (accounts, stop, ops) = (&accounts, &stop, &ops);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if (r >> 16) % 100 < cfg.scan_pct {
                        // Read-only audit of scan_len random accounts:
                        // shares no *data* with any in-flight transfer
                        // beyond chance, so almost every conflict it hits
                        // is orec aliasing.
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0i64;
                            for _ in 0..cfg.scan_len {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                sum += tx.read(&accounts[(x >> 16) as usize % cfg.accounts])?;
                            }
                            Ok(sum)
                        });
                    } else {
                        let from = (r % cfg.accounts as u64) as usize;
                        let to = ((r >> 8) % cfg.accounts as u64) as usize;
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            // Hold the encounter lock across a reschedule
                            // (stands in for real work between debit and
                            // credit; the 1-core conflict window).
                            std::thread::yield_now();
                            let v = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], v + amt)?;
                            Ok(())
                        });
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Measurement loop on the scope's own thread.
        let mut prev = 0u64;
        for w in 0..windows {
            let target = start + Duration::from_secs_f64((w + 1) as f64 * cfg.window_secs);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let cur = ops.load(Ordering::Relaxed);
            window_ops.push(cur - prev);
            prev = cur;
            if resize_window.is_none() {
                if let Some(c) = &controller {
                    if c.has_resize() {
                        resize_window = Some(w);
                    }
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    let events = controller.map(|c| c.stop()).unwrap_or_default();
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    let conserved = total == cfg.accounts as i64 * INITIAL;

    // Settled tail: windows after the *last* executed resize has had one
    // window to settle; pre: windows before the first resize. Whole
    // regions are averaged (scheduler noise at the 0.25 s window scale).
    let last_resize_at = events
        .iter()
        .filter(|e| matches!(e, RepartEvent::Resize { .. }))
        .count();
    let per_sec = 1.0 / cfg.window_secs;
    let mean = |w: &[u64]| {
        if w.is_empty() {
            0.0
        } else {
            w.iter().sum::<u64>() as f64 / w.len() as f64 * per_sec
        }
    };
    let (pre, tail) = match resize_window {
        Some(first) => {
            // The last resize landed at or after `first`; settle from the
            // point where no further resize event follows. Conservative:
            // take the last quarter of the run as the settled region when
            // resizes kept stacking, else everything past first+1.
            let settle = if last_resize_at > 1 {
                (window_ops.len() * 3 / 4).max(first + 1)
            } else {
                first + 1
            }
            .min(window_ops.len().saturating_sub(1));
            // Pre-resize region: skip window 0 (warmup) when at least one
            // later pre-resize window exists; a resize landing in window
            // 0 or 1 leaves only the earliest window(s) to report.
            let pre_region = if first > 1 {
                &window_ops[1..first]
            } else {
                &window_ops[..first.max(1)]
            };
            (mean(pre_region), mean(&window_ops[settle..]))
        }
        None => {
            let whole = mean(&window_ops[1.min(window_ops.len() - 1)..]);
            (whole, whole)
        }
    };

    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut aliased = 0u64;
    let mut true_c = 0u64;
    for p in stm.partitions() {
        let s = p.stats();
        commits += s.commits;
        aborts += s.aborts();
        aliased += s.conflicts_aliased;
        true_c += s.conflicts_true;
    }

    OrecPressureReport {
        window_ops,
        resize_window,
        pre,
        tail,
        abort_rate: aborts as f64 / (commits + aborts).max(1) as f64,
        aliased_share: if aliased + true_c == 0 {
            0.0
        } else {
            aliased as f64 / (aliased + true_c) as f64
        },
        orecs_before,
        orecs_final: part.orec_count(),
        resizes: part.resize_count(),
        conserved,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run without the controller: the report plumbing works,
    /// the invariant holds and the aliasing telemetry flows. (The full
    /// recovery measurement runs under `repro orecs`, not in unit tests.)
    #[test]
    fn orec_pressure_baseline_reports_and_conserves() {
        let mut cfg = OrecPressureConfig::standard(2, 2.0).without_controller();
        cfg.accounts = 1024;
        let rep = run_orec_pressure(&cfg);
        assert_eq!(rep.window_ops.len(), 8);
        assert!(rep.conserved, "sum must be conserved");
        assert!(rep.pre > 0.0);
        assert_eq!(rep.resizes, 0, "no controller, no resize");
        assert_eq!(rep.orecs_final, rep.orecs_before);
        assert!(rep.events.is_empty());
        assert!(rep.resize_window.is_none());
    }
}
