//! The read-path workload: the end-to-end demonstration of the
//! multi-version snapshot read tier (`repro readpath`).
//!
//! A bank of accounts on a commit-time-acquiring partition serves a
//! 95/5 read-dominated mix: 95% of operations are read-only audits of
//! `scan_len` random accounts, 5% are transfers that hold their buffered
//! writes until commit. Run twice with identical traffic:
//!
//! * **snapshot** — audits go through [`ThreadCtx::snapshot_read`]: each
//!   pins a timestamp and reconstructs overwritten words from the orec
//!   version rings, so it can *never* abort on a data conflict and never
//!   revalidates. `ro_aborts` must be exactly 0.
//! * **validating** — the same audits through the regular [`ThreadCtx::run`]
//!   path with invisible reads: every transfer that commits mid-scan
//!   forces revalidation and possibly a restart.
//!
//! Besides throughput, the scenario reports read-transaction *tail
//! latency* (every `LAT_SAMPLE`th scan is timed; p50/p99 over the
//! merged sample), how often snapshot reads had to reach into ring
//! history rather than the live cell (`hist_share`), and how many writer
//! publishes overflowed their ring because a pinned reader held the
//! floor down (`overflow_pushes`).
//!
//! [`ThreadCtx::snapshot_read`]: partstm_core::ThreadCtx::snapshot_read
//! [`ThreadCtx::run`]: partstm_core::ThreadCtx::run

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use partstm_core::{AcquireMode, PVar, PartitionConfig, Stm};

/// Initial balance per account (the conserved-sum probe).
const INITIAL: i64 = 100;

/// Every `LAT_SAMPLE`th scan is wall-clock timed. Subsampling keeps the
/// two `Instant` reads out of the hot loop's common case so the latency
/// probe does not distort the throughput it annotates.
const LAT_SAMPLE: u64 = 8;

/// Read-path experiment parameters.
#[derive(Debug, Clone)]
pub struct ReadpathConfig {
    /// Total accounts (one `PVar` each).
    pub accounts: usize,
    /// Worker threads.
    pub threads: usize,
    /// Total run length in seconds.
    pub total_secs: f64,
    /// Percent of operations that are read-only scans (the "95" of 95/5).
    pub scan_pct: u64,
    /// Accounts read per scan.
    pub scan_len: usize,
    /// Orec-table size for the partition.
    pub orecs: usize,
    /// Committed versions retained per orec.
    pub ring_depth: usize,
    /// Route scans through `snapshot_read` (false = validating baseline).
    pub snapshot_mode: bool,
}

impl ReadpathConfig {
    /// The standard 95/5 scenario at a given scale.
    pub fn standard(threads: usize, total_secs: f64) -> Self {
        ReadpathConfig {
            accounts: 4096,
            threads: threads.max(2),
            total_secs: total_secs.max(1.0),
            scan_pct: 95,
            scan_len: 32,
            orecs: 1024,
            ring_depth: 4,
            snapshot_mode: true,
        }
    }

    /// Same traffic through the regular validating read path.
    pub fn validating(mut self) -> Self {
        self.snapshot_mode = false;
        self
    }
}

/// Measured outcome of one read-path run.
#[derive(Debug, Clone)]
pub struct ReadpathReport {
    /// Completed read-only scans.
    pub read_ops: u64,
    /// Completed transfers.
    pub write_ops: u64,
    /// Measured wall-clock seconds.
    pub secs: f64,
    /// Read-transaction throughput (Kops/s).
    pub read_kops: f64,
    /// Write-transaction throughput (Kops/s).
    pub write_kops: f64,
    /// Median timed-scan latency in microseconds.
    pub read_p50_us: f64,
    /// 99th-percentile timed-scan latency in microseconds.
    pub read_p99_us: f64,
    /// Read-transaction aborts, counted mode-agnostically as closure
    /// invocations minus completed scans — the figure the snapshot tier
    /// must hold at exactly zero.
    pub ro_aborts: u64,
    /// Snapshot-attempt restarts charged to control-plane races
    /// (migration/resize switching); 0 for the validating baseline.
    pub ro_restarts: u64,
    /// Snapshot reads served from ring/overflow history.
    pub hist_reads: u64,
    /// Share of snapshot reads that needed history (vs the live cell).
    pub hist_share: f64,
    /// Writer publishes diverted to the overflow list by a pinned reader.
    pub overflow_pushes: u64,
    /// Whether the conserved-sum invariant held at the end.
    pub conserved: bool,
}

/// Runs the scenario and measures both sides of the 95/5 mix.
pub fn run_readpath(cfg: &ReadpathConfig) -> ReadpathReport {
    let stm = Stm::new();
    let part = stm.new_partition(
        PartitionConfig::named("readpath")
            .orecs(cfg.orecs)
            .ring(cfg.ring_depth)
            .acquire(AcquireMode::Commit),
    );
    let accounts: Vec<Arc<PVar<i64>>> = (0..cfg.accounts)
        .map(|_| Arc::new(part.tvar(INITIAL)))
        .collect();

    let stop = AtomicBool::new(false);
    let read_ops = AtomicU64::new(0);
    let write_ops = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let start = Instant::now();
    let mut secs = 0.0;

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, &stop);
            let (read_ops, write_ops, attempts, latencies) =
                (&read_ops, &write_ops, &attempts, &latencies);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut scans = 0u64;
                let mut reads = 0u64;
                let mut writes = 0u64;
                let mut tries = 0u64;
                let mut lats: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if (r >> 16) % 100 < cfg.scan_pct {
                        scans += 1;
                        let t0 = scans.is_multiple_of(LAT_SAMPLE).then(Instant::now);
                        let seed = r;
                        // The audit body is identical in both modes; only
                        // the entry point differs. `tries` counts closure
                        // invocations so aborts/restarts are measured the
                        // same way for both tiers.
                        if cfg.snapshot_mode {
                            ctx.snapshot_read(|tx| {
                                tries += 1;
                                let mut x = seed;
                                let mut sum = 0i64;
                                for _ in 0..cfg.scan_len {
                                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                    sum += tx.read(&accounts[(x >> 16) as usize % cfg.accounts])?;
                                }
                                Ok(sum)
                            });
                        } else {
                            ctx.run(|tx| {
                                tries += 1;
                                let mut x = seed;
                                let mut sum = 0i64;
                                for _ in 0..cfg.scan_len {
                                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                    sum += tx.read(&accounts[(x >> 16) as usize % cfg.accounts])?;
                                }
                                Ok(sum)
                            });
                        }
                        if let Some(t0) = t0 {
                            lats.push(t0.elapsed().as_nanos() as u64);
                        }
                        reads += 1;
                    } else {
                        let from = (r % cfg.accounts as u64) as usize;
                        let to = ((r >> 8) % cfg.accounts as u64) as usize;
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            let v = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], v + amt)?;
                            Ok(())
                        });
                        writes += 1;
                    }
                }
                read_ops.fetch_add(reads, Ordering::Relaxed);
                write_ops.fetch_add(writes, Ordering::Relaxed);
                attempts.fetch_add(tries, Ordering::Relaxed);
                latencies.lock().unwrap().append(&mut lats);
            });
        }
        std::thread::sleep(Duration::from_secs_f64(cfg.total_secs));
        secs = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
    });

    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    let conserved = total == cfg.accounts as i64 * INITIAL;

    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let pct = |q: f64| {
        if lats.is_empty() {
            0.0
        } else {
            lats[((lats.len() - 1) as f64 * q).round() as usize] as f64 / 1000.0
        }
    };

    let s = part.stats();
    let read_ops = read_ops.into_inner();
    let write_ops = write_ops.into_inner();
    ReadpathReport {
        read_ops,
        write_ops,
        secs,
        read_kops: read_ops as f64 / secs / 1000.0,
        write_kops: write_ops as f64 / secs / 1000.0,
        read_p50_us: pct(0.50),
        read_p99_us: pct(0.99),
        ro_aborts: attempts.into_inner().saturating_sub(read_ops),
        ro_restarts: s.snapshot_restarts,
        hist_reads: s.snapshot_history_reads,
        hist_share: if s.snapshot_reads == 0 {
            0.0
        } else {
            s.snapshot_history_reads as f64 / s.snapshot_reads as f64
        },
        overflow_pushes: s.ring_overflow_pushes,
        conserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Miniature snapshot-mode run: the conserved sum holds, reads flow,
    /// and — the tentpole guarantee — not a single read-only transaction
    /// aborts. (The full throughput/latency comparison runs under
    /// `repro readpath`, not in unit tests.)
    #[test]
    fn snapshot_mode_conserves_and_never_aborts() {
        let mut cfg = ReadpathConfig::standard(2, 1.0);
        cfg.accounts = 512;
        let rep = run_readpath(&cfg);
        assert!(rep.conserved, "sum must be conserved");
        assert!(rep.read_ops > 0 && rep.write_ops > 0);
        assert_eq!(rep.ro_aborts, 0, "snapshot readers must never abort");
        assert_eq!(rep.ro_restarts, 0, "no migrations race this run");
        assert!(rep.read_p99_us >= rep.read_p50_us);
    }

    /// The validating baseline reports through the same plumbing.
    #[test]
    fn validating_mode_reports_through_the_same_plumbing() {
        let mut cfg = ReadpathConfig::standard(2, 1.0).validating();
        cfg.accounts = 512;
        let rep = run_readpath(&cfg);
        assert!(rep.conserved, "sum must be conserved");
        assert!(rep.read_ops > 0);
        assert_eq!(rep.hist_reads, 0, "validating path never touches rings");
        assert_eq!(rep.ro_restarts, 0);
    }
}
