//! The chaos scenario: stuck-transaction remediation under deterministic
//! fault injection.
//!
//! Three phases, all driven by seeded [`FaultPlan`]s:
//!
//! 1. **Deadline-only baseline** — workers transact against a bank while
//!    the fault plan wedges them *inside* transactions for far longer than
//!    the quiesce hard deadline (the stall site polls its kill flag, but
//!    the rescue is disabled by setting the soft deadline equal to the
//!    hard one). Every control action the driver attempts must wait out
//!    the full deadline and roll back: the success rate collapses to ~0%.
//! 2. **Kill-based rescue** — the identical fault schedule, but with the
//!    soft deadline armed. Quiesce raises kill flags at the soft deadline,
//!    the wedged victims unwind through the ordinary abort path, and the
//!    same control actions now succeed (acceptance: ≥95%) with a recovery
//!    latency near the soft deadline instead of the hard one.
//! 3. **Breaker** — a hot-cluster workload drives the repartition
//!    controller into proposing splits while the fault plan fails every
//!    control action at the execution boundary. After
//!    `breaker_threshold` consecutive timeouts the per-partition circuit
//!    breaker opens (no more proposals burned on a wedged partition);
//!    once the faults clear, the breaker expires, closes, and the next
//!    split goes through.
//!
//! Every phase ends with the standard hygiene sweep: conserved account
//! sums and zero locked orecs in every partition (`debug_scan`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partstm_core::telemetry::{self, EventKind};
use partstm_core::{
    fault, FaultPlan, FaultSite, Migratable, PVar, PartitionConfig, Stm, SwitchOutcome,
};
use partstm_repart::{ControllerConfig, RepartEvent, RepartitionController, StaticDirectory};

/// Initial balance per account (the conserved-sum probe).
const INITIAL: i64 = 100;

/// Chaos experiment parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Accounts migrated back and forth by the quiesce phases.
    pub accounts: usize,
    /// Worker threads per phase.
    pub threads: usize,
    /// Control actions attempted per quiesce phase.
    pub actions: usize,
    /// Hard quiesce deadline of the quiesce phases.
    pub quiesce_timeout: Duration,
    /// Soft (kill) deadline of the rescue phase.
    pub kill_after: Duration,
    /// How long an injected stall wedges a transaction.
    pub stall: Duration,
    /// Per-acquisition stall probability in permille.
    pub stall_permille: u32,
    /// Fault-plan seed (same schedule for baseline and rescue).
    pub seed: u64,
    /// Wall-clock budget for each breaker-phase wait.
    pub breaker_budget: Duration,
}

impl ChaosConfig {
    /// The standard scenario at a given scale. `secs` only scales the
    /// number of control actions attempted; the deadlines themselves are
    /// part of the experiment.
    pub fn standard(threads: usize, secs: f64) -> Self {
        ChaosConfig {
            accounts: 64,
            threads: threads.clamp(2, 8),
            actions: (secs * 40.0).clamp(10.0, 30.0) as usize,
            quiesce_timeout: Duration::from_millis(60),
            kill_after: Duration::from_millis(10),
            stall: Duration::from_millis(400),
            stall_permille: 25,
            seed: 0xC0A5_7A11,
            breaker_budget: Duration::from_secs(8),
        }
    }
}

/// Outcome of one quiesce phase (baseline or rescue).
#[derive(Debug, Clone, Default)]
pub struct QuiescePhase {
    /// Control actions attempted.
    pub attempts: usize,
    /// Actions that completed (`SwitchOutcome::Switched`).
    pub successes: usize,
    /// Mean wall time of the successful actions, in milliseconds.
    pub mean_ms: f64,
    /// Worst wall time of the successful actions, in milliseconds.
    pub max_ms: f64,
    /// Transactions killed by the rescue (`aborts_killed` across the
    /// phase's partitions).
    pub killed: u64,
    /// `stuck_slots` diagnostics emitted (hard-deadline expiries).
    pub stuck_slots: u64,
    /// Conserved-sum probe.
    pub conserved: bool,
    /// Locked orecs left behind after the phase (must be 0).
    pub leaked_locks: usize,
}

/// Outcome of the breaker phase.
#[derive(Debug, Clone, Default)]
pub struct BreakerPhase {
    /// `BreakerOpen` events the controller emitted.
    pub opens: usize,
    /// `BreakerClose` events the controller emitted.
    pub closes: usize,
    /// Whether a split landed after the faults were cleared.
    pub split_after_clear: bool,
    /// Failed control actions (the timeouts that opened the breaker).
    pub failed_actions: usize,
    /// Conserved-sum probe.
    pub conserved: bool,
    /// Locked orecs left behind after the phase (must be 0).
    pub leaked_locks: usize,
    /// Full controller event log (for the human report).
    pub events: Vec<RepartEvent>,
}

/// Measured outcome of the whole chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Phase 1: rescue disabled.
    pub deadline: QuiescePhase,
    /// Phase 2: rescue armed.
    pub rescue: QuiescePhase,
    /// Phase 3: controller circuit breaker.
    pub breaker: BreakerPhase,
}

impl ChaosReport {
    /// Quiesce success percentage with the rescue armed (the bench-trend
    /// floor).
    pub fn rescue_success_pct(&self) -> f64 {
        100.0 * self.rescue.successes as f64 / self.rescue.attempts.max(1) as f64
    }

    /// Quiesce success percentage with only the hard deadline.
    pub fn deadline_success_pct(&self) -> f64 {
        100.0 * self.deadline.successes as f64 / self.deadline.attempts.max(1) as f64
    }
}

/// Runs all three phases.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let deadline = run_quiesce_phase(cfg, false);
    let rescue = run_quiesce_phase(cfg, true);
    let breaker = run_breaker_phase(cfg);
    ChaosReport {
        deadline,
        rescue,
        breaker,
    }
}

/// One quiesce phase: workers transfer between accounts while the fault
/// plan wedges them mid-transaction; the driver migrates the whole
/// account set back and forth between two partitions and scores each
/// attempt. `rescue` arms the soft deadline; without it the phase is the
/// deadline-only baseline.
fn run_quiesce_phase(cfg: &ChaosConfig, rescue: bool) -> QuiescePhase {
    let kill_after = if rescue {
        cfg.kill_after
    } else {
        // Soft deadline == hard deadline disables the rescue entirely.
        cfg.quiesce_timeout
    };
    let stm = Stm::builder()
        .quiesce_timeout(cfg.quiesce_timeout)
        .kill_after(kill_after)
        .build();
    let pa = stm.new_partition(PartitionConfig::named("chaos-a"));
    let pb = stm.new_partition(PartitionConfig::named("chaos-b"));
    let accounts: Vec<Arc<PVar<i64>>> = (0..cfg.accounts)
        .map(|_| Arc::new(pa.tvar(INITIAL)))
        .collect();
    let plan = fault::install(
        FaultPlan::new(cfg.seed)
            .for_stm(&stm)
            .stall_holding_locks(cfg.stall_permille, cfg.stall)
            .quiesce_delay(100, Duration::from_millis(2)),
    );
    let stuck0 = telemetry::global().stuck_slots.get();

    // Debug builds panic on a quiesce hard-deadline expiry (after
    // restoring the partition word); the baseline phase provokes that on
    // purpose, so silence the per-panic backtrace spam while it runs.
    if !rescue {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let stop = AtomicBool::new(false);
    let mut successes = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (accounts, stop) = (&accounts, &stop);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    let from = (r % cfg.accounts as u64) as usize;
                    let to = ((r >> 8) % cfg.accounts as u64) as usize;
                    let amt = (r % 90) as i64;
                    ctx.run(|tx| {
                        let f = tx.read(&accounts[from])?;
                        tx.write(&accounts[from], f - amt)?;
                        let t = tx.read(&accounts[to])?;
                        tx.write(&accounts[to], t + amt)?;
                        Ok(())
                    });
                }
            });
        }
        // Don't start scoring until the first stall has fired: every
        // attempt should contend with the fault schedule.
        let armed = Instant::now();
        while plan.injected(FaultSite::StallHoldingLocks) == 0
            && armed.elapsed() < Duration::from_secs(2)
        {
            std::thread::yield_now();
        }
        let refs: Vec<&dyn Migratable> = accounts
            .iter()
            .map(|a| a.as_ref() as &dyn Migratable)
            .collect();
        let mut to_b = true;
        for _ in 0..cfg.actions {
            let dst = if to_b { &pb } else { &pa };
            let t0 = Instant::now();
            // catch_unwind absorbs the debug-build deadline panic; in
            // release the same expiry is a clean `TimedOut`.
            let out = catch_unwind(AssertUnwindSafe(|| stm.migrate_pvars(&refs, dst)));
            if let Ok(SwitchOutcome::Switched) = out {
                successes += 1;
                latencies.push(t0.elapsed());
                to_b = !to_b;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    if !rescue {
        let _ = std::panic::take_hook();
    }
    fault::clear();

    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    let mut killed = 0u64;
    let mut leaked = 0usize;
    for p in stm.partitions() {
        killed += p.stats().aborts_killed;
        let (locked, _, _) = p.debug_scan();
        leaked += locked;
    }
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / latencies.len() as f64 * 1e3
    };
    let max_ms = latencies
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .fold(0.0, f64::max);
    QuiescePhase {
        attempts: cfg.actions,
        successes,
        mean_ms,
        max_ms,
        killed,
        stuck_slots: telemetry::global().stuck_slots.get() - stuck0,
        conserved: total == cfg.accounts as i64 * INITIAL,
        leaked_locks: leaked,
    }
}

/// The breaker phase: a hot-cluster bank (the phase-shift recipe with the
/// skew active from the start) drives the controller into proposing
/// splits while every control action is failed at the execution boundary
/// by the fault plan. Waits for the breaker to open, clears the faults,
/// then waits for the close + a real split.
fn run_breaker_phase(cfg: &ChaosConfig) -> BreakerPhase {
    const ACCOUNTS: usize = 4096;
    const HOT: usize = 16;
    let stm = Stm::new();
    let part = stm.new_partition(PartitionConfig::named("chaos-bank").orecs(256));
    let accounts: Vec<Arc<PVar<i64>>> = (0..ACCOUNTS)
        .map(|_| Arc::new(part.tvar(INITIAL)))
        .collect();
    let dir = Arc::new(StaticDirectory::new());
    for a in &accounts {
        dir.register(Arc::clone(a) as Arc<dyn Migratable>);
    }
    fault::install(
        FaultPlan::new(cfg.seed ^ 0x00C0_FFEE)
            .for_stm(&stm)
            .ctrl_action_fail(1000),
    );
    let mut ctrl_cfg = ControllerConfig::responsive();
    ctrl_cfg.interval = Duration::from_millis(50);
    ctrl_cfg.sample_period = 8;
    ctrl_cfg.hysteresis = 1;
    ctrl_cfg.cooldown = 1;
    ctrl_cfg.decay = 0.4;
    ctrl_cfg.online.split_abort_rate = 0.05;
    ctrl_cfg.online.split_hot_share = 0.30;
    ctrl_cfg.breaker_threshold = 3;
    ctrl_cfg.breaker_windows = 10;
    let t_phase0 = telemetry::now_micros();
    let controller = RepartitionController::spawn(&stm, dir, ctrl_cfg);

    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let mut split_after_clear = false;
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let ctx = stm.register_thread();
            let (accounts, stop, ops) = (&accounts, &stop, &ops);
            s.spawn(move || {
                let mut r = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let cold = ACCOUNTS - HOT;
                while !stop.load(Ordering::Relaxed) {
                    r ^= r << 13;
                    r ^= r >> 7;
                    r ^= r << 17;
                    if (r >> 16) % 100 < 85 {
                        // Cold scans: abort fodder via orec aliasing with
                        // the stranded hot locks.
                        let seed = r;
                        ctx.run(|tx| {
                            let mut x = seed;
                            let mut sum = 0i64;
                            for _ in 0..64 {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let i = HOT + (x >> 16) as usize % cold;
                                sum += tx.read(&accounts[i])?;
                            }
                            Ok(sum)
                        });
                    } else {
                        let hot = r % 100 < 90;
                        let (from, to) = if hot {
                            ((r % HOT as u64) as usize, ((r >> 8) % HOT as u64) as usize)
                        } else {
                            (
                                HOT + (r % cold as u64) as usize,
                                HOT + ((r >> 8) % cold as u64) as usize,
                            )
                        };
                        let amt = (r % 90) as i64;
                        ctx.run(|tx| {
                            let f = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], f - amt)?;
                            if hot {
                                // Hold the encounter lock across a
                                // reschedule: the aliasing pressure that
                                // makes the analyzer propose a split.
                                std::thread::yield_now();
                            }
                            let t = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], t + amt)?;
                            Ok(())
                        });
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Wait for the breaker to open (a `CtrlBreaker` open event in the
        // flight recorder stamped after this phase started).
        let breaker_opened = || {
            telemetry::global()
                .recorder
                .snapshot()
                .iter()
                .any(|e| e.kind == EventKind::CtrlBreaker && e.micros >= t_phase0 && e.b == 1)
        };
        let t0 = Instant::now();
        while !breaker_opened() && t0.elapsed() < cfg.breaker_budget {
            std::thread::sleep(Duration::from_millis(25));
        }
        // Faults gone: the breaker should expire, close, and the next
        // split should go through for real.
        fault::clear();
        let t1 = Instant::now();
        while !controller.has_split() && t1.elapsed() < cfg.breaker_budget {
            std::thread::sleep(Duration::from_millis(25));
        }
        split_after_clear = controller.has_split();
        stop.store(true, Ordering::Relaxed);
    });
    fault::clear();
    let events = controller.stop();

    let opens = events
        .iter()
        .filter(|e| matches!(e, RepartEvent::BreakerOpen { .. }))
        .count();
    let closes = events
        .iter()
        .filter(|e| matches!(e, RepartEvent::BreakerClose { .. }))
        .count();
    let failed_actions = events
        .iter()
        .filter(|e| matches!(e, RepartEvent::Failed { .. }))
        .count();
    let total: i64 = accounts.iter().map(|a| a.load_direct()).sum();
    let mut leaked = 0usize;
    for p in stm.partitions() {
        let (locked, _, _) = p.debug_scan();
        leaked += locked;
    }
    BreakerPhase {
        opens,
        closes,
        split_after_clear,
        failed_actions,
        conserved: total == ACCOUNTS as i64 * INITIAL,
        leaked_locks: leaked,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature quiesce pair: the rescue phase must beat the
    /// deadline-only baseline and leave no locks behind. (The full
    /// three-phase run lives under `repro chaos`.)
    #[test]
    fn rescue_beats_deadline_baseline() {
        let mut cfg = ChaosConfig::standard(2, 0.2);
        cfg.actions = 6;
        let deadline = run_quiesce_phase(&cfg, false);
        let rescue = run_quiesce_phase(&cfg, true);
        assert_eq!(deadline.attempts, 6);
        assert!(deadline.conserved && rescue.conserved, "sums conserved");
        assert_eq!(deadline.leaked_locks, 0);
        assert_eq!(rescue.leaked_locks, 0);
        assert!(
            rescue.successes > deadline.successes,
            "rescue {}/{} must beat deadline-only {}/{}",
            rescue.successes,
            rescue.attempts,
            deadline.successes,
            deadline.attempts
        );
        assert!(rescue.killed >= 1, "rescue must kill the wedged victims");
        assert_eq!(deadline.killed, 0, "baseline must not kill anyone");
    }
}
