//! Criterion counterpart of Table T2: the per-transaction cost of
//! partition tracking. A transaction touching one partition pays one
//! config snapshot + view record; one touching three partitions pays
//! three. This isolates the bookkeeping the paper's §1 worries about
//! ("despite the runtime overhead introduced by partition tracking").
//!
//! The `view_cache` group additionally compares the engine's cached
//! partition view (config word decoded once per attempt, later accesses
//! hit the per-attempt view table) against a simulated per-access decode
//! (the raw read plus one `current_config()` load+decode per access — what
//! every access would pay without the view table).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use partstm_core::{PVar, Partition, PartitionConfig, Stm};

fn bench_touch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_tracking");

    // One partition, 3 reads + 3 writes.
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("single"));
        let vars: Vec<PVar<u64>> = (0..3u64).map(|v| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        let mut i = 0u64;
        g.bench_function("one_partition_3rw", |b| {
            b.iter(|| {
                i += 1;
                ctx.run(|tx| {
                    for v in &vars {
                        let x = tx.read(v)?;
                        tx.write(v, x + i)?;
                    }
                    Ok(())
                });
            })
        });
    }

    // Three partitions, 1 read + 1 write each (same total work).
    {
        let stm = Stm::new();
        let parts: Vec<Arc<Partition>> = (0..3)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let vars: Vec<PVar<u64>> = parts.iter().zip(0..3u64).map(|(p, v)| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        let mut i = 0u64;
        g.bench_function("three_partitions_3rw", |b| {
            b.iter(|| {
                i += 1;
                ctx.run(|tx| {
                    for v in &vars {
                        let x = tx.read(v)?;
                        tx.write(v, x + i)?;
                    }
                    Ok(())
                });
            })
        });
    }

    // Read-only variants (view cost without write-set machinery).
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("single"));
        let vars: Vec<PVar<u64>> = (0..8u64).map(|v| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        g.bench_function("one_partition_8r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read(v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }
    {
        let stm = Stm::new();
        let parts: Vec<Arc<Partition>> = (0..8)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let vars: Vec<PVar<u64>> = parts.iter().zip(0..8u64).map(|(p, v)| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        g.bench_function("eight_partitions_8r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read(v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }

    g.finish();
}

/// Cached partition view vs a per-access config decode, over a read-heavy
/// transaction (64 reads of one partition). `cached_view_64r` is the real
/// engine path: one SeqCst config load at first touch, then the view table.
/// `per_access_decode_64r` adds what the pre-view design paid: a config
/// word load + decode at *every* access.
fn bench_view_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_cache");
    let n = 64u64;

    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("cached"));
        let vars: Vec<PVar<u64>> = (0..n).map(|v| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        g.bench_function("cached_view_64r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read(v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("decode"));
        let vars: Vec<PVar<u64>> = (0..n).map(|v| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        g.bench_function("per_access_decode_64r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        // The config load + decode every access would pay
                        // without the per-attempt view cache.
                        black_box(p.current_config());
                        s = s.wrapping_add(tx.read(v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }

    g.finish();
}

/// Commit-path validation cost. An update transaction revalidates its
/// whole invisible read set at commit unless `rv + 1 == wv` (nobody else
/// committed since its snapshot) — which on a single thread is always
/// true, skipping the pass. `validate_64r_1w` therefore runs a *clock
/// pump* on a second thread and partition: it advances the global clock
/// without ever sharing an orec with the measured transaction, so every
/// measured commit walks all 64 read-set entries. `readonly_64r` is the
/// no-write control (read-only commits never validate). This is the
/// microbench the padded-orec + batched-validation work must hold at
/// parity or better.
fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    let n = 64u64;

    // Read-only control: no write set, no commit validation — isolates
    // the read-path cost of the same 64 reads.
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("ro"));
        let vars: Vec<PVar<u64>> = (0..n).map(|v| p.tvar(v)).collect();
        let ctx = stm.register_thread();
        g.bench_function("readonly_64r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read(v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }

    // 64 reads + 1 write with a forced full validation pass: a second
    // thread keeps advancing the clock, so `rv + 1 != wv` at commit and
    // the read set is walked every iteration.
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("rw"));
        let vars: Vec<PVar<u64>> = (0..n).map(|v| p.tvar(v)).collect();
        let sink = p.tvar(0u64);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            // Clock pump on its own partition: advances the global clock
            // without ever conflicting with the measured transaction.
            let pump_stm = stm.clone();
            let stop_ref = &stop;
            scope.spawn(move || {
                let q = pump_stm.new_partition(PartitionConfig::named("pump"));
                let t = q.tvar(0u64);
                let ctx = pump_stm.register_thread();
                while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                    ctx.run(|tx| tx.modify(&t, |v| v + 1).map(|_| ()));
                    std::thread::yield_now();
                }
            });
            let ctx = stm.register_thread();
            g.bench_function("validate_64r_1w", |b| {
                b.iter(|| {
                    black_box(ctx.run(|tx| {
                        let mut s = 0u64;
                        for v in &vars {
                            s = s.wrapping_add(tx.read(v)?);
                        }
                        tx.write(&sink, s)?;
                        Ok(s)
                    }))
                })
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }

    g.finish();
}

criterion_group!(
    benches,
    bench_touch_overhead,
    bench_view_cache,
    bench_validate
);
criterion_main!(benches);
