//! Criterion counterpart of Table T2: the per-transaction cost of
//! partition tracking. A transaction touching one partition pays one
//! config snapshot + touch record; one touching three partitions pays
//! three. This isolates the bookkeeping the paper's §1 worries about
//! ("despite the runtime overhead introduced by partition tracking").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use partstm_core::{Partition, PartitionConfig, Stm, TVar};

fn bench_touch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_tracking");

    // One partition, 3 reads + 3 writes.
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("single"));
        let vars: Vec<TVar<u64>> = (0..3u64).map(TVar::new).collect();
        let ctx = stm.register_thread();
        let mut i = 0u64;
        g.bench_function("one_partition_3rw", |b| {
            b.iter(|| {
                i += 1;
                ctx.run(|tx| {
                    for v in &vars {
                        let x = tx.read(&p, v)?;
                        tx.write(&p, v, x + i)?;
                    }
                    Ok(())
                });
            })
        });
    }

    // Three partitions, 1 read + 1 write each (same total work).
    {
        let stm = Stm::new();
        let parts: Vec<Arc<Partition>> = (0..3)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let vars: Vec<TVar<u64>> = (0..3u64).map(TVar::new).collect();
        let ctx = stm.register_thread();
        let mut i = 0u64;
        g.bench_function("three_partitions_3rw", |b| {
            b.iter(|| {
                i += 1;
                ctx.run(|tx| {
                    for (p, v) in parts.iter().zip(&vars) {
                        let x = tx.read(p, v)?;
                        tx.write(p, v, x + i)?;
                    }
                    Ok(())
                });
            })
        });
    }

    // Read-only variants (touch cost without write-set machinery).
    {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("single"));
        let vars: Vec<TVar<u64>> = (0..8u64).map(TVar::new).collect();
        let ctx = stm.register_thread();
        g.bench_function("one_partition_8r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read(&p, v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }
    {
        let stm = Stm::new();
        let parts: Vec<Arc<Partition>> = (0..8)
            .map(|i| stm.new_partition(PartitionConfig::named(format!("p{i}"))))
            .collect();
        let vars: Vec<TVar<u64>> = (0..8u64).map(TVar::new).collect();
        let ctx = stm.register_thread();
        g.bench_function("eight_partitions_8r", |b| {
            b.iter(|| {
                black_box(ctx.run(|tx| {
                    let mut s = 0u64;
                    for (p, v) in parts.iter().zip(&vars) {
                        s = s.wrapping_add(tx.read(p, v)?);
                    }
                    Ok(s)
                }))
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_touch_overhead);
criterion_main!(benches);
