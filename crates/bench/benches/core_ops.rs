//! Criterion microbenches for the STM engine's primitive costs:
//! transactional read/write under both visibilities, read-only vs update
//! commits, snapshot extension, and the cost profile the paper's tuning
//! decisions trade against each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use partstm_core::{Granularity, PartitionConfig, ReadMode, Stm, TVar};

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_reads");
    for (label, mode) in [
        ("invisible", ReadMode::Invisible),
        ("visible", ReadMode::Visible),
    ] {
        for n in [1usize, 16, 64, 256] {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("p").read_mode(mode));
            let vars: Vec<TVar<u64>> = (0..n as u64).map(TVar::new).collect();
            let ctx = stm.register_thread();
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let sum = ctx.run(|tx| {
                        let mut s = 0u64;
                        for v in &vars {
                            s = s.wrapping_add(tx.read_raw(&p, v)?);
                        }
                        Ok(s)
                    });
                    black_box(sum)
                })
            });
        }
    }
    g.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_writes");
    for (label, acquire) in [
        ("encounter", partstm_core::AcquireMode::Encounter),
        ("commit", partstm_core::AcquireMode::Commit),
    ] {
        for n in [1usize, 16, 64] {
            let stm = Stm::new();
            let p = stm.new_partition(PartitionConfig::named("p").acquire(acquire));
            let vars: Vec<TVar<u64>> = (0..n as u64).map(TVar::new).collect();
            let ctx = stm.register_thread();
            let mut i = 0u64;
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    i += 1;
                    ctx.run(|tx| {
                        for v in &vars {
                            tx.write_raw(&p, v, i)?;
                        }
                        Ok(())
                    });
                })
            });
        }
    }
    g.finish();
}

fn bench_granularity_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("granularity");
    for (label, gran) in [
        ("word", Granularity::Word),
        ("stripe6", Granularity::Stripe { shift: 6 }),
        ("plock", Granularity::PartitionLock),
    ] {
        let stm = Stm::new();
        let p = stm.new_partition(PartitionConfig::named("p").granularity(gran));
        let vars: Vec<TVar<u64>> = (0..64u64).map(TVar::new).collect();
        let ctx = stm.register_thread();
        g.bench_function(label, |b| {
            b.iter(|| {
                ctx.run(|tx| {
                    let mut s = 0u64;
                    for v in &vars {
                        s = s.wrapping_add(tx.read_raw(&p, v)?);
                    }
                    Ok(black_box(s))
                })
            })
        });
    }
    g.finish();
}

fn bench_read_own_writes(c: &mut Criterion) {
    let stm = Stm::new();
    let p = stm.new_partition(PartitionConfig::named("p"));
    let vars: Vec<TVar<u64>> = (0..64u64).map(TVar::new).collect();
    let ctx = stm.register_thread();
    c.bench_function("read_own_writes_64", |b| {
        b.iter(|| {
            ctx.run(|tx| {
                for (i, v) in vars.iter().enumerate() {
                    tx.write_raw(&p, v, i as u64)?;
                }
                let mut s = 0u64;
                for v in &vars {
                    s = s.wrapping_add(tx.read_raw(&p, v)?);
                }
                Ok(black_box(s))
            })
        })
    });
}

fn bench_empty_txn(c: &mut Criterion) {
    let stm = Stm::new();
    let ctx = stm.register_thread();
    c.bench_function("empty_txn", |b| {
        b.iter(|| ctx.run(|_tx| Ok(black_box(0u64))))
    });
}

criterion_group!(
    benches,
    bench_empty_txn,
    bench_reads,
    bench_writes,
    bench_granularity_mapping,
    bench_read_own_writes
);
criterion_main!(benches);
