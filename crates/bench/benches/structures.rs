//! Criterion microbenches of the transactional data structures:
//! single-threaded operation costs at steady-state sizes, across the
//! structures the paper's microbenchmarks drive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use partstm_bench::prefill;
use partstm_core::{PartitionConfig, Stm};
use partstm_structures::{IntSet, THashSet, TLinkedList, TRbTree, TSkipList};

fn structures(stm: &Stm, size: u64) -> Vec<(&'static str, Box<dyn IntSet>)> {
    vec![
        (
            "linked-list",
            Box::new(TLinkedList::with_capacity(
                stm.new_partition(PartitionConfig::named("l")),
                size as usize,
            )) as Box<dyn IntSet>,
        ),
        (
            "skip-list",
            Box::new(TSkipList::with_capacity(
                stm.new_partition(PartitionConfig::named("s")),
                size as usize,
            )),
        ),
        (
            "rb-tree",
            Box::new(TRbTree::with_capacity(
                stm.new_partition(PartitionConfig::named("t")),
                size as usize,
            )),
        ),
        (
            "hash-set",
            Box::new(THashSet::new(
                stm.new_partition(PartitionConfig::named("h")),
                size as usize / 4,
            )),
        ),
    ]
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    for size in [256u64, 4096] {
        // Keep the list workable: skip it at the large size.
        let stm = Stm::new();
        for (name, set) in structures(&stm, size) {
            if name == "linked-list" && size > 1024 {
                continue;
            }
            prefill(&stm, set.as_ref(), size);
            let ctx = stm.register_thread();
            let mut k = 0u64;
            g.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| {
                    k = (k + 7) % size;
                    black_box(ctx.run(|tx| set.contains(tx, k)))
                })
            });
        }
    }
    g.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_remove");
    let size = 1024u64;
    let stm = Stm::new();
    for (name, set) in structures(&stm, size) {
        prefill(&stm, set.as_ref(), size);
        let ctx = stm.register_thread();
        let mut k = 1u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                k = (k + 13) % size;
                ctx.run(|tx| set.insert(tx, k));
                ctx.run(|tx| set.remove(tx, k));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_insert_remove);
criterion_main!(benches);
