//! Transactional skip list.
//!
//! Probabilistic balanced set with O(log n) expected search paths — much
//! shorter read sets than the linked list, making it the "middle ground"
//! microbenchmark between list and tree. Node levels are derived
//! deterministically from a hash of the key (geometric, p = 1/2), which
//! keeps runs reproducible without per-structure RNG state.

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, MigrationSource, PVar,
    PVarBinding, PVarFields, Partition, PartitionId, PrivateGuard, Tx, TxResult,
};

use crate::intset::IntSet;

/// Maximum tower height (supports ~2^16 elements comfortably).
pub const MAX_LEVEL: usize = 16;

/// Skip-list node: key, tower height and forward links, all bound to the
/// list's partition at allocation.
pub struct Node {
    key: PVar<u64>,
    /// Height of this node's tower (1..=MAX_LEVEL). Transactional so
    /// recycled nodes stay under orec protection.
    level: PVar<u64>,
    next: [PVar<Option<Handle<Node>>>; MAX_LEVEL],
}

/// Deterministic tower height for a key (geometric distribution).
fn level_for(key: u64) -> usize {
    let h = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    ((h.trailing_zeros() as usize) + 1).min(MAX_LEVEL)
}

/// Transactional skip list over a partition.
pub struct TSkipList {
    part: Arc<Partition>,
    arena: Arena<Node>,
    heads: [PVar<Option<Handle<Node>>>; MAX_LEVEL],
}

impl PVarFields for Node {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.key);
        f(&self.level);
        for n in &self.next {
            f(n);
        }
    }
}

fn node_make(part: &Arc<Partition>) -> Node {
    Node {
        key: part.tvar(0),
        level: part.tvar(0),
        next: core::array::from_fn(|_| part.tvar(None)),
    }
}

impl TSkipList {
    /// Empty skip list guarded by `part`.
    pub fn new(part: Arc<Partition>) -> Self {
        TSkipList {
            arena: Arena::new_bound(&part, node_make),
            heads: core::array::from_fn(|_| part.tvar(None)),
            part,
        }
    }

    /// Empty skip list with pre-allocated node capacity.
    pub fn with_capacity(part: Arc<Partition>, cap: usize) -> Self {
        TSkipList {
            arena: Arena::with_capacity_bound(&part, cap, node_make),
            heads: core::array::from_fn(|_| part.tvar(None)),
            part,
        }
    }

    /// Id of the partition currently guarding this skip list (its arena
    /// home). Starts as the construction partition and moves when the
    /// repartitioner migrates the list.
    pub fn partition_of(&self) -> PartitionId {
        self.arena.partition_id().expect("bound arena")
    }

    /// Registers this skip list with a migration directory so the online
    /// repartitioner can account its nodes against profiler buckets and
    /// migrate it live.
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_collection(Arc::clone(self) as Arc<dyn MigratableCollection>);
    }

    /// Forward link at `lvl` from `from` (None = the head tower).
    fn next_of<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        from: Option<Handle<Node>>,
        lvl: usize,
    ) -> TxResult<Option<Handle<Node>>> {
        match from {
            Some(h) => tx.read(&self.arena.get(h).next[lvl]),
            None => tx.read(&self.heads[lvl]),
        }
    }

    fn set_next<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        from: Option<Handle<Node>>,
        lvl: usize,
        to: Option<Handle<Node>>,
    ) -> TxResult<()> {
        match from {
            Some(h) => tx.write(&self.arena.get(h).next[lvl], to),
            None => tx.write(&self.heads[lvl], to),
        }
    }

    /// Finds the predecessors of `key` at every level and the candidate
    /// node at level 0.
    #[allow(clippy::type_complexity)]
    fn locate<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        key: u64,
    ) -> TxResult<([Option<Handle<Node>>; MAX_LEVEL], Option<Handle<Node>>)> {
        let mut preds: [Option<Handle<Node>>; MAX_LEVEL] = [None; MAX_LEVEL];
        let mut pred: Option<Handle<Node>> = None;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut cur = self.next_of(tx, pred, lvl)?;
            while let Some(h) = cur {
                let k = tx.read(&self.arena.get(h).key)?;
                if k >= key {
                    break;
                }
                pred = Some(h);
                cur = self.next_of(tx, pred, lvl)?;
            }
            preds[lvl] = pred;
        }
        let candidate = self.next_of(tx, preds[0], 0)?;
        Ok((preds, candidate))
    }

    /// Non-transactional forward link at `lvl` (guard-gated paths only).
    fn next_direct(&self, from: Option<Handle<Node>>, lvl: usize) -> Option<Handle<Node>> {
        match from {
            Some(h) => self.arena.get(h).next[lvl].load_direct(),
            None => self.heads[lvl].load_direct(),
        }
    }

    /// Checks that `guard` holds this skip list's partition: O(1) in
    /// release (the arena's home binding), every binding in debug builds.
    fn assert_covered(&self, guard: &PrivateGuard) {
        assert!(
            guard.covers(&self.home_partition()),
            "skip list's partition is not the privatized one"
        );
        debug_assert!(
            guard.covers_source(self),
            "skip list torn across partitions; migrate it whole before privatizing"
        );
    }
}

impl MigrationSource for TSkipList {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        MigrationSource::for_each_binding(&self.arena, f);
        for h in &self.heads {
            f(h.binding());
        }
    }
}

impl MigratableCollection for TSkipList {
    fn home_partition(&self) -> Arc<Partition> {
        self.arena.partition().expect("bound arena")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        MigratableCollection::for_each_live_addr(&self.arena, f);
        for h in &self.heads {
            f(Migratable::var_addr(h));
        }
    }

    fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

impl IntSet for TSkipList {
    fn contains<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (_, cand) = self.locate(tx, key)?;
        match cand {
            Some(h) => Ok(tx.read(&self.arena.get(h).key)? == key),
            None => Ok(false),
        }
    }

    fn insert<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (preds, cand) = self.locate(tx, key)?;
        if let Some(h) = cand {
            if tx.read(&self.arena.get(h).key)? == key {
                return Ok(false);
            }
        }
        let lvl = level_for(key);
        let new = self.arena.alloc(tx)?;
        let node = self.arena.get(new);
        tx.write(&node.key, key)?;
        tx.write(&node.level, lvl as u64)?;
        for (i, &pred) in preds.iter().enumerate().take(lvl) {
            let succ = self.next_of(tx, pred, i)?;
            tx.write(&node.next[i], succ)?;
            self.set_next(tx, pred, i, Some(new))?;
        }
        // Clear unused tower levels (slot may be recycled).
        for i in lvl..MAX_LEVEL {
            tx.write(&node.next[i], None)?;
        }
        Ok(true)
    }

    fn bulk_insert(&self, guard: &PrivateGuard, key: u64) -> bool {
        self.assert_covered(guard);
        // Direct port of `locate` + `insert`: plain loads and stores, no
        // orec traffic — the hold excludes every transactional writer.
        let mut preds: [Option<Handle<Node>>; MAX_LEVEL] = [None; MAX_LEVEL];
        let mut pred: Option<Handle<Node>> = None;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut cur = self.next_direct(pred, lvl);
            while let Some(h) = cur {
                if self.arena.get(h).key.load_direct() >= key {
                    break;
                }
                pred = Some(h);
                cur = self.next_direct(pred, lvl);
            }
            preds[lvl] = pred;
        }
        if let Some(h) = self.next_direct(preds[0], 0) {
            if self.arena.get(h).key.load_direct() == key {
                return false;
            }
        }
        let lvl = level_for(key);
        let new = self.arena.alloc_raw();
        let node = self.arena.get(new);
        node.key.store_direct(key);
        node.level.store_direct(lvl as u64);
        for (i, &pred) in preds.iter().enumerate().take(lvl) {
            node.next[i].store_direct(self.next_direct(pred, i));
            match pred {
                Some(p) => self.arena.get(p).next[i].store_direct(Some(new)),
                None => self.heads[i].store_direct(Some(new)),
            }
        }
        for i in lvl..MAX_LEVEL {
            node.next[i].store_direct(None);
        }
        true
    }

    fn remove<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (preds, cand) = self.locate(tx, key)?;
        let Some(h) = cand else { return Ok(false) };
        let node = self.arena.get(h);
        if tx.read(&node.key)? != key {
            return Ok(false);
        }
        let lvl = tx.read(&node.level)? as usize;
        for (i, &pred) in preds.iter().enumerate().take(lvl) {
            // The predecessor at level i links to us iff our tower reaches
            // level i (locate's preds are the strict predecessors of key).
            let succ = tx.read(&node.next[i])?;
            let linked = self.next_of(tx, pred, i)?;
            if linked == Some(h) {
                self.set_next(tx, pred, i, succ)?;
            }
        }
        self.arena.free(tx, h);
        Ok(true)
    }

    fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    fn snapshot_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.heads[0].load_direct();
        while let Some(h) = cur {
            let node = self.arena.get(h);
            out.push(node.key.load_direct());
            cur = node.next[0].load_direct();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intset::testing;
    use partstm_core::{AcquireMode, PartitionConfig, Stm};

    fn fresh(stm: &Stm) -> TSkipList {
        TSkipList::new(stm.new_partition(PartitionConfig::named("skip")))
    }

    #[test]
    fn level_distribution_is_geometricish() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        for k in 0..100_000u64 {
            counts[level_for(k)] += 1;
        }
        assert!(counts[1] > 40_000, "about half should be level 1");
        assert!(counts[2] > 20_000 && counts[2] < 30_000);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn basic_ops_and_order() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        let ctx = stm.register_thread();
        for k in [42u64, 7, 99, 1, 55, 23] {
            assert!(ctx.run(|tx| sl.insert(tx, k)));
        }
        assert!(!ctx.run(|tx| sl.insert(tx, 55)));
        assert!(ctx.run(|tx| sl.contains(tx, 23)));
        assert!(!ctx.run(|tx| sl.contains(tx, 24)));
        assert!(ctx.run(|tx| sl.remove(tx, 42)));
        assert!(!ctx.run(|tx| sl.remove(tx, 42)));
        assert_eq!(sl.snapshot_keys(), vec![1, 7, 23, 55, 99]);
    }

    #[test]
    fn tall_towers_unlink_fully() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        let ctx = stm.register_thread();
        // Find a key with a tall tower to exercise multi-level unlink.
        let tall = (0..10_000u64).max_by_key(|&k| level_for(k)).unwrap();
        assert!(level_for(tall) >= 8);
        for k in 0..200u64 {
            ctx.run(|tx| sl.insert(tx, k));
        }
        ctx.run(|tx| sl.insert(tx, tall + 20_000));
        assert!(ctx.run(|tx| sl.remove(tx, tall + 20_000)));
        // All levels of the head tower must no longer reach the removed key.
        for lvl in 0..MAX_LEVEL {
            let mut cur = sl.heads[lvl].load_direct();
            while let Some(h) = cur {
                let node = sl.arena.get(h);
                assert_ne!(node.key.load_direct(), tall + 20_000);
                cur = node.next[lvl].load_direct();
            }
        }
    }

    #[test]
    fn sequential_model_conformance() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        testing::check_sequential_model(&stm, &sl);
    }

    #[test]
    fn bulk_insert_matches_transactional() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        testing::check_bulk_matches_transactional(&stm, &sl);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        testing::check_concurrent_disjoint(&stm, &sl);
    }

    #[test]
    fn concurrent_contended_invariants() {
        let stm = Stm::new();
        let sl = fresh(&stm);
        testing::check_concurrent_contended(&stm, &sl);
    }

    #[test]
    fn concurrent_contended_commit_time_locking() {
        let stm = Stm::new();
        let sl = TSkipList::new(
            stm.new_partition(PartitionConfig::named("ctl").acquire(AcquireMode::Commit)),
        );
        testing::check_concurrent_contended(&stm, &sl);
    }
}
