//! The integer-set interface shared by the microbenchmark structures.
//!
//! The paper's microbenchmarks (as in the TinySTM/LSA evaluations) are
//! *integer sets*: `insert`, `remove`, `contains` over a bounded key range,
//! driven with a configurable update rate. Every implementation here owns
//! its partition, so a multi-structure application automatically exercises
//! multi-partition transactions.

use std::sync::Arc;

use partstm_core::{Partition, PrivateGuard, Tx, TxResult};

/// A transactional set of `u64` keys.
pub trait IntSet: Send + Sync {
    /// Returns whether `key` is in the set.
    fn contains<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool>;

    /// Inserts `key`; returns `true` if it was absent.
    fn insert<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool>;

    /// Guard-gated insert at plain-memory speed — no orec traffic, no
    /// read-set, no retry loop. For bulk loads while the structure's
    /// partition is held by a [`PrivateGuard`] (see
    /// [`partstm_core::privatize`]); panics if `guard` does not cover the
    /// structure's partition. Returns `true` if the key was absent.
    fn bulk_insert(&self, guard: &PrivateGuard, key: u64) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool>;

    /// The partition this structure was constructed in. After a runtime
    /// migration the structure's *current* home may differ — see each
    /// structure's `partition_of` (the handle returned here stays a valid
    /// partition either way).
    fn partition(&self) -> &Arc<Partition>;

    /// Non-transactional snapshot of all keys in ascending order. Only
    /// meaningful while no concurrent transactions run (tests/verification).
    fn snapshot_keys(&self) -> Vec<u64>;
}

#[cfg(test)]
pub(crate) mod testing {
    //! Shared conformance tests run against every `IntSet` implementation.

    use super::*;
    use partstm_core::Stm;
    use std::collections::BTreeSet;

    /// Sequential semantics vs a `BTreeSet` model under a deterministic
    /// op mix.
    pub fn check_sequential_model(stm: &Stm, set: &dyn IntSet) {
        let ctx = stm.register_thread();
        let mut model = BTreeSet::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 128;
            match i % 3 {
                0 => {
                    let expect = model.insert(key);
                    let got = ctx.run(|tx| set.insert(tx, key));
                    assert_eq!(got, expect, "insert({key}) step {i}");
                }
                1 => {
                    let expect = model.remove(&key);
                    let got = ctx.run(|tx| set.remove(tx, key));
                    assert_eq!(got, expect, "remove({key}) step {i}");
                }
                _ => {
                    let expect = model.contains(&key);
                    let got = ctx.run(|tx| set.contains(tx, key));
                    assert_eq!(got, expect, "contains({key}) step {i}");
                }
            }
        }
        let keys: Vec<u64> = model.into_iter().collect();
        assert_eq!(set.snapshot_keys(), keys, "final snapshot");
    }

    /// Concurrent smoke: threads work on disjoint key ranges; the final
    /// contents must be exactly the union of the per-thread survivors.
    pub fn check_concurrent_disjoint(stm: &Stm, set: &dyn IntSet) {
        let threads = 4u64;
        let per = 64u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let ctx = stm.register_thread();
                s.spawn(move || {
                    let base = t * per;
                    for k in base..base + per {
                        assert!(ctx.run(|tx| set.insert(tx, k)));
                    }
                    // Remove the odd keys again.
                    for k in (base..base + per).filter(|k| k % 2 == 1) {
                        assert!(ctx.run(|tx| set.remove(tx, k)));
                    }
                });
            }
        });
        let expect: Vec<u64> = (0..threads * per).filter(|k| k % 2 == 0).collect();
        assert_eq!(set.snapshot_keys(), expect);
    }

    /// Bulk inserts under a [`PrivateGuard`] must agree with a model and
    /// leave the structure fully transactional again after republish:
    /// same return values as `BTreeSet::insert`, same final contents, and
    /// post-republish transactional ops compose with the bulk-loaded
    /// state.
    pub fn check_bulk_matches_transactional(stm: &Stm, set: &dyn IntSet) {
        let mut model = BTreeSet::new();
        {
            let guard = stm.privatize(set.partition()).expect("privatize");
            let mut state = 0xfeed_face_cafe_beefu64;
            for _ in 0..500 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let key = state % 128;
                assert_eq!(
                    set.bulk_insert(&guard, key),
                    model.insert(key),
                    "bulk_insert({key})"
                );
            }
            guard.republish();
        }
        // The partition is back in transactional service: ops must see the
        // bulk-loaded contents and compose with them.
        let ctx = stm.register_thread();
        for key in [1u64, 200, 201] {
            let expect = model.insert(key);
            assert_eq!(ctx.run(|tx| set.insert(tx, key)), expect, "insert({key})");
        }
        for key in [0u64, 63, 127, 200] {
            let expect = model.contains(&key);
            assert_eq!(
                ctx.run(|tx| set.contains(tx, key)),
                expect,
                "contains({key})"
            );
        }
        let keys: Vec<u64> = model.into_iter().collect();
        assert_eq!(set.snapshot_keys(), keys, "final snapshot");
    }

    /// Concurrent contended mix on a tiny range; verify against an oracle
    /// replay is impossible, so check only invariants: snapshot sorted,
    /// unique, within range — and every op's return value consistent
    /// (insert true XOR already-present).
    pub fn check_concurrent_contended(stm: &Stm, set: &dyn IntSet) {
        use core::sync::atomic::{AtomicI64, Ordering};
        let net = AtomicI64::new(0); // inserts-succeeded - removes-succeeded
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ctx = stm.register_thread();
                let net = &net;
                s.spawn(move || {
                    let mut state = 0x9e37_79b9 ^ (t + 1);
                    for _ in 0..1500 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let key = state % 16;
                        // Op drawn from different bits than the key, or
                        // inserts/removes would pair to fixed key classes.
                        if (state >> 17) & 1 == 0 {
                            if ctx.run(|tx| set.insert(tx, key)) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if ctx.run(|tx| set.remove(tx, key)) {
                            net.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let keys = set.snapshot_keys();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "snapshot must be sorted and unique");
        assert!(keys.iter().all(|&k| k < 16));
        assert_eq!(
            keys.len() as i64,
            net.load(Ordering::Relaxed),
            "set size must equal net successful inserts"
        );
    }
}
