//! Sorted singly-linked integer list.
//!
//! The classic STM stress structure: `contains`/`insert`/`remove` walk the
//! list from the head, so transactions have read sets proportional to the
//! list length — the workload where invisible reads' validation cost and
//! visible reads' per-read RMW cost pull hardest in opposite directions.

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, MigrationSource, PVar,
    PVarBinding, PVarFields, Partition, PartitionId, PrivateGuard, Tx, TxResult,
};

use crate::intset::IntSet;

/// List node: key + next link, both bound to the list's partition at
/// allocation. All fields transactional (recycled nodes must only change
/// under orec protection; see `partstm_core::arena`).
pub struct Node {
    key: PVar<u64>,
    next: PVar<Option<Handle<Node>>>,
}

impl PVarFields for Node {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.key);
        f(&self.next);
    }
}

/// Sorted transactional linked list over a partition.
pub struct TLinkedList {
    part: Arc<Partition>,
    arena: Arena<Node>,
    head: PVar<Option<Handle<Node>>>,
}

fn node_make(part: &Arc<Partition>) -> Node {
    Node {
        key: part.tvar(0),
        next: part.tvar(None),
    }
}

impl TLinkedList {
    /// Empty list guarded by `part`.
    pub fn new(part: Arc<Partition>) -> Self {
        TLinkedList {
            arena: Arena::new_bound(&part, node_make),
            head: part.tvar(None),
            part,
        }
    }

    /// Empty list with room for `cap` nodes pre-allocated.
    pub fn with_capacity(part: Arc<Partition>, cap: usize) -> Self {
        TLinkedList {
            arena: Arena::with_capacity_bound(&part, cap, node_make),
            head: part.tvar(None),
            part,
        }
    }

    /// Id of the partition currently guarding this list (its arena home).
    /// Starts as the construction partition and moves when the
    /// repartitioner migrates the list.
    pub fn partition_of(&self) -> PartitionId {
        self.arena.partition_id().expect("bound arena")
    }

    /// Registers this list with a migration directory so the online
    /// repartitioner can account its nodes against profiler buckets and
    /// migrate it live.
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_collection(Arc::clone(self) as Arc<dyn MigratableCollection>);
    }

    /// Walks to the first node with `node.key >= key`; returns
    /// `(prev, cur)` handles.
    #[allow(clippy::type_complexity)]
    fn locate<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        key: u64,
    ) -> TxResult<(Option<Handle<Node>>, Option<Handle<Node>>)> {
        let mut prev: Option<Handle<Node>> = None;
        let mut cur = tx.read(&self.head)?;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            let k = tx.read(&node.key)?;
            if k >= key {
                break;
            }
            prev = Some(h);
            cur = tx.read(&node.next)?;
        }
        Ok((prev, cur))
    }

    fn link_after<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        prev: Option<Handle<Node>>,
        new: Handle<Node>,
    ) -> TxResult<()> {
        match prev {
            Some(p) => tx.write(&self.arena.get(p).next, Some(new)),
            None => tx.write(&self.head, Some(new)),
        }
    }

    /// Checks that `guard` holds this list's partition: O(1) in release
    /// (the arena's home binding), every binding in debug builds.
    fn assert_covered(&self, guard: &PrivateGuard) {
        assert!(
            guard.covers(&self.home_partition()),
            "list's partition is not the privatized one"
        );
        debug_assert!(
            guard.covers_source(self),
            "list torn across partitions; migrate it whole before privatizing"
        );
    }
}

impl MigrationSource for TLinkedList {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        // Arena first (home binding before slots — see the protocol docs),
        // then the structure's roots.
        MigrationSource::for_each_binding(&self.arena, f);
        f(self.head.binding());
    }
}

impl MigratableCollection for TLinkedList {
    fn home_partition(&self) -> Arc<Partition> {
        self.arena.partition().expect("bound arena")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        MigratableCollection::for_each_live_addr(&self.arena, f);
        f(Migratable::var_addr(&self.head));
    }

    fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

impl IntSet for TLinkedList {
    fn contains<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (_, cur) = self.locate(tx, key)?;
        match cur {
            Some(h) => Ok(tx.read(&self.arena.get(h).key)? == key),
            None => Ok(false),
        }
    }

    fn insert<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (prev, cur) = self.locate(tx, key)?;
        if let Some(h) = cur {
            if tx.read(&self.arena.get(h).key)? == key {
                return Ok(false);
            }
        }
        let new = self.arena.alloc(tx)?;
        let node = self.arena.get(new);
        tx.write(&node.key, key)?;
        tx.write(&node.next, cur)?;
        self.link_after(tx, prev, new)?;
        Ok(true)
    }

    fn bulk_insert(&self, guard: &PrivateGuard, key: u64) -> bool {
        self.assert_covered(guard);
        // Direct port of `locate` + `insert`: plain loads and stores, no
        // orec traffic — the hold excludes every transactional writer.
        let mut prev: Option<Handle<Node>> = None;
        let mut cur = self.head.load_direct();
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if node.key.load_direct() >= key {
                break;
            }
            prev = Some(h);
            cur = node.next.load_direct();
        }
        if let Some(h) = cur {
            if self.arena.get(h).key.load_direct() == key {
                return false;
            }
        }
        let new = self.arena.alloc_raw();
        let node = self.arena.get(new);
        node.key.store_direct(key);
        node.next.store_direct(cur);
        match prev {
            Some(p) => self.arena.get(p).next.store_direct(Some(new)),
            None => self.head.store_direct(Some(new)),
        }
        true
    }

    fn remove<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        let (prev, cur) = self.locate(tx, key)?;
        let Some(h) = cur else { return Ok(false) };
        let node = self.arena.get(h);
        if tx.read(&node.key)? != key {
            return Ok(false);
        }
        let next = tx.read(&node.next)?;
        match prev {
            Some(p) => tx.write(&self.arena.get(p).next, next)?,
            None => tx.write(&self.head, next)?,
        }
        self.arena.free(tx, h);
        Ok(true)
    }

    fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    fn snapshot_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.head.load_direct();
        while let Some(h) = cur {
            let node = self.arena.get(h);
            out.push(node.key.load_direct());
            cur = node.next.load_direct();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intset::testing;
    use partstm_core::{PartitionConfig, ReadMode, Stm};

    fn fresh(stm: &Stm) -> TLinkedList {
        TLinkedList::new(stm.new_partition(PartitionConfig::named("list")))
    }

    #[test]
    fn empty_list_behaviour() {
        let stm = Stm::new();
        let l = fresh(&stm);
        let ctx = stm.register_thread();
        assert!(!ctx.run(|tx| l.contains(tx, 5)));
        assert!(!ctx.run(|tx| l.remove(tx, 5)));
        assert!(l.snapshot_keys().is_empty());
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let stm = Stm::new();
        let l = fresh(&stm);
        let ctx = stm.register_thread();
        for k in [5u64, 1, 9, 3, 7, 0, 2] {
            assert!(ctx.run(|tx| l.insert(tx, k)));
        }
        assert!(!ctx.run(|tx| l.insert(tx, 3)), "duplicate rejected");
        assert_eq!(l.snapshot_keys(), vec![0, 1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn remove_head_middle_tail() {
        let stm = Stm::new();
        let l = fresh(&stm);
        let ctx = stm.register_thread();
        for k in 0..6u64 {
            ctx.run(|tx| l.insert(tx, k));
        }
        assert!(ctx.run(|tx| l.remove(tx, 0)), "head");
        assert!(ctx.run(|tx| l.remove(tx, 3)), "middle");
        assert!(ctx.run(|tx| l.remove(tx, 5)), "tail");
        assert_eq!(l.snapshot_keys(), vec![1, 2, 4]);
    }

    #[test]
    fn node_recycling_reuses_slots() {
        let stm = Stm::new();
        let l = fresh(&stm);
        let ctx = stm.register_thread();
        for round in 0..50u64 {
            ctx.run(|tx| l.insert(tx, round % 4));
            ctx.run(|tx| l.remove(tx, round % 4));
        }
        assert!(l.snapshot_keys().is_empty());
        assert!(
            l.arena.live() <= 2,
            "slots must recycle, live={}",
            l.arena.live()
        );
    }

    #[test]
    fn sequential_model_conformance() {
        let stm = Stm::new();
        let l = fresh(&stm);
        testing::check_sequential_model(&stm, &l);
    }

    #[test]
    fn bulk_insert_matches_transactional() {
        let stm = Stm::new();
        let l = fresh(&stm);
        testing::check_bulk_matches_transactional(&stm, &l);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let stm = Stm::new();
        let l = fresh(&stm);
        testing::check_concurrent_disjoint(&stm, &l);
    }

    #[test]
    fn concurrent_contended_invariants() {
        let stm = Stm::new();
        let l = fresh(&stm);
        testing::check_concurrent_contended(&stm, &l);
    }

    #[test]
    fn concurrent_contended_visible_reads() {
        let stm = Stm::new();
        let l = TLinkedList::new(
            stm.new_partition(PartitionConfig::named("vis").read_mode(ReadMode::Visible)),
        );
        testing::check_concurrent_contended(&stm, &l);
    }
}
