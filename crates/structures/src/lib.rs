//! # partstm-structures — transactional data structures
//!
//! The benchmark substrates of the reproduction: the integer-set
//! microbenchmark structures the paper's evaluation drives (sorted linked
//! list, skip list, red-black tree, hash set) plus the bank-accounts
//! atomicity probe. Every structure is built on `partstm-core`'s arena +
//! `TVar` words and owns the partition that guards it, so composing
//! structures composes partitions — exactly the application shape the
//! paper's per-partition tuning exploits.
//!
//! ```
//! use partstm_core::{PartitionConfig, Stm};
//! use partstm_structures::{IntSet, TRbTree};
//!
//! let stm = Stm::new();
//! let tree = TRbTree::new(stm.new_partition(PartitionConfig::named("tree")));
//! let ctx = stm.register_thread();
//! ctx.run(|tx| tree.insert(tx, 42));
//! assert!(ctx.run(|tx| tree.contains(tx, 42)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod hashmap;
pub mod intset;
pub mod linkedlist;
pub mod queue;
pub mod rbtree;
pub mod skiplist;

pub use bank::Bank;
pub use hashmap::{THashMap, THashSet};
pub use intset::IntSet;
pub use linkedlist::TLinkedList;
pub use queue::TQueue;
pub use rbtree::TRbTree;
pub use skiplist::TSkipList;
