//! Transactional FIFO queue (linked, two-ended).
//!
//! Needed by the intruder benchmark (packet and decoded-flow queues) and a
//! useful substrate on its own. Head and tail pointers are the natural
//! contention hotspots, which makes a queue partition the textbook
//! candidate for coarse conflict detection under load.

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, MigrationSource, PVar,
    PVarBinding, PVarFields, Partition, PartitionId, PrivateGuard, Tx, TxResult, TxWord,
};

/// Queue node: one value word plus the next link, bound to the queue's
/// partition at allocation.
pub struct Node {
    val: PVar<u64>,
    next: PVar<Option<Handle<Node>>>,
}

impl PVarFields for Node {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.val);
        f(&self.next);
    }
}

/// Transactional FIFO queue of word-packable values.
pub struct TQueue<T: TxWord> {
    part: Arc<Partition>,
    arena: Arena<Node>,
    head: PVar<Option<Handle<Node>>>,
    tail: PVar<Option<Handle<Node>>>,
    len: PVar<u64>,
    _m: core::marker::PhantomData<T>,
}

fn node_make(part: &Arc<Partition>) -> Node {
    Node {
        val: part.tvar(0),
        next: part.tvar(None),
    }
}

impl<T: TxWord> TQueue<T> {
    /// Empty queue guarded by `part`.
    pub fn new(part: Arc<Partition>) -> Self {
        Self::with_capacity(part, 0)
    }

    /// Empty queue with pre-allocated node capacity.
    pub fn with_capacity(part: Arc<Partition>, cap: usize) -> Self {
        TQueue {
            arena: Arena::with_capacity_bound(&part, cap, node_make),
            head: part.tvar(None),
            tail: part.tvar(None),
            len: part.tvar(0),
            part,
            _m: core::marker::PhantomData,
        }
    }

    /// Id of the partition currently guarding this queue (its arena home).
    /// Starts as the construction partition and moves when the
    /// repartitioner migrates the queue.
    pub fn partition_of(&self) -> PartitionId {
        self.arena.partition_id().expect("bound arena")
    }

    /// Registers this queue with a migration directory so the online
    /// repartitioner can account its nodes against profiler buckets and
    /// migrate it live.
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry)
    where
        T: Send + Sync + 'static,
    {
        dir.register_collection(Arc::clone(self) as Arc<dyn MigratableCollection>);
    }

    /// Appends a value at the tail.
    pub fn push_back<'e>(&'e self, tx: &mut Tx<'e, '_>, value: T) -> TxResult<()> {
        let h = self.arena.alloc(tx)?;
        let n = self.arena.get(h);
        tx.write(&n.val, value.to_word())?;
        tx.write(&n.next, None)?;
        match tx.read(&self.tail)? {
            Some(t) => tx.write(&self.arena.get(t).next, Some(h))?,
            None => tx.write(&self.head, Some(h))?,
        }
        tx.write(&self.tail, Some(h))?;
        let l = tx.read(&self.len)?;
        tx.write(&self.len, l + 1)
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn pop_front<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<Option<T>> {
        let Some(h) = tx.read(&self.head)? else {
            return Ok(None);
        };
        let n = self.arena.get(h);
        let val = tx.read(&n.val)?;
        let next = tx.read(&n.next)?;
        tx.write(&self.head, next)?;
        if next.is_none() {
            tx.write(&self.tail, None)?;
        }
        let l = tx.read(&self.len)?;
        tx.write(&self.len, l - 1)?;
        self.arena.free(tx, h);
        Ok(Some(T::from_word(val)))
    }

    /// Current length.
    pub fn len_tx<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<u64> {
        tx.read(&self.len)
    }

    /// Whether the queue is empty.
    pub fn is_empty_tx<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<bool> {
        Ok(tx.read(&self.head)?.is_none())
    }

    /// The partition guarding this queue.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Guard-gated append at plain-memory speed — no orec traffic, no
    /// undo log, no retry loop. For bulk loads while the queue's
    /// partition is held by a [`PrivateGuard`]; see
    /// [`partstm_core::privatize`] for the safety argument.
    pub fn bulk_push_back(&self, guard: &PrivateGuard, value: T)
    where
        T: Send + Sync,
    {
        assert!(
            guard.covers(&self.arena.partition().expect("bound arena")),
            "queue's partition is not the privatized one"
        );
        debug_assert!(
            guard.covers_source(self),
            "queue torn across partitions; migrate it whole before privatizing"
        );
        let h = self.arena.alloc_raw();
        let n = self.arena.get(h);
        n.val.store_direct(value.to_word());
        n.next.store_direct(None);
        match self.tail.load_direct() {
            Some(t) => self.arena.get(t).next.store_direct(Some(h)),
            None => self.head.store_direct(Some(h)),
        }
        self.tail.store_direct(Some(h));
        self.len.store_direct(self.len.load_direct() + 1);
    }

    /// Non-transactional front-to-back snapshot (quiescent only).
    pub fn snapshot(&self) -> Vec<T> {
        let mut out = Vec::new();
        let mut cur = self.head.load_direct();
        while let Some(h) = cur {
            let n = self.arena.get(h);
            out.push(T::from_word(n.val.load_direct()));
            cur = n.next.load_direct();
        }
        out
    }
}

impl<T: TxWord + Send + Sync> MigrationSource for TQueue<T> {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        MigrationSource::for_each_binding(&self.arena, f);
        f(self.head.binding());
        f(self.tail.binding());
        f(self.len.binding());
    }
}

impl<T: TxWord + Send + Sync> MigratableCollection for TQueue<T> {
    fn home_partition(&self) -> Arc<Partition> {
        self.arena.partition().expect("bound arena")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        MigratableCollection::for_each_live_addr(&self.arena, f);
        f(Migratable::var_addr(&self.head));
        f(Migratable::var_addr(&self.tail));
        f(Migratable::var_addr(&self.len));
    }

    fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, Stm};

    fn fresh(stm: &Stm) -> TQueue<u64> {
        TQueue::new(stm.new_partition(PartitionConfig::named("q")))
    }

    #[test]
    fn fifo_order() {
        let stm = Stm::new();
        let q = fresh(&stm);
        let ctx = stm.register_thread();
        for i in 0..10u64 {
            ctx.run(|tx| q.push_back(tx, i));
        }
        assert_eq!(q.snapshot(), (0..10).collect::<Vec<_>>());
        for i in 0..10u64 {
            assert_eq!(ctx.run(|tx| q.pop_front(tx)), Some(i));
        }
        assert_eq!(ctx.run(|tx| q.pop_front(tx)), None);
        assert!(ctx.run(|tx| q.is_empty_tx(tx)));
    }

    #[test]
    fn interleaved_push_pop_keeps_len() {
        let stm = Stm::new();
        let q = fresh(&stm);
        let ctx = stm.register_thread();
        ctx.run(|tx| q.push_back(tx, 1));
        ctx.run(|tx| q.push_back(tx, 2));
        assert_eq!(ctx.run(|tx| q.pop_front(tx)), Some(1));
        ctx.run(|tx| q.push_back(tx, 3));
        assert_eq!(ctx.run(|tx| q.len_tx(tx)), 2);
        assert_eq!(ctx.run(|tx| q.pop_front(tx)), Some(2));
        assert_eq!(ctx.run(|tx| q.pop_front(tx)), Some(3));
        assert_eq!(ctx.run(|tx| q.len_tx(tx)), 0);
    }

    #[test]
    fn nodes_recycle() {
        let stm = Stm::new();
        let q = fresh(&stm);
        let ctx = stm.register_thread();
        for round in 0..100u64 {
            ctx.run(|tx| q.push_back(tx, round));
            ctx.run(|tx| q.pop_front(tx).map(|_| ()));
        }
        assert!(q.arena.live() <= 1, "live={}", q.arena.live());
    }

    #[test]
    fn bulk_push_then_transactional_pop() {
        let stm = Stm::new();
        let q = fresh(&stm);
        {
            let guard = stm.privatize(q.partition()).expect("privatize");
            for i in 0..50u64 {
                q.bulk_push_back(&guard, i);
            }
        }
        assert_eq!(q.snapshot(), (0..50).collect::<Vec<_>>());
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| q.len_tx(tx)), 50);
        for i in 0..50u64 {
            assert_eq!(ctx.run(|tx| q.pop_front(tx)), Some(i));
        }
        assert_eq!(ctx.run(|tx| q.pop_front(tx)), None);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        use core::sync::atomic::{AtomicU64, Ordering};
        let stm = Stm::new();
        let q = fresh(&stm);
        let produced = AtomicU64::new(0);
        let consumed = AtomicU64::new(0);
        let sum_in = AtomicU64::new(0);
        let sum_out = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let ctx = stm.register_thread();
                let (q, produced, sum_in) = (&q, &produced, &sum_in);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let v = t * 10_000 + i;
                        ctx.run(|tx| q.push_back(tx, v));
                        produced.fetch_add(1, Ordering::Relaxed);
                        sum_in.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..3 {
                let ctx = stm.register_thread();
                let (q, produced, consumed, sum_out) = (&q, &produced, &consumed, &sum_out);
                s.spawn(move || loop {
                    match ctx.run(|tx| q.pop_front(tx)) {
                        Some(v) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            sum_out.fetch_add(v, Ordering::Relaxed);
                        }
                        None => {
                            if produced.load(Ordering::Relaxed) == 6000
                                && consumed.load(Ordering::Relaxed) == 6000
                            {
                                break;
                            }
                            std::thread::yield_now();
                            if consumed.load(Ordering::Relaxed) == produced.load(Ordering::Relaxed)
                                && produced.load(Ordering::Relaxed) == 6000
                            {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(produced.load(Ordering::Relaxed), 6000);
        assert_eq!(consumed.load(Ordering::Relaxed), 6000);
        assert_eq!(
            sum_in.load(Ordering::Relaxed),
            sum_out.load(Ordering::Relaxed),
            "every pushed value popped exactly once"
        );
        assert!(q.snapshot().is_empty());
    }
}
