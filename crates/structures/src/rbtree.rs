//! Transactional red-black tree (map `u64 -> u64`).
//!
//! A port of the STAMP-style red-black tree to the partitioned STM: CLRS
//! insertion/deletion with parent pointers, `None` playing the role of the
//! nil sentinel. Because `None` carries no parent pointer, the delete fixup
//! threads the fixup node's parent (`xp`) explicitly instead of writing a
//! shared sentinel (which would be a contention hotspot and a correctness
//! hazard under concurrency).
//!
//! Rebalancing makes update transactions write bursts of nodes near the
//! root — the workload where conflict-detection granularity and read
//! visibility interact most visibly (paper §1's red-black tree example).

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, MigrationSource, PVar,
    PVarBinding, PVarFields, Partition, PartitionId, PrivateGuard, Tx, TxResult,
};

use crate::intset::IntSet;

type H = Option<Handle<Node>>;

/// Tree node. All fields transactional, bound to the tree's partition at
/// allocation.
pub struct Node {
    key: PVar<u64>,
    val: PVar<u64>,
    left: PVar<H>,
    right: PVar<H>,
    parent: PVar<H>,
    red: PVar<bool>,
}

impl PVarFields for Node {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.key);
        f(&self.val);
        f(&self.left);
        f(&self.right);
        f(&self.parent);
        f(&self.red);
    }
}

/// Transactional red-black tree over a partition.
pub struct TRbTree {
    part: Arc<Partition>,
    arena: Arena<Node>,
    root: PVar<H>,
}

macro_rules! field {
    ($get:ident, $set:ident, $field:ident, $t:ty) => {
        fn $get<'e>(&'e self, tx: &mut Tx<'e, '_>, h: Handle<Node>) -> TxResult<$t> {
            tx.read(&self.arena.get(h).$field)
        }
        fn $set<'e>(&'e self, tx: &mut Tx<'e, '_>, h: Handle<Node>, v: $t) -> TxResult<()> {
            tx.write(&self.arena.get(h).$field, v)
        }
    };
}

fn node_make(part: &Arc<Partition>) -> Node {
    Node {
        key: part.tvar(0),
        val: part.tvar(0),
        left: part.tvar(None),
        right: part.tvar(None),
        parent: part.tvar(None),
        red: part.tvar(false),
    }
}

impl TRbTree {
    /// Empty tree guarded by `part`.
    pub fn new(part: Arc<Partition>) -> Self {
        TRbTree {
            arena: Arena::new_bound(&part, node_make),
            root: part.tvar(None),
            part,
        }
    }

    /// Empty tree with pre-allocated node capacity.
    pub fn with_capacity(part: Arc<Partition>, cap: usize) -> Self {
        TRbTree {
            arena: Arena::with_capacity_bound(&part, cap, node_make),
            root: part.tvar(None),
            part,
        }
    }

    /// Id of the partition currently guarding this tree (its arena home).
    /// Starts as the construction partition and moves when the
    /// repartitioner migrates the tree.
    pub fn partition_of(&self) -> PartitionId {
        self.arena.partition_id().expect("bound arena")
    }

    /// Registers this tree with a migration directory so the online
    /// repartitioner can account its nodes against profiler buckets and
    /// migrate it live.
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_collection(Arc::clone(self) as Arc<dyn MigratableCollection>);
    }

    field!(left, set_left, left, H);
    field!(right, set_right, right, H);
    field!(parent, set_parent, parent, H);
    field!(key_of, set_key, key, u64);
    field!(val_of, set_val, val, u64);

    fn is_red<'e>(&'e self, tx: &mut Tx<'e, '_>, h: H) -> TxResult<bool> {
        match h {
            Some(n) => tx.read(&self.arena.get(n).red),
            None => Ok(false), // nil is black
        }
    }

    fn set_red<'e>(&'e self, tx: &mut Tx<'e, '_>, h: Handle<Node>, red: bool) -> TxResult<()> {
        tx.write(&self.arena.get(h).red, red)
    }

    fn root_of<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<H> {
        tx.read(&self.root)
    }

    /// Replaces `old`'s slot in its parent (or the root) with `new`.
    fn replace_child<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        parent: H,
        old: Handle<Node>,
        new: H,
    ) -> TxResult<()> {
        match parent {
            None => tx.write(&self.root, new),
            Some(p) => {
                if self.left(tx, p)? == Some(old) {
                    self.set_left(tx, p, new)
                } else {
                    self.set_right(tx, p, new)
                }
            }
        }
    }

    fn rotate_left<'e>(&'e self, tx: &mut Tx<'e, '_>, x: Handle<Node>) -> TxResult<()> {
        let y = self.right(tx, x)?.expect("rotate_left without right child");
        let yl = self.left(tx, y)?;
        self.set_right(tx, x, yl)?;
        if let Some(n) = yl {
            self.set_parent(tx, n, Some(x))?;
        }
        let xp = self.parent(tx, x)?;
        self.set_parent(tx, y, xp)?;
        self.replace_child(tx, xp, x, Some(y))?;
        self.set_left(tx, y, Some(x))?;
        self.set_parent(tx, x, Some(y))?;
        Ok(())
    }

    fn rotate_right<'e>(&'e self, tx: &mut Tx<'e, '_>, x: Handle<Node>) -> TxResult<()> {
        let y = self.left(tx, x)?.expect("rotate_right without left child");
        let yr = self.right(tx, y)?;
        self.set_left(tx, x, yr)?;
        if let Some(n) = yr {
            self.set_parent(tx, n, Some(x))?;
        }
        let xp = self.parent(tx, x)?;
        self.set_parent(tx, y, xp)?;
        self.replace_child(tx, xp, x, Some(y))?;
        self.set_right(tx, y, Some(x))?;
        self.set_parent(tx, x, Some(y))?;
        Ok(())
    }

    /// Looks up `key`.
    pub fn get<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut cur = self.root_of(tx)?;
        while let Some(h) = cur {
            let k = self.key_of(tx, h)?;
            cur = match key.cmp(&k) {
                core::cmp::Ordering::Less => self.left(tx, h)?,
                core::cmp::Ordering::Greater => self.right(tx, h)?,
                core::cmp::Ordering::Equal => return Ok(Some(self.val_of(tx, h)?)),
            };
        }
        Ok(None)
    }

    /// Inserts or updates; returns the previous value if the key existed.
    pub fn put<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64, val: u64) -> TxResult<Option<u64>> {
        let mut parent: H = None;
        let mut cur = self.root_of(tx)?;
        let mut went_left = false;
        while let Some(h) = cur {
            let k = self.key_of(tx, h)?;
            match key.cmp(&k) {
                core::cmp::Ordering::Less => {
                    parent = Some(h);
                    went_left = true;
                    cur = self.left(tx, h)?;
                }
                core::cmp::Ordering::Greater => {
                    parent = Some(h);
                    went_left = false;
                    cur = self.right(tx, h)?;
                }
                core::cmp::Ordering::Equal => {
                    let old = self.val_of(tx, h)?;
                    self.set_val(tx, h, val)?;
                    return Ok(Some(old));
                }
            }
        }
        let z = self.arena.alloc(tx)?;
        {
            let node = self.arena.get(z);
            tx.write(&node.key, key)?;
            tx.write(&node.val, val)?;
            tx.write(&node.left, None)?;
            tx.write(&node.right, None)?;
            tx.write(&node.parent, parent)?;
            tx.write(&node.red, true)?;
        }
        match parent {
            None => tx.write(&self.root, Some(z))?,
            Some(p) => {
                if went_left {
                    self.set_left(tx, p, Some(z))?;
                } else {
                    self.set_right(tx, p, Some(z))?;
                }
            }
        }
        self.insert_fixup(tx, z)?;
        Ok(None)
    }

    fn insert_fixup<'e>(&'e self, tx: &mut Tx<'e, '_>, mut z: Handle<Node>) -> TxResult<()> {
        loop {
            let p = match self.parent(tx, z)? {
                Some(p) if self.is_red(tx, Some(p))? => p,
                _ => break,
            };
            // A red parent cannot be the root, so the grandparent exists.
            let g = self.parent(tx, p)?.expect("red parent must have a parent");
            if Some(p) == self.left(tx, g)? {
                let u = self.right(tx, g)?;
                if self.is_red(tx, u)? {
                    self.set_red(tx, p, false)?;
                    self.set_red(tx, u.unwrap(), false)?;
                    self.set_red(tx, g, true)?;
                    z = g;
                } else {
                    if Some(z) == self.right(tx, p)? {
                        z = p;
                        self.rotate_left(tx, z)?;
                    }
                    let p2 = self.parent(tx, z)?.expect("fixup parent");
                    let g2 = self.parent(tx, p2)?.expect("fixup grandparent");
                    self.set_red(tx, p2, false)?;
                    self.set_red(tx, g2, true)?;
                    self.rotate_right(tx, g2)?;
                }
            } else {
                let u = self.left(tx, g)?;
                if self.is_red(tx, u)? {
                    self.set_red(tx, p, false)?;
                    self.set_red(tx, u.unwrap(), false)?;
                    self.set_red(tx, g, true)?;
                    z = g;
                } else {
                    if Some(z) == self.left(tx, p)? {
                        z = p;
                        self.rotate_right(tx, z)?;
                    }
                    let p2 = self.parent(tx, z)?.expect("fixup parent");
                    let g2 = self.parent(tx, p2)?.expect("fixup grandparent");
                    self.set_red(tx, p2, false)?;
                    self.set_red(tx, g2, true)?;
                    self.rotate_left(tx, g2)?;
                }
            }
        }
        if let Some(r) = self.root_of(tx)? {
            self.set_red(tx, r, false)?;
        }
        Ok(())
    }

    /// Removes `key`; returns its value if present.
    pub fn delete<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<Option<u64>> {
        // Find z.
        let mut cur = self.root_of(tx)?;
        let z = loop {
            let Some(h) = cur else { return Ok(None) };
            let k = self.key_of(tx, h)?;
            match key.cmp(&k) {
                core::cmp::Ordering::Less => cur = self.left(tx, h)?,
                core::cmp::Ordering::Greater => cur = self.right(tx, h)?,
                core::cmp::Ordering::Equal => break h,
            }
        };
        let old_val = self.val_of(tx, z)?;

        // y: the node physically removed (z, or its in-order successor).
        let y = if self.left(tx, z)?.is_none() || self.right(tx, z)?.is_none() {
            z
        } else {
            let mut m = self.right(tx, z)?.expect("checked non-none");
            while let Some(l) = self.left(tx, m)? {
                m = l;
            }
            m
        };
        let x = match self.left(tx, y)? {
            some @ Some(_) => some,
            None => self.right(tx, y)?,
        };
        let xp = self.parent(tx, y)?;
        if let Some(xn) = x {
            self.set_parent(tx, xn, xp)?;
        }
        self.replace_child(tx, xp, y, x)?;
        let y_was_red = self.is_red(tx, Some(y))?;
        if y != z {
            // Relocate y's payload into z (CLRS data transplant).
            let yk = self.key_of(tx, y)?;
            let yv = self.val_of(tx, y)?;
            self.set_key(tx, z, yk)?;
            self.set_val(tx, z, yv)?;
        }
        if !y_was_red {
            self.delete_fixup(tx, x, xp)?;
        }
        self.arena.free(tx, y);
        Ok(Some(old_val))
    }

    /// CLRS RB-DELETE-FIXUP with `x` possibly nil; its parent is threaded
    /// explicitly as `xp`.
    fn delete_fixup<'e>(&'e self, tx: &mut Tx<'e, '_>, mut x: H, mut xp: H) -> TxResult<()> {
        loop {
            if x == self.root_of(tx)? || self.is_red(tx, x)? {
                break;
            }
            let p = match xp {
                Some(p) => p,
                None => break, // x is root
            };
            if x == self.left(tx, p)? {
                let mut w = self.right(tx, p)?.expect("sibling exists for doubly-black");
                if self.is_red(tx, Some(w))? {
                    self.set_red(tx, w, false)?;
                    self.set_red(tx, p, true)?;
                    self.rotate_left(tx, p)?;
                    w = self.right(tx, p)?.expect("sibling after rotation");
                }
                let wl = self.left(tx, w)?;
                let wr = self.right(tx, w)?;
                if !self.is_red(tx, wl)? && !self.is_red(tx, wr)? {
                    self.set_red(tx, w, true)?;
                    x = Some(p);
                    xp = self.parent(tx, p)?;
                } else {
                    if !self.is_red(tx, wr)? {
                        if let Some(wln) = wl {
                            self.set_red(tx, wln, false)?;
                        }
                        self.set_red(tx, w, true)?;
                        self.rotate_right(tx, w)?;
                        w = self.right(tx, p)?.expect("sibling after rotation");
                    }
                    let p_red = self.is_red(tx, Some(p))?;
                    self.set_red(tx, w, p_red)?;
                    self.set_red(tx, p, false)?;
                    if let Some(wrn) = self.right(tx, w)? {
                        self.set_red(tx, wrn, false)?;
                    }
                    self.rotate_left(tx, p)?;
                    break;
                }
            } else {
                let mut w = self.left(tx, p)?.expect("sibling exists for doubly-black");
                if self.is_red(tx, Some(w))? {
                    self.set_red(tx, w, false)?;
                    self.set_red(tx, p, true)?;
                    self.rotate_right(tx, p)?;
                    w = self.left(tx, p)?.expect("sibling after rotation");
                }
                let wl = self.left(tx, w)?;
                let wr = self.right(tx, w)?;
                if !self.is_red(tx, wl)? && !self.is_red(tx, wr)? {
                    self.set_red(tx, w, true)?;
                    x = Some(p);
                    xp = self.parent(tx, p)?;
                } else {
                    if !self.is_red(tx, wl)? {
                        if let Some(wrn) = wr {
                            self.set_red(tx, wrn, false)?;
                        }
                        self.set_red(tx, w, true)?;
                        self.rotate_left(tx, w)?;
                        w = self.left(tx, p)?.expect("sibling after rotation");
                    }
                    let p_red = self.is_red(tx, Some(p))?;
                    self.set_red(tx, w, p_red)?;
                    self.set_red(tx, p, false)?;
                    if let Some(wln) = self.left(tx, w)? {
                        self.set_red(tx, wln, false)?;
                    }
                    self.rotate_right(tx, p)?;
                    break;
                }
            }
        }
        if let Some(xn) = x {
            self.set_red(tx, xn, false)?;
        }
        Ok(())
    }

    /// Checks that `guard` holds this tree's partition: O(1) in release
    /// (the arena's home binding), every binding in debug builds.
    fn assert_covered(&self, guard: &PrivateGuard) {
        assert!(
            guard.covers(&self.home_partition()),
            "tree's partition is not the privatized one"
        );
        debug_assert!(
            guard.covers_source(self),
            "tree torn across partitions; migrate it whole before privatizing"
        );
    }

    // Direct (non-transactional) twins of the rebalancing helpers, used
    // only on guard-gated paths where the hold excludes every
    // transactional writer.

    fn d_left(&self, h: Handle<Node>) -> H {
        self.arena.get(h).left.load_direct()
    }

    fn d_right(&self, h: Handle<Node>) -> H {
        self.arena.get(h).right.load_direct()
    }

    fn d_parent(&self, h: Handle<Node>) -> H {
        self.arena.get(h).parent.load_direct()
    }

    fn d_is_red(&self, h: H) -> bool {
        h.is_some_and(|n| self.arena.get(n).red.load_direct())
    }

    fn d_set_red(&self, h: Handle<Node>, red: bool) {
        self.arena.get(h).red.store_direct(red);
    }

    fn d_replace_child(&self, parent: H, old: Handle<Node>, new: H) {
        match parent {
            None => self.root.store_direct(new),
            Some(p) => {
                if self.d_left(p) == Some(old) {
                    self.arena.get(p).left.store_direct(new);
                } else {
                    self.arena.get(p).right.store_direct(new);
                }
            }
        }
    }

    fn d_rotate_left(&self, x: Handle<Node>) {
        let y = self.d_right(x).expect("rotate_left without right child");
        let yl = self.d_left(y);
        self.arena.get(x).right.store_direct(yl);
        if let Some(n) = yl {
            self.arena.get(n).parent.store_direct(Some(x));
        }
        let xp = self.d_parent(x);
        self.arena.get(y).parent.store_direct(xp);
        self.d_replace_child(xp, x, Some(y));
        self.arena.get(y).left.store_direct(Some(x));
        self.arena.get(x).parent.store_direct(Some(y));
    }

    fn d_rotate_right(&self, x: Handle<Node>) {
        let y = self.d_left(x).expect("rotate_right without left child");
        let yr = self.d_right(y);
        self.arena.get(x).left.store_direct(yr);
        if let Some(n) = yr {
            self.arena.get(n).parent.store_direct(Some(x));
        }
        let xp = self.d_parent(x);
        self.arena.get(y).parent.store_direct(xp);
        self.d_replace_child(xp, x, Some(y));
        self.arena.get(y).right.store_direct(Some(x));
        self.arena.get(x).parent.store_direct(Some(y));
    }

    fn d_insert_fixup(&self, mut z: Handle<Node>) {
        loop {
            let p = match self.d_parent(z) {
                Some(p) if self.d_is_red(Some(p)) => p,
                _ => break,
            };
            let g = self.d_parent(p).expect("red parent must have a parent");
            if Some(p) == self.d_left(g) {
                let u = self.d_right(g);
                if self.d_is_red(u) {
                    self.d_set_red(p, false);
                    self.d_set_red(u.unwrap(), false);
                    self.d_set_red(g, true);
                    z = g;
                } else {
                    if Some(z) == self.d_right(p) {
                        z = p;
                        self.d_rotate_left(z);
                    }
                    let p2 = self.d_parent(z).expect("fixup parent");
                    let g2 = self.d_parent(p2).expect("fixup grandparent");
                    self.d_set_red(p2, false);
                    self.d_set_red(g2, true);
                    self.d_rotate_right(g2);
                }
            } else {
                let u = self.d_left(g);
                if self.d_is_red(u) {
                    self.d_set_red(p, false);
                    self.d_set_red(u.unwrap(), false);
                    self.d_set_red(g, true);
                    z = g;
                } else {
                    if Some(z) == self.d_left(p) {
                        z = p;
                        self.d_rotate_right(z);
                    }
                    let p2 = self.d_parent(z).expect("fixup parent");
                    let g2 = self.d_parent(p2).expect("fixup grandparent");
                    self.d_set_red(p2, false);
                    self.d_set_red(g2, true);
                    self.d_rotate_left(g2);
                }
            }
        }
        if let Some(r) = self.root.load_direct() {
            self.d_set_red(r, false);
        }
    }

    /// Guard-gated insert-or-update at plain-memory speed: a direct port
    /// of [`TRbTree::put`] (including the CLRS fixup) with no orec
    /// traffic, no read set and no retry loop. Safe because the
    /// [`PrivateGuard`] hold excludes every transactional reader and
    /// writer; see [`partstm_core::privatize`].
    pub fn bulk_put(&self, guard: &PrivateGuard, key: u64, val: u64) -> Option<u64> {
        self.assert_covered(guard);
        let mut parent: H = None;
        let mut cur = self.root.load_direct();
        let mut went_left = false;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            match key.cmp(&node.key.load_direct()) {
                core::cmp::Ordering::Less => {
                    parent = Some(h);
                    went_left = true;
                    cur = node.left.load_direct();
                }
                core::cmp::Ordering::Greater => {
                    parent = Some(h);
                    went_left = false;
                    cur = node.right.load_direct();
                }
                core::cmp::Ordering::Equal => {
                    let old = node.val.load_direct();
                    node.val.store_direct(val);
                    return Some(old);
                }
            }
        }
        let z = self.arena.alloc_raw();
        {
            let node = self.arena.get(z);
            node.key.store_direct(key);
            node.val.store_direct(val);
            node.left.store_direct(None);
            node.right.store_direct(None);
            node.parent.store_direct(parent);
            node.red.store_direct(true);
        }
        match parent {
            None => self.root.store_direct(Some(z)),
            Some(p) => {
                if went_left {
                    self.arena.get(p).left.store_direct(Some(z));
                } else {
                    self.arena.get(p).right.store_direct(Some(z));
                }
            }
        }
        self.d_insert_fixup(z);
        None
    }

    /// Guard-gated lookup at plain-memory speed.
    pub fn bulk_get(&self, guard: &PrivateGuard, key: u64) -> Option<u64> {
        self.assert_covered(guard);
        let mut cur = self.root.load_direct();
        while let Some(h) = cur {
            let node = self.arena.get(h);
            cur = match key.cmp(&node.key.load_direct()) {
                core::cmp::Ordering::Less => node.left.load_direct(),
                core::cmp::Ordering::Greater => node.right.load_direct(),
                core::cmp::Ordering::Equal => return Some(node.val.load_direct()),
            };
        }
        None
    }

    /// Non-transactional in-order `(key, value)` snapshot (quiescent only).
    pub fn snapshot_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root.load_direct();
        loop {
            while let Some(h) = cur {
                stack.push(h);
                cur = self.arena.get(h).left.load_direct();
            }
            let Some(h) = stack.pop() else { break };
            let n = self.arena.get(h);
            out.push((n.key.load_direct(), n.val.load_direct()));
            cur = n.right.load_direct();
        }
        out
    }

    /// Verifies all red-black invariants (quiescent only): BST order,
    /// parent-pointer consistency, no red-red edge, equal black heights,
    /// black root. Returns the black height.
    pub fn check_invariants(&self) -> Result<usize, String> {
        fn walk(
            tree: &TRbTree,
            h: H,
            parent: H,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<usize, String> {
            let Some(n) = h else { return Ok(1) }; // nil is black
            let node = tree.arena.get(n);
            let k = node.key.load_direct();
            if let Some(lo) = lo {
                if k <= lo {
                    return Err(format!("BST violation: {k} <= lo {lo}"));
                }
            }
            if let Some(hi) = hi {
                if k >= hi {
                    return Err(format!("BST violation: {k} >= hi {hi}"));
                }
            }
            if node.parent.load_direct() != parent {
                return Err(format!("parent pointer of {k} inconsistent"));
            }
            let red = node.red.load_direct();
            let l = node.left.load_direct();
            let r = node.right.load_direct();
            if red {
                for c in [l, r].into_iter().flatten() {
                    if tree.arena.get(c).red.load_direct() {
                        return Err(format!("red-red edge at {k}"));
                    }
                }
            }
            let bl = walk(tree, l, h, lo, Some(k))?;
            let br = walk(tree, r, h, Some(k), hi)?;
            if bl != br {
                return Err(format!("black height mismatch at {k}: {bl} vs {br}"));
            }
            Ok(bl + usize::from(!red))
        }
        let root = self.root.load_direct();
        if let Some(r) = root {
            if self.arena.get(r).red.load_direct() {
                return Err("red root".into());
            }
        }
        walk(self, root, None, None, None)
    }

    /// Number of live nodes (quiescent only).
    pub fn live_nodes(&self) -> usize {
        self.arena.live()
    }

    /// The partition guarding this tree.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }
}

impl MigrationSource for TRbTree {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        MigrationSource::for_each_binding(&self.arena, f);
        f(self.root.binding());
    }
}

impl MigratableCollection for TRbTree {
    fn home_partition(&self) -> Arc<Partition> {
        self.arena.partition().expect("bound arena")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        MigratableCollection::for_each_live_addr(&self.arena, f);
        f(Migratable::var_addr(&self.root));
    }

    fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

impl IntSet for TRbTree {
    fn contains<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    fn insert<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        Ok(self.put(tx, key, key)?.is_none())
    }

    fn bulk_insert(&self, guard: &PrivateGuard, key: u64) -> bool {
        self.bulk_put(guard, key, key).is_none()
    }

    fn remove<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        Ok(self.delete(tx, key)?.is_some())
    }

    fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    fn snapshot_keys(&self) -> Vec<u64> {
        self.snapshot_pairs().into_iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intset::testing;
    use partstm_core::{PartitionConfig, Stm};

    fn fresh(stm: &Stm) -> TRbTree {
        TRbTree::new(stm.new_partition(PartitionConfig::named("rbtree")))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let stm = Stm::new();
        let t = fresh(&stm);
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| t.put(tx, 10, 100)), None);
        assert_eq!(ctx.run(|tx| t.put(tx, 10, 200)), Some(100));
        assert_eq!(ctx.run(|tx| t.get(tx, 10)), Some(200));
        assert_eq!(ctx.run(|tx| t.get(tx, 11)), None);
        assert_eq!(ctx.run(|tx| t.delete(tx, 10)), Some(200));
        assert_eq!(ctx.run(|tx| t.delete(tx, 10)), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn ascending_descending_and_random_inserts_stay_balanced() {
        for order in 0..3 {
            let stm = Stm::new();
            let t = fresh(&stm);
            let ctx = stm.register_thread();
            let n = 512u64;
            let keys: Vec<u64> = match order {
                0 => (0..n).collect(),
                1 => (0..n).rev().collect(),
                _ => {
                    let mut v: Vec<u64> = (0..n).collect();
                    // Deterministic shuffle.
                    let mut s = 0xdead_beefu64;
                    for i in (1..v.len()).rev() {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        v.swap(i, (s % (i as u64 + 1)) as usize);
                    }
                    v
                }
            };
            for &k in &keys {
                ctx.run(|tx| t.put(tx, k, k * 2));
            }
            let bh = t.check_invariants().unwrap();
            // Black height of a balanced 512-node tree is small.
            assert!(bh <= 10, "black height {bh} too large (order {order})");
            let pairs = t.snapshot_pairs();
            assert_eq!(pairs.len(), n as usize);
            assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn deletions_preserve_invariants_at_every_step() {
        let stm = Stm::new();
        let t = fresh(&stm);
        let ctx = stm.register_thread();
        let n = 128u64;
        for k in 0..n {
            ctx.run(|tx| t.put(tx, k, k));
        }
        // Delete in an adversarial order: every third, then the rest.
        let mut order: Vec<u64> = (0..n).step_by(3).collect();
        order.extend((0..n).filter(|k| k % 3 != 0));
        for (i, &k) in order.iter().enumerate() {
            assert_eq!(ctx.run(|tx| t.delete(tx, k)), Some(k), "step {i}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("after deleting {k} (step {i}): {e}"));
        }
        assert!(t.snapshot_pairs().is_empty());
        assert_eq!(t.live_nodes(), 0, "all nodes recycled");
    }

    #[test]
    fn mixed_workload_invariants() {
        let stm = Stm::new();
        let t = fresh(&stm);
        let ctx = stm.register_thread();
        let mut s = 42u64;
        let mut model = std::collections::BTreeMap::new();
        for i in 0..3000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let k = s % 200;
            if s & 1 == 0 {
                let expect = model.insert(k, i as u64);
                assert_eq!(ctx.run(|tx| t.put(tx, k, i as u64)), expect);
            } else {
                let expect = model.remove(&k);
                assert_eq!(ctx.run(|tx| t.delete(tx, k)), expect);
            }
            if i % 250 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        let pairs: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(t.snapshot_pairs(), pairs);
    }

    #[test]
    fn sequential_model_conformance() {
        let stm = Stm::new();
        let t = fresh(&stm);
        testing::check_sequential_model(&stm, &t);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_insert_matches_transactional() {
        let stm = Stm::new();
        let t = fresh(&stm);
        testing::check_bulk_matches_transactional(&stm, &t);
        t.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let stm = Stm::new();
        let t = fresh(&stm);
        testing::check_concurrent_disjoint(&stm, &t);
        t.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_contended_invariants() {
        let stm = Stm::new();
        let t = fresh(&stm);
        testing::check_concurrent_contended(&stm, &t);
        t.check_invariants().unwrap();
    }
}
