//! Transactional chained hash map (`u64 -> u64`) and set.
//!
//! Fixed power-of-two bucket array with per-bucket chains: short
//! transactions touching one bucket — the low-conflict, small-read-set
//! microbenchmark (and the dedup structure genome needs). The bucket count
//! is fixed at construction (no rehashing), matching the benchmark usage in
//! the paper's era; size accordingly.

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, MigrationSource, PVar,
    PVarBinding, PVarFields, Partition, PartitionId, PrivateGuard, TearableCollection, Tx,
    TxResult,
};

use crate::intset::IntSet;

/// Chain node, bound to the map's partition at allocation.
pub struct Node {
    key: PVar<u64>,
    val: PVar<u64>,
    next: PVar<Option<Handle<Node>>>,
}

impl PVarFields for Node {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.key);
        f(&self.val);
        f(&self.next);
    }
}

/// Transactional hash map over a partition.
pub struct THashMap {
    part: Arc<Partition>,
    arena: Arena<Node>,
    buckets: Box<[PVar<Option<Handle<Node>>>]>,
    mask: u64,
}

fn mix(key: u64) -> u64 {
    let mut k = key.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

impl THashMap {
    /// Map with `buckets` chains (rounded up to a power of two).
    pub fn new(part: Arc<Partition>, buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || part.tvar(None));
        THashMap {
            arena: Arena::new_bound(&part, |p| Node {
                key: p.tvar(0),
                val: p.tvar(0),
                next: p.tvar(None),
            }),
            buckets: v.into_boxed_slice(),
            mask: (n - 1) as u64,
            part,
        }
    }

    /// Id of the partition currently guarding this map (its arena home).
    /// Starts as the construction partition and moves when the
    /// repartitioner migrates the map.
    pub fn partition_of(&self) -> PartitionId {
        self.arena.partition_id().expect("bound arena")
    }

    /// Registers this map with a migration directory so the online
    /// repartitioner can account its nodes against profiler buckets and
    /// migrate it live — whole, or as hot slot subsets (the map is
    /// [`TearableCollection`]).
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_tearable(Arc::clone(self) as Arc<dyn TearableCollection>);
    }

    /// The node arena backing this map: live-slot enumeration and
    /// slot-subset migration
    /// ([`Arena::slots_of`](partstm_core::Arena::slots_of)) for callers
    /// that move parts of the map rather than the whole structure.
    pub fn arena(&self) -> &Arena<Node> {
        &self.arena
    }

    #[inline]
    fn bucket(&self, key: u64) -> &PVar<Option<Handle<Node>>> {
        &self.buckets[(mix(key) & self.mask) as usize]
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Looks up `key`.
    pub fn get<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<Option<u64>> {
        let mut cur = tx.read(self.bucket(key))?;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if tx.read(&node.key)? == key {
                return Ok(Some(tx.read(&node.val)?));
            }
            cur = tx.read(&node.next)?;
        }
        Ok(None)
    }

    /// Inserts or updates; returns the previous value if present.
    pub fn put<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64, val: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket(key);
        let head = tx.read(bucket)?;
        let mut cur = head;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if tx.read(&node.key)? == key {
                let old = tx.read(&node.val)?;
                tx.write(&node.val, val)?;
                return Ok(Some(old));
            }
            cur = tx.read(&node.next)?;
        }
        let new = self.arena.alloc(tx)?;
        let node = self.arena.get(new);
        tx.write(&node.key, key)?;
        tx.write(&node.val, val)?;
        tx.write(&node.next, head)?;
        tx.write(bucket, Some(new))?;
        Ok(None)
    }

    /// Inserts only if absent; returns `true` if inserted. (The one-shot
    /// "claim" operation genome's dedup phase uses.)
    pub fn put_if_absent<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64, val: u64) -> TxResult<bool> {
        if self.get(tx, key)?.is_some() {
            return Ok(false);
        }
        let bucket = self.bucket(key);
        let head = tx.read(bucket)?;
        let new = self.arena.alloc(tx)?;
        let node = self.arena.get(new);
        tx.write(&node.key, key)?;
        tx.write(&node.val, val)?;
        tx.write(&node.next, head)?;
        tx.write(bucket, Some(new))?;
        Ok(true)
    }

    /// Removes `key`; returns its value if present.
    pub fn delete<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket(key);
        let mut prev: Option<Handle<Node>> = None;
        let mut cur = tx.read(bucket)?;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if tx.read(&node.key)? == key {
                let val = tx.read(&node.val)?;
                let next = tx.read(&node.next)?;
                match prev {
                    Some(p) => tx.write(&self.arena.get(p).next, next)?,
                    None => tx.write(bucket, next)?,
                }
                self.arena.free(tx, h);
                return Ok(Some(val));
            }
            prev = Some(h);
            cur = tx.read(&node.next)?;
        }
        Ok(None)
    }

    /// Non-transactional `(key, value)` snapshot, sorted by key
    /// (quiescent only).
    pub fn snapshot_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut cur = b.load_direct();
            while let Some(h) = cur {
                let n = self.arena.get(h);
                out.push((n.key.load_direct(), n.val.load_direct()));
                cur = n.next.load_direct();
            }
        }
        out.sort_unstable();
        out
    }

    /// The partition guarding this map.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Checks that `guard` holds this map's current home partition. O(1):
    /// per-key bulk operations call it on every key, so the full
    /// `covers_source` walk is reserved for the once-per-scan entry points
    /// ([`THashMap::bulk_for_each`]).
    #[inline]
    fn assert_covered(&self, guard: &PrivateGuard) {
        assert!(
            guard.covers(&self.home_partition()),
            "map's partition is not the privatized one"
        );
    }

    /// Guard-gated insert-or-update with plain loads/stores and raw arena
    /// allocation — the bulk-load twin of [`THashMap::put`]; see
    /// [`partstm_core::privatize`] for why this is safe under the hold.
    pub fn bulk_put(&self, guard: &PrivateGuard, key: u64, val: u64) -> Option<u64> {
        self.assert_covered(guard);
        let bucket = self.bucket(key);
        let head = bucket.load_direct();
        let mut cur = head;
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if node.key.load_direct() == key {
                let old = node.val.load_direct();
                node.val.store_direct(val);
                return Some(old);
            }
            cur = node.next.load_direct();
        }
        let new = self.arena.alloc_raw();
        let node = self.arena.get(new);
        node.key.store_direct(key);
        node.val.store_direct(val);
        node.next.store_direct(head);
        bucket.store_direct(Some(new));
        None
    }

    /// Guard-gated lookup with plain loads (the bulk twin of
    /// [`THashMap::get`]).
    pub fn bulk_get(&self, guard: &PrivateGuard, key: u64) -> Option<u64> {
        self.assert_covered(guard);
        let mut cur = self.bucket(key).load_direct();
        while let Some(h) = cur {
            let node = self.arena.get(h);
            if node.key.load_direct() == key {
                return Some(node.val.load_direct());
            }
            cur = node.next.load_direct();
        }
        None
    }

    /// Guard-gated bulk iterator over every `(key, value)` pair, in
    /// bucket-chain order. Exact: the hold excludes every concurrent
    /// writer. The debug build additionally verifies the whole structure
    /// is inside the hold (a partial migration could tear it).
    pub fn bulk_for_each(&self, guard: &PrivateGuard, mut f: impl FnMut(u64, u64)) {
        self.assert_covered(guard);
        debug_assert!(
            guard.covers_source(self),
            "map torn across partitions; migrate it whole before privatizing"
        );
        for b in self.buckets.iter() {
            let mut cur = b.load_direct();
            while let Some(h) = cur {
                let n = self.arena.get(h);
                f(n.key.load_direct(), n.val.load_direct());
                cur = n.next.load_direct();
            }
        }
    }
}

impl MigrationSource for THashMap {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        MigrationSource::for_each_binding(&self.arena, f);
        for b in self.buckets.iter() {
            f(b.binding());
        }
    }
}

impl MigratableCollection for THashMap {
    fn home_partition(&self) -> Arc<Partition> {
        self.arena.partition().expect("bound arena")
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        MigratableCollection::for_each_live_addr(&self.arena, f);
        for b in self.buckets.iter() {
            f(Migratable::var_addr(b));
        }
    }

    fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

impl TearableCollection for THashMap {
    // Bucket-head roots stay home on a tear: heat under key skew
    // concentrates on node fields, and torn slots stay reachable through
    // home-bound heads because every field routes through its own binding.
    fn for_each_live_slot_addr(&self, f: &mut dyn FnMut(u32, usize)) {
        TearableCollection::for_each_live_slot_addr(&self.arena, f);
    }

    fn for_each_slot_binding(&self, raw: &[u32], f: &mut dyn FnMut(&PVarBinding)) {
        TearableCollection::for_each_slot_binding(&self.arena, raw, f);
    }
}

/// Transactional hash set: a [`THashMap`] with unit values.
pub struct THashSet {
    map: THashMap,
}

impl THashSet {
    /// Set with `buckets` chains.
    pub fn new(part: Arc<Partition>, buckets: usize) -> Self {
        THashSet {
            map: THashMap::new(part, buckets),
        }
    }

    /// Id of the partition currently guarding this set (see
    /// [`THashMap::partition_of`]).
    pub fn partition_of(&self) -> PartitionId {
        self.map.partition_of()
    }

    /// Registers this set with a migration directory (see
    /// [`THashMap::attach_directory`]).
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_tearable(Arc::clone(self) as Arc<dyn TearableCollection>);
    }
}

impl MigrationSource for THashSet {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        self.map.for_each_binding(f);
    }
}

impl MigratableCollection for THashSet {
    fn home_partition(&self) -> Arc<Partition> {
        self.map.home_partition()
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        self.map.for_each_live_addr(f);
    }

    fn live_nodes(&self) -> usize {
        self.map.live_nodes()
    }
}

impl TearableCollection for THashSet {
    fn for_each_live_slot_addr(&self, f: &mut dyn FnMut(u32, usize)) {
        self.map.for_each_live_slot_addr(f);
    }

    fn for_each_slot_binding(&self, raw: &[u32], f: &mut dyn FnMut(&PVarBinding)) {
        self.map.for_each_slot_binding(raw, f);
    }
}

impl IntSet for THashSet {
    fn contains<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        Ok(self.map.get(tx, key)?.is_some())
    }

    fn insert<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        self.map.put_if_absent(tx, key, 1)
    }

    fn bulk_insert(&self, guard: &PrivateGuard, key: u64) -> bool {
        self.map.bulk_get(guard, key).is_none() && {
            self.map.bulk_put(guard, key, 1);
            true
        }
    }

    fn remove<'e>(&'e self, tx: &mut Tx<'e, '_>, key: u64) -> TxResult<bool> {
        Ok(self.map.delete(tx, key)?.is_some())
    }

    fn partition(&self) -> &Arc<Partition> {
        self.map.partition()
    }

    fn snapshot_keys(&self) -> Vec<u64> {
        self.map
            .snapshot_pairs()
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intset::testing;
    use partstm_core::{PartitionConfig, Stm};

    #[test]
    fn map_put_get_delete() {
        let stm = Stm::new();
        let m = THashMap::new(stm.new_partition(PartitionConfig::named("map")), 16);
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| m.put(tx, 1, 10)), None);
        assert_eq!(ctx.run(|tx| m.put(tx, 1, 20)), Some(10));
        assert_eq!(ctx.run(|tx| m.get(tx, 1)), Some(20));
        assert!(ctx.run(|tx| m.put_if_absent(tx, 2, 5)));
        assert!(!ctx.run(|tx| m.put_if_absent(tx, 2, 6)));
        assert_eq!(ctx.run(|tx| m.delete(tx, 1)), Some(20));
        assert_eq!(ctx.run(|tx| m.delete(tx, 1)), None);
        assert_eq!(m.snapshot_pairs(), vec![(2, 5)]);
    }

    #[test]
    fn chains_handle_collisions() {
        let stm = Stm::new();
        // Single bucket: everything collides.
        let m = THashMap::new(stm.new_partition(PartitionConfig::named("one")), 1);
        assert_eq!(m.bucket_count(), 1);
        let ctx = stm.register_thread();
        for k in 0..32u64 {
            assert_eq!(ctx.run(|tx| m.put(tx, k, k * 3)), None);
        }
        for k in 0..32u64 {
            assert_eq!(ctx.run(|tx| m.get(tx, k)), Some(k * 3));
        }
        // Delete middle-of-chain entries.
        for k in (0..32u64).step_by(3) {
            assert_eq!(ctx.run(|tx| m.delete(tx, k)), Some(k * 3));
        }
        let remaining = m.snapshot_pairs().len();
        assert_eq!(remaining, 32 - 11);
    }

    #[test]
    fn set_sequential_model() {
        let stm = Stm::new();
        let s = THashSet::new(stm.new_partition(PartitionConfig::named("set")), 64);
        testing::check_sequential_model(&stm, &s);
    }

    #[test]
    fn set_concurrent_disjoint() {
        let stm = Stm::new();
        let s = THashSet::new(stm.new_partition(PartitionConfig::named("set")), 64);
        testing::check_concurrent_disjoint(&stm, &s);
    }

    #[test]
    fn set_concurrent_contended() {
        let stm = Stm::new();
        let s = THashSet::new(stm.new_partition(PartitionConfig::named("set")), 4);
        testing::check_concurrent_contended(&stm, &s);
    }

    #[test]
    fn set_bulk_insert_matches_transactional() {
        let stm = Stm::new();
        let s = THashSet::new(stm.new_partition(PartitionConfig::named("set")), 16);
        testing::check_bulk_matches_transactional(&stm, &s);
    }

    #[test]
    fn map_bulk_ops_match_transactional() {
        let stm = Stm::new();
        let m = THashMap::new(stm.new_partition(PartitionConfig::named("map")), 8);
        {
            let guard = stm.privatize(m.partition()).expect("privatize");
            for k in 0..64u64 {
                assert_eq!(m.bulk_put(&guard, k, k * 2), None);
            }
            assert_eq!(m.bulk_put(&guard, 7, 70), Some(14), "update in place");
            assert_eq!(m.bulk_get(&guard, 7), Some(70));
            assert_eq!(m.bulk_get(&guard, 64), None);
            let mut n = 0usize;
            m.bulk_for_each(&guard, |k, v| {
                n += 1;
                assert_eq!(v, if k == 7 { 70 } else { k * 2 });
            });
            assert_eq!(n, 64);
        }
        // Guard dropped → republished; transactional service resumes.
        let ctx = stm.register_thread();
        assert_eq!(ctx.run(|tx| m.get(tx, 7)), Some(70));
        assert_eq!(ctx.run(|tx| m.put(tx, 64, 1)), None);
        assert_eq!(m.snapshot_pairs().len(), 65);
    }
}
