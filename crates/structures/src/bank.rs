//! Transactional bank accounts.
//!
//! The canonical atomicity benchmark: `transfer` moves money between two
//! accounts, `total` sums every balance. The global invariant — the total
//! is constant — is the sharpest cheap probe for lost updates or
//! inconsistent snapshots, and the long read-only `total` transaction
//! stresses snapshot extension against a stream of short writers.

use std::sync::Arc;

use partstm_core::{
    CollectionRegistry, Migratable, MigratableCollection, MigrationSource, PVar, PVarBinding,
    Partition, PartitionId, PrivateGuard, Tx, TxResult,
};

/// A fixed array of accounts guarded by one partition. Every account is a
/// [`PVar`] bound to that partition at construction, so the access methods
/// below never name a partition.
pub struct Bank {
    part: Arc<Partition>,
    accounts: Box<[PVar<i64>]>,
}

impl Bank {
    /// `n` accounts with `initial` balance each.
    pub fn new(part: Arc<Partition>, n: usize, initial: i64) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || part.tvar(initial));
        Bank {
            part,
            accounts: v.into_boxed_slice(),
        }
    }

    /// Id of the partition currently guarding the accounts. Starts as the
    /// construction partition and moves when the repartitioner migrates
    /// the bank (an empty bank never migrates and reports its construction
    /// partition).
    pub fn partition_of(&self) -> PartitionId {
        self.accounts
            .first()
            .map(|a| a.partition_id())
            .unwrap_or_else(|| self.part.id())
    }

    /// Direct access to one account variable (diagnostics and raw-tier
    /// equivalence tests).
    pub fn account(&self, i: usize) -> &PVar<i64> {
        &self.accounts[i]
    }

    /// Registers this bank with a migration directory so the online
    /// repartitioner can account its variables against profiler buckets
    /// and migrate it live.
    pub fn attach_directory(self: &Arc<Self>, dir: &dyn CollectionRegistry) {
        dir.register_collection(Arc::clone(self) as Arc<dyn MigratableCollection>);
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True if the bank has no accounts.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// The partition guarding the accounts.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }

    /// Balance of account `i`.
    pub fn balance<'e>(&'e self, tx: &mut Tx<'e, '_>, i: usize) -> TxResult<i64> {
        tx.read(&self.accounts[i])
    }

    /// Sets the balance of account `i` (building block for cross-bank
    /// transfers that must span partitions in one transaction).
    pub fn set_balance<'e>(&'e self, tx: &mut Tx<'e, '_>, i: usize, v: i64) -> TxResult<()> {
        tx.write(&self.accounts[i], v)
    }

    /// Adds `amount` to account `i` (negative to withdraw).
    pub fn deposit<'e>(&'e self, tx: &mut Tx<'e, '_>, i: usize, amount: i64) -> TxResult<()> {
        let b = tx.read(&self.accounts[i])?;
        tx.write(&self.accounts[i], b + amount)
    }

    /// Transfers `amount` from `from` to `to` (may overdraw; the benchmark
    /// semantics of STAMP's bank). The debit is written before the credit
    /// is read so that `from == to` nets to zero (the credit reads the
    /// debited balance through the write set).
    pub fn transfer<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        from: usize,
        to: usize,
        amount: i64,
    ) -> TxResult<()> {
        let f = tx.read(&self.accounts[from])?;
        tx.write(&self.accounts[from], f - amount)?;
        let t = tx.read(&self.accounts[to])?;
        tx.write(&self.accounts[to], t + amount)?;
        Ok(())
    }

    /// Sums all balances in one (read-only) transaction.
    pub fn total<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<i64> {
        let mut sum = 0i64;
        for a in self.accounts.iter() {
            sum += tx.read(a)?;
        }
        Ok(sum)
    }

    /// Non-transactional total (quiescent only).
    pub fn total_direct(&self) -> i64 {
        self.accounts.iter().map(|a| a.load_direct()).sum()
    }

    /// Checks that `guard` holds this bank's partition: O(1) in release
    /// (the home binding), every account binding in debug builds — the
    /// debug walk catches a bank torn across partitions by a partial
    /// migration.
    fn assert_covered(&self, guard: &PrivateGuard) {
        assert!(
            guard.covers(&self.home_partition()),
            "bank's partition is not the privatized one"
        );
        debug_assert!(
            guard.covers_source(self),
            "bank torn across partitions; migrate it whole before privatizing"
        );
    }

    /// Guard-gated bulk loader: sets every account's balance with plain
    /// stores — no orec traffic, no undo log. The raw-speed twin of a
    /// transactional initialization loop; see [`partstm_core::privatize`]
    /// for why this is safe under the hold.
    pub fn bulk_load(&self, guard: &PrivateGuard, mut balance: impl FnMut(usize) -> i64) {
        self.assert_covered(guard);
        for (i, a) in self.accounts.iter().enumerate() {
            a.store_direct(balance(i));
        }
    }

    /// Guard-gated bulk iterator over `(account index, balance)`. Exact:
    /// the hold excludes every concurrent writer.
    pub fn bulk_for_each(&self, guard: &PrivateGuard, mut f: impl FnMut(usize, i64)) {
        self.assert_covered(guard);
        for (i, a) in self.accounts.iter().enumerate() {
            f(i, a.load_direct());
        }
    }

    /// Guard-gated total: like [`Bank::total_direct`] but with the
    /// quiescence *proved* by the guard instead of assumed.
    pub fn bulk_total(&self, guard: &PrivateGuard) -> i64 {
        self.assert_covered(guard);
        self.total_direct()
    }
}

impl MigrationSource for Bank {
    fn for_each_binding(&self, f: &mut dyn FnMut(&PVarBinding)) {
        for a in self.accounts.iter() {
            f(a.binding());
        }
    }
}

impl MigratableCollection for Bank {
    fn home_partition(&self) -> Arc<Partition> {
        self.accounts
            .first()
            .map(|a| a.partition())
            .unwrap_or_else(|| Arc::clone(&self.part))
    }

    fn for_each_live_addr(&self, f: &mut dyn FnMut(usize)) {
        for a in self.accounts.iter() {
            f(Migratable::var_addr(a));
        }
    }

    fn live_nodes(&self) -> usize {
        self.accounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::{PartitionConfig, ReadMode, Stm};

    #[test]
    fn transfer_conserves_total() {
        let stm = Stm::new();
        let bank = Bank::new(stm.new_partition(PartitionConfig::named("bank")), 8, 100);
        assert_eq!(bank.len(), 8);
        assert!(!bank.is_empty());
        let ctx = stm.register_thread();
        ctx.run(|tx| bank.transfer(tx, 0, 7, 30));
        assert_eq!(ctx.run(|tx| bank.balance(tx, 0)), 70);
        assert_eq!(ctx.run(|tx| bank.balance(tx, 7)), 130);
        assert_eq!(ctx.run(|tx| bank.total(tx)), 800);
    }

    #[test]
    fn concurrent_transfers_never_break_invariant() {
        let stm = Stm::new();
        let bank = Arc::new(Bank::new(
            stm.new_partition(PartitionConfig::named("bank")),
            16,
            1000,
        ));
        let expect = 16_000i64;
        std::thread::scope(|s| {
            for t in 0..4usize {
                let ctx = stm.register_thread();
                let bank = Arc::clone(&bank);
                s.spawn(move || {
                    let mut r = (t as u64 + 1) * 0x9E37_79B9;
                    for _ in 0..2000 {
                        r ^= r << 13;
                        r ^= r >> 7;
                        r ^= r << 17;
                        let from = (r % 16) as usize;
                        let to = ((r >> 8) % 16) as usize;
                        ctx.run(|tx| bank.transfer(tx, from, to, (r % 50) as i64));
                    }
                });
            }
            // A reader thread snapshots concurrently: must always see the
            // invariant total (atomicity + opacity probe).
            let ctx = stm.register_thread();
            let bank2 = Arc::clone(&bank);
            s.spawn(move || {
                for _ in 0..500 {
                    assert_eq!(ctx.run(|tx| bank2.total(tx)), expect);
                }
            });
        });
        assert_eq!(bank.total_direct(), expect);
    }

    #[test]
    fn bulk_load_then_transactional_traffic() {
        let stm = Stm::new();
        let bank = Bank::new(stm.new_partition(PartitionConfig::named("bank")), 32, 0);
        {
            let guard = stm.privatize(bank.partition()).expect("privatize");
            bank.bulk_load(&guard, |i| (i as i64 + 1) * 10);
            let expect: i64 = (1..=32).map(|i| i * 10).sum();
            assert_eq!(bank.bulk_total(&guard), expect);
            let mut seen = 0;
            bank.bulk_for_each(&guard, |i, b| {
                assert_eq!(b, (i as i64 + 1) * 10);
                seen += 1;
            });
            assert_eq!(seen, 32);
            guard.republish();
        }
        let ctx = stm.register_thread();
        let expect: i64 = (1..=32).map(|i| i * 10).sum();
        ctx.run(|tx| bank.transfer(tx, 0, 31, 5));
        assert_eq!(ctx.run(|tx| bank.total(tx)), expect, "total conserved");
        assert_eq!(ctx.run(|tx| bank.balance(tx, 0)), 5);
    }

    #[test]
    fn visible_read_mode_also_conserves() {
        let stm = Stm::new();
        let bank = Arc::new(Bank::new(
            stm.new_partition(PartitionConfig::named("vbank").read_mode(ReadMode::Visible)),
            4,
            250,
        ));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = stm.register_thread();
                let bank = Arc::clone(&bank);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        ctx.run(|tx| {
                            bank.transfer(tx, (i % 4) as usize, ((i + 1) % 4) as usize, 1)
                        });
                    }
                });
            }
        });
        assert_eq!(bank.total_direct(), 1000);
    }
}
