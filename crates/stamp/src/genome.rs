//! STAMP **genome**: gene sequencing by segment matching.
//!
//! A gene (string over {A,C,G,T}) is shredded into overlapping segments
//! (with duplicates). The benchmark reassembles it in three phases:
//!
//! 1. **Deduplicate** (parallel, transactional): insert every segment into
//!    a hash set; duplicates vanish.
//! 2. **Overlap matching** (parallel, transactional): for decreasing
//!    overlap length `o`, build a map `prefix_o(B) -> B` of unstarted
//!    segments and link each unfinished segment `A` to the `B` whose
//!    prefix matches `A`'s suffix, claiming both ends transactionally.
//! 3. **Reconstruction** (sequential): follow the chain from the unique
//!    unstarted segment and re-emit the gene.
//!
//! Segments are 2-bit packed into a word (`length <= 32`), replacing
//! STAMP's string hashing with exact word keys — same transaction
//! structure, simpler substrate. Three partitions mirror STAMP's separate
//! structures: the dedup set, the per-round prefix maps, and the chain
//! links — each with a different access profile (insert-only, build+consume,
//! read-mostly-then-write).

use std::sync::Arc;

use partstm_core::{
    Arena, Handle, Migratable, PVar, PVarFields, Partition, PartitionConfig, Stm, TxWord,
};
use partstm_structures::{IntSet, THashMap, THashSet};

use crate::common::SplitMix64;

/// Genome parameters.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Gene length (bases).
    pub gene_length: usize,
    /// Segment length (bases, <= 32 for word packing).
    pub segment_length: usize,
    /// Step between guaranteed-coverage segment starts (must be
    /// `< segment_length` so consecutive segments overlap).
    pub coverage_step: usize,
    /// Extra random segments sampled on top of the coverage set
    /// (duplicates give phase 1 its work).
    pub extra_segments: usize,
    /// Seed for gene + sampling.
    pub seed: u64,
}

impl GenomeConfig {
    /// A scaled-down STAMP-like default (`g=4096 s=24`).
    pub fn scaled(gene_length: usize) -> Self {
        GenomeConfig {
            gene_length,
            segment_length: 24,
            coverage_step: 8,
            extra_segments: gene_length * 2,
            seed: 0x0006_E04E,
        }
    }
}

/// Generates a random gene (values 0..4 per base).
pub fn generate_gene(cfg: &GenomeConfig) -> Vec<u8> {
    let mut rng = SplitMix64::new(cfg.seed);
    (0..cfg.gene_length)
        .map(|_| (rng.next() & 3) as u8)
        .collect()
}

/// Packs `bases[start..start+len]` into a word (2 bits per base, MSB
/// first so lexicographic order is numeric order).
pub fn pack(bases: &[u8], start: usize, len: usize) -> u64 {
    debug_assert!(len <= 32);
    let mut w = 0u64;
    for &b in &bases[start..start + len] {
        w = (w << 2) | b as u64;
    }
    w
}

/// The last `o` bases of a packed segment of length `len`.
#[inline]
fn suffix(word: u64, o: usize) -> u64 {
    word & ((1u64 << (2 * o)) - 1)
}

/// The first `o` bases of a packed segment of length `len`.
#[inline]
fn prefix(word: u64, len: usize, o: usize) -> u64 {
    word >> (2 * (len - o))
}

/// Shreds the gene: full-coverage segments every `coverage_step` bases
/// (including one ending exactly at the gene end) plus random extras.
pub fn shred(cfg: &GenomeConfig, gene: &[u8]) -> Vec<u64> {
    let s = cfg.segment_length;
    let mut rng = SplitMix64::new(cfg.seed ^ 0xF00D);
    let mut segs = Vec::new();
    let last = gene.len() - s;
    let mut pos = 0;
    while pos < last {
        segs.push(pack(gene, pos, s));
        pos += cfg.coverage_step;
    }
    segs.push(pack(gene, last, s));
    for _ in 0..cfg.extra_segments {
        let p = rng.below_usize(last + 1);
        segs.push(pack(gene, p, s));
    }
    segs
}

/// A chain node for one unique segment, bound to the links partition.
struct SegNode {
    seg: PVar<u64>,
    next: PVar<Option<Handle<SegNode>>>,
    overlap: PVar<u64>,
    /// Set when some other segment links *to* this one.
    started: PVar<bool>,
    /// Set when this segment has linked to a successor.
    finished: PVar<bool>,
}

impl PVarFields for SegNode {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.seg);
        f(&self.next);
        f(&self.overlap);
        f(&self.started);
        f(&self.finished);
    }
}

/// The partitions genome uses.
pub struct GenomeParts {
    /// Phase-1 dedup set.
    pub segments: Arc<Partition>,
    /// Phase-2 prefix maps.
    pub starts: Arc<Partition>,
    /// Phase-2/3 chain links.
    pub links: Arc<Partition>,
}

impl GenomeParts {
    /// One partition per structure (the analysis plan's classes).
    pub fn partitioned(stm: &Stm, tunable: bool) -> Self {
        let mk = |name: &str| {
            let mut cfg = PartitionConfig::named(name);
            cfg.tune = tunable;
            stm.new_partition(cfg)
        };
        GenomeParts {
            segments: mk("genome.segments"),
            starts: mk("genome.starts"),
            links: mk("genome.links"),
        }
    }

    /// Single shared partition (base-STM comparison).
    pub fn single(stm: &Stm, tunable: bool) -> Self {
        let mut cfg = PartitionConfig::named("genome.all");
        cfg.tune = tunable;
        let p = stm.new_partition(cfg);
        GenomeParts {
            segments: Arc::clone(&p),
            starts: Arc::clone(&p),
            links: p,
        }
    }
}

/// Outcome of a sequencing run.
#[derive(Debug)]
pub struct GenomeResult {
    /// Reconstructed gene.
    pub gene: Vec<u8>,
    /// Unique segments after dedup.
    pub unique_segments: usize,
    /// Total segments fed in.
    pub total_segments: usize,
    /// Overlap-matching rounds executed.
    pub rounds: usize,
}

/// Runs the full three-phase sequencer with `threads` workers.
pub fn run_genome(
    stm: &Stm,
    parts: &GenomeParts,
    cfg: &GenomeConfig,
    segments: &[u64],
    threads: usize,
) -> GenomeResult {
    let s = cfg.segment_length;

    // ---- Phase 1: parallel dedup into a transactional hash set.
    let set = THashSet::new(Arc::clone(&parts.segments), (segments.len() * 2).max(64));
    std::thread::scope(|sc| {
        let chunk = segments.len().div_ceil(threads);
        for t in 0..threads {
            let ctx = stm.register_thread();
            let set = &set;
            sc.spawn(move || {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(segments.len());
                for &seg in &segments[lo..hi.max(lo)] {
                    ctx.run(|tx| set.insert(tx, seg).map(|_| ()));
                }
            });
        }
    });
    let unique: Vec<u64> = set.snapshot_keys();

    // Chain nodes for every unique segment, bound to the links partition
    // (a bound arena, so a live repartition of the links class would carry
    // the chain with it).
    let arena: Arena<SegNode> =
        Arena::with_capacity_bound(&parts.links, unique.len(), |p| SegNode {
            seg: p.tvar(0),
            next: p.tvar(None),
            overlap: p.tvar(0),
            started: p.tvar(false),
            finished: p.tvar(false),
        });
    let nodes: Vec<Handle<SegNode>> = {
        let ctx = stm.register_thread();
        unique
            .iter()
            .map(|&seg| {
                ctx.run(|tx| {
                    let h = arena.alloc(tx)?;
                    let n = arena.get(h);
                    tx.write(&n.seg, seg)?;
                    tx.write(&n.next, None)?;
                    tx.write(&n.overlap, 0)?;
                    tx.write(&n.started, false)?;
                    tx.write(&n.finished, false)?;
                    Ok(h)
                })
            })
            .collect()
    };

    // ---- Phase 2: overlap matching, longest overlap first.
    let mut rounds = 0usize;
    for o in (1..s).rev() {
        rounds += 1;
        // Build prefix_o -> node map of unstarted segments (parallel).
        let starts = THashMap::new(Arc::clone(&parts.starts), (unique.len() * 2).max(64));
        std::thread::scope(|sc| {
            let chunk = nodes.len().div_ceil(threads);
            for t in 0..threads {
                let ctx = stm.register_thread();
                let (starts, nodes, arena) = (&starts, &nodes, &arena);
                sc.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(nodes.len());
                    for &h in &nodes[lo..hi.max(lo)] {
                        ctx.run(|tx| {
                            let n = arena.get(h);
                            if tx.read(&n.started)? {
                                return Ok(());
                            }
                            let seg = tx.read(&n.seg)?;
                            starts
                                .put_if_absent(tx, prefix(seg, s, o), h.to_word())
                                .map(|_| ())
                        });
                    }
                });
            }
        });
        // Link unfinished segments to matching unstarted ones (parallel).
        std::thread::scope(|sc| {
            let chunk = nodes.len().div_ceil(threads);
            for t in 0..threads {
                let ctx = stm.register_thread();
                let (starts, nodes, arena) = (&starts, &nodes, &arena);
                sc.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(nodes.len());
                    for &h in &nodes[lo..hi.max(lo)] {
                        ctx.run(|tx| {
                            let a = arena.get(h);
                            if tx.read(&a.finished)? {
                                return Ok(());
                            }
                            let seg = tx.read(&a.seg)?;
                            let Some(bw) = starts.get(tx, suffix(seg, o))? else {
                                return Ok(());
                            };
                            let bh = Handle::<SegNode>::from_word(bw);
                            if bh == h {
                                return Ok(()); // self-overlap
                            }
                            let b = arena.get(bh);
                            if tx.read(&b.started)? {
                                return Ok(()); // claimed this round already
                            }
                            tx.write(&a.next, Some(bh))?;
                            tx.write(&a.overlap, o as u64)?;
                            tx.write(&a.finished, true)?;
                            tx.write(&b.started, true)?;
                            // Consume the map entry so no one else matches B.
                            starts.delete(tx, suffix(seg, o))?;
                            Ok(())
                        });
                    }
                });
            }
        });
        // Early exit: all but one segment linked.
        let unfinished = nodes
            .iter()
            .filter(|&&h| !arena.get(h).finished.load_direct())
            .count();
        if unfinished <= 1 {
            break;
        }
    }

    // ---- Phase 3: sequential reconstruction from the unique unstarted node.
    let start = nodes
        .iter()
        .copied()
        .find(|&h| !arena.get(h).started.load_direct())
        .expect("a chain start must exist");
    let mut gene = Vec::with_capacity(cfg.gene_length);
    let unpack_into = |word: u64, take: usize, out: &mut Vec<u8>| {
        for i in (0..take).rev() {
            out.push(((word >> (2 * i)) & 3) as u8);
        }
    };
    let mut cur = start;
    unpack_into(arena.get(cur).seg.load_direct(), s, &mut gene);
    loop {
        let n = arena.get(cur);
        let Some(next) = n.next.load_direct() else {
            break;
        };
        let o = n.overlap.load_direct() as usize;
        let seg = arena.get(next).seg.load_direct();
        // Emit the non-overlapping tail of the next segment.
        unpack_into(suffix(seg, s - o), s - o, &mut gene);
        cur = next;
    }

    GenomeResult {
        gene,
        unique_segments: unique.len(),
        total_segments: segments.len(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_prefix_suffix_algebra() {
        let bases = vec![0u8, 1, 2, 3, 0, 1];
        let w = pack(&bases, 0, 6);
        assert_eq!(prefix(w, 6, 2), pack(&bases, 0, 2));
        assert_eq!(suffix(w, 2), pack(&bases, 4, 2));
        // Overlap identity: suffix of [0..6) of length 4 == prefix of
        // segment starting at 2.
        let w2 = pack(&bases, 2, 4);
        assert_eq!(suffix(w, 4), w2);
    }

    #[test]
    fn shred_covers_the_gene() {
        let cfg = GenomeConfig {
            gene_length: 100,
            segment_length: 10,
            coverage_step: 4,
            extra_segments: 0,
            seed: 1,
        };
        let gene = generate_gene(&cfg);
        let segs = shred(&cfg, &gene);
        // Starts: 0,4,...,<90 plus 90.
        assert_eq!(segs.last().copied(), Some(pack(&gene, 90, 10)));
        assert!(segs.len() >= 23);
    }

    fn roundtrip(cfg: GenomeConfig, threads: usize) {
        let gene = generate_gene(&cfg);
        let segs = shred(&cfg, &gene);
        let stm = Stm::new();
        let parts = GenomeParts::partitioned(&stm, false);
        let res = run_genome(&stm, &parts, &cfg, &segs, threads);
        assert_eq!(res.total_segments, segs.len());
        assert!(res.unique_segments <= segs.len());
        assert_eq!(res.gene, gene, "reconstruction must reproduce the gene");
    }

    #[test]
    fn sequential_reconstruction() {
        roundtrip(GenomeConfig::scaled(512), 1);
    }

    #[test]
    fn parallel_reconstruction() {
        roundtrip(GenomeConfig::scaled(1024), 4);
    }

    #[test]
    fn parallel_reconstruction_single_partition() {
        let cfg = GenomeConfig::scaled(1024);
        let gene = generate_gene(&cfg);
        let segs = shred(&cfg, &gene);
        let stm = Stm::new();
        let parts = GenomeParts::single(&stm, false);
        let res = run_genome(&stm, &parts, &cfg, &segs, 4);
        assert_eq!(res.gene, gene);
    }
}
