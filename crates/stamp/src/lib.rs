//! # partstm-stamp — STAMP-style application benchmarks
//!
//! Faithful Rust ports of the three STAMP applications the reproduction's
//! evaluation drives (see DESIGN.md §4): **vacation** (travel reservations,
//! four relations in four partitions), **kmeans** (transactional centroid
//! accumulators) and **genome** (segment dedup + overlap matching).
//! Each application exposes its `partition_plan()`-style program model (or
//! partition constructors) so the compile-time analysis -> runtime
//! partitions pipeline of the paper's Figure 1 runs end to end.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod vacation;

pub use common::SplitMix64;
