//! The vacation database manager: four relations with STAMP semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, PVar, PVarFields,
    Partition, PartitionConfig, Stm, Tx, TxResult,
};
use partstm_structures::TRbTree;

/// The three reservable item kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReservationKind {
    /// Rental cars.
    Car,
    /// Flights.
    Flight,
    /// Hotel rooms.
    Room,
}

impl ReservationKind {
    /// All kinds, in STAMP's order.
    pub const ALL: [ReservationKind; 3] = [
        ReservationKind::Car,
        ReservationKind::Flight,
        ReservationKind::Room,
    ];

    /// Stable small integer encoding.
    pub fn code(self) -> u64 {
        match self {
            ReservationKind::Car => 0,
            ReservationKind::Flight => 1,
            ReservationKind::Room => 2,
        }
    }

    /// Inverse of [`ReservationKind::code`].
    pub fn from_code(c: u64) -> Self {
        match c {
            0 => ReservationKind::Car,
            1 => ReservationKind::Flight,
            _ => ReservationKind::Room,
        }
    }
}

/// Inventory record for one item id, bound to its relation's partition.
struct Reservation {
    total: PVar<u64>,
    used: PVar<u64>,
    free: PVar<u64>,
    price: PVar<u64>,
}

impl PVarFields for Reservation {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.total);
        f(&self.used);
        f(&self.free);
        f(&self.price);
    }
}

/// One entry in a customer's reservation list, bound to the customers
/// partition.
struct ResInfo {
    kind: PVar<u64>,
    item: PVar<u64>,
    price: PVar<u64>,
    next: PVar<Option<Handle<ResInfo>>>,
}

impl PVarFields for ResInfo {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.kind);
        f(&self.item);
        f(&self.price);
        f(&self.next);
    }
}

/// The partitions backing a [`Manager`] — either one per relation (the
/// paper's configuration) or a single shared partition (the base-STM
/// comparison point).
#[derive(Clone)]
pub struct ManagerParts {
    /// Car relation partition.
    pub cars: Arc<Partition>,
    /// Flight relation partition.
    pub flights: Arc<Partition>,
    /// Room relation partition.
    pub rooms: Arc<Partition>,
    /// Customer records + reservation lists partition.
    pub customers: Arc<Partition>,
}

impl ManagerParts {
    /// One partition per relation (names match
    /// [`super::partition_plan`]'s classes).
    pub fn partitioned(stm: &Stm, tunable: bool) -> Self {
        let mk = |name: &str| {
            let mut cfg = PartitionConfig::named(name);
            cfg.tune = tunable;
            stm.new_partition(cfg)
        };
        ManagerParts {
            cars: mk("vacation.cars"),
            flights: mk("vacation.flights"),
            rooms: mk("vacation.rooms"),
            customers: mk("vacation.customers"),
        }
    }

    /// Everything in one partition: the unpartitioned base STM.
    pub fn single(stm: &Stm, tunable: bool) -> Self {
        let mut cfg = PartitionConfig::named("vacation.all");
        cfg.tune = tunable;
        let p = stm.new_partition(cfg);
        ManagerParts {
            cars: Arc::clone(&p),
            flights: Arc::clone(&p),
            rooms: Arc::clone(&p),
            customers: p,
        }
    }

    /// Distinct partitions this manager uses (deduplicated).
    pub fn distinct(&self) -> Vec<Arc<Partition>> {
        let mut v: Vec<Arc<Partition>> = Vec::new();
        for p in [&self.cars, &self.flights, &self.rooms, &self.customers] {
            if !v.iter().any(|q| Arc::ptr_eq(q, p)) {
                v.push(Arc::clone(p));
            }
        }
        v
    }
}

struct ItemTable {
    tree: Arc<TRbTree>,
    arena: Arc<Arena<Reservation>>,
}

impl ItemTable {
    fn new(part: Arc<Partition>) -> Self {
        ItemTable {
            arena: Arc::new(Arena::new_bound(&part, |p| Reservation {
                total: p.tvar(0),
                used: p.tvar(0),
                free: p.tvar(0),
                price: p.tvar(0),
            })),
            tree: Arc::new(TRbTree::new(part)),
        }
    }

    fn register_with(&self, dir: &dyn CollectionRegistry) {
        self.tree.attach_directory(dir);
        dir.register_collection(Arc::clone(&self.arena) as Arc<dyn MigratableCollection>);
    }

    fn lookup<'e>(&'e self, tx: &mut Tx<'e, '_>, id: u64) -> TxResult<Option<Handle<Reservation>>> {
        Ok(self.tree.get(tx, id)?.map(Handle::<Reservation>::from_word))
    }
}

use partstm_core::TxWord;

/// The travel database: three item relations plus customers.
pub struct Manager {
    parts: ManagerParts,
    cars: ItemTable,
    flights: ItemTable,
    rooms: ItemTable,
    customers: Arc<TRbTree>,
    infos: Arc<Arena<ResInfo>>,
    release_violations: AtomicU64,
}

impl Manager {
    /// Creates an empty database over the given partitions.
    pub fn new(parts: ManagerParts) -> Self {
        Manager {
            cars: ItemTable::new(Arc::clone(&parts.cars)),
            flights: ItemTable::new(Arc::clone(&parts.flights)),
            rooms: ItemTable::new(Arc::clone(&parts.rooms)),
            customers: Arc::new(TRbTree::new(Arc::clone(&parts.customers))),
            infos: Arc::new(Arena::new_bound(&parts.customers, |p| ResInfo {
                kind: p.tvar(0),
                item: p.tvar(0),
                price: p.tvar(0),
                next: p.tvar(None),
            })),
            parts,
            release_violations: AtomicU64::new(0),
        }
    }

    /// Double-release validation failures observed so far:
    /// [`cancel`](Manager::cancel) /
    /// [`delete_customer`](Manager::delete_customer)
    /// attempts that found the item's `used` count already at zero.
    /// Approximate under contention (counted per attempt, including
    /// attempts whose transaction later retried).
    pub fn release_violations(&self) -> u64 {
        self.release_violations.load(Ordering::Relaxed)
    }

    /// The partitions backing this manager.
    pub fn parts(&self) -> &ManagerParts {
        &self.parts
    }

    /// Registers every arena-backed relation (item trees + inventory
    /// arenas, the customer tree and the reservation-info arena) with a
    /// migration directory, making the whole database repartition-aware.
    pub fn register_with(&self, dir: &dyn CollectionRegistry) {
        self.cars.register_with(dir);
        self.flights.register_with(dir);
        self.rooms.register_with(dir);
        self.customers.attach_directory(dir);
        dir.register_collection(Arc::clone(&self.infos) as Arc<dyn MigratableCollection>);
    }

    fn table(&self, kind: ReservationKind) -> &ItemTable {
        match kind {
            ReservationKind::Car => &self.cars,
            ReservationKind::Flight => &self.flights,
            ReservationKind::Room => &self.rooms,
        }
    }

    /// Adds inventory (creating the record if absent) and updates the
    /// price. STAMP `manager_add{Car,Flight,Room}`.
    pub fn add_item<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        kind: ReservationKind,
        id: u64,
        num: u64,
        price: u64,
    ) -> TxResult<bool> {
        let t = self.table(kind);
        match t.lookup(tx, id)? {
            Some(h) => {
                let r = t.arena.get(h);
                let total = tx.read(&r.total)?;
                let free = tx.read(&r.free)?;
                tx.write(&r.total, total + num)?;
                tx.write(&r.free, free + num)?;
                tx.write(&r.price, price)?;
            }
            None => {
                let h = t.arena.alloc(tx)?;
                let r = t.arena.get(h);
                tx.write(&r.total, num)?;
                tx.write(&r.used, 0)?;
                tx.write(&r.free, num)?;
                tx.write(&r.price, price)?;
                t.tree.put(tx, id, h.to_word())?;
            }
        }
        Ok(true)
    }

    /// Removes up to `num` unused units; deletes the record when the total
    /// reaches zero. Fails (returns `false`) if fewer than `num` are free.
    /// STAMP `manager_delete{Car,Flight,Room}`.
    pub fn remove_item<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        kind: ReservationKind,
        id: u64,
        num: u64,
    ) -> TxResult<bool> {
        let t = self.table(kind);
        let Some(h) = t.lookup(tx, id)? else {
            return Ok(false);
        };
        let r = t.arena.get(h);
        let free = tx.read(&r.free)?;
        if free < num {
            return Ok(false);
        }
        let total = tx.read(&r.total)?;
        tx.write(&r.free, free - num)?;
        tx.write(&r.total, total - num)?;
        if total - num == 0 {
            t.tree.delete(tx, id)?;
            t.arena.free(tx, h);
        }
        Ok(true)
    }

    /// Queries an item: `Some((free, price))` if the record exists.
    pub fn query_item<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        kind: ReservationKind,
        id: u64,
    ) -> TxResult<Option<(u64, u64)>> {
        let t = self.table(kind);
        match t.lookup(tx, id)? {
            Some(h) => {
                let r = t.arena.get(h);
                let free = tx.read(&r.free)?;
                let price = tx.read(&r.price)?;
                Ok(Some((free, price)))
            }
            None => Ok(None),
        }
    }

    /// Registers a customer; `false` if already present.
    pub fn add_customer<'e>(&'e self, tx: &mut Tx<'e, '_>, id: u64) -> TxResult<bool> {
        if self.customers.get(tx, id)?.is_some() {
            return Ok(false);
        }
        // Value encodes the reservation-list head; 0 = empty list.
        self.customers.put(tx, id, 0)?;
        Ok(true)
    }

    /// Reserves one unit of `(kind, item)` for `customer`. `false` if the
    /// customer or item is missing or nothing is free.
    pub fn reserve<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        customer: u64,
        kind: ReservationKind,
        item: u64,
    ) -> TxResult<bool> {
        let Some(head_word) = self.customers.get(tx, customer)? else {
            return Ok(false);
        };
        let t = self.table(kind);
        let Some(h) = t.lookup(tx, item)? else {
            return Ok(false);
        };
        let r = t.arena.get(h);
        let free = tx.read(&r.free)?;
        if free == 0 {
            return Ok(false);
        }
        let used = tx.read(&r.used)?;
        let price = tx.read(&r.price)?;
        tx.write(&r.free, free - 1)?;
        tx.write(&r.used, used + 1)?;
        // Prepend to the customer's reservation list.
        let info = self.infos.alloc(tx)?;
        let n = self.infos.get(info);
        tx.write(&n.kind, kind.code())?;
        tx.write(&n.item, item)?;
        tx.write(&n.price, price)?;
        tx.write(&n.next, Option::<Handle<ResInfo>>::from_word(head_word))?;
        self.customers.put(tx, customer, info.to_word())?;
        Ok(true)
    }

    /// Cancels one reservation of `(kind, item)` held by `customer`.
    pub fn cancel<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        customer: u64,
        kind: ReservationKind,
        item: u64,
    ) -> TxResult<bool> {
        let Some(head_word) = self.customers.get(tx, customer)? else {
            return Ok(false);
        };
        // Find the matching info node.
        let mut prev: Option<Handle<ResInfo>> = None;
        let mut cur = Option::<Handle<ResInfo>>::from_word(head_word);
        while let Some(h) = cur {
            let n = self.infos.get(h);
            let k = tx.read(&n.kind)?;
            let it = tx.read(&n.item)?;
            if k == kind.code() && it == item {
                break;
            }
            prev = Some(h);
            cur = tx.read(&n.next)?;
        }
        let Some(h) = cur else { return Ok(false) };
        // Validate the release before mutating anything: a zero `used`
        // means the unit was already released (or never reserved against
        // this record); incrementing `free` anyway would silently break
        // `used + free == total`. Count it and fail the cancel with the
        // database untouched.
        let t = self.table(kind);
        let release = match t.lookup(tx, item)? {
            Some(rh) => {
                let used = tx.read(&t.arena.get(rh).used)?;
                if used == 0 {
                    self.release_violations.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                Some((rh, used))
            }
            None => None,
        };
        let next = tx.read(&self.infos.get(h).next)?;
        match prev {
            Some(p) => tx.write(&self.infos.get(p).next, next)?,
            None => {
                self.customers.put(tx, customer, next.to_word())?;
            }
        }
        self.infos.free(tx, h);
        if let Some((rh, used)) = release {
            let r = t.arena.get(rh);
            let free = tx.read(&r.free)?;
            tx.write(&r.free, free + 1)?;
            tx.write(&r.used, used - 1)?;
        }
        Ok(true)
    }

    /// Total price of a customer's reservations (their bill), or `None` if
    /// the customer does not exist.
    pub fn query_bill<'e>(&'e self, tx: &mut Tx<'e, '_>, customer: u64) -> TxResult<Option<u64>> {
        let Some(head_word) = self.customers.get(tx, customer)? else {
            return Ok(None);
        };
        let mut bill = 0u64;
        let mut cur = Option::<Handle<ResInfo>>::from_word(head_word);
        while let Some(h) = cur {
            let n = self.infos.get(h);
            bill += tx.read(&n.price)?;
            cur = tx.read(&n.next)?;
        }
        Ok(Some(bill))
    }

    /// Deletes a customer, releasing every reservation they hold; returns
    /// their final bill. STAMP's DELETE_CUSTOMER action.
    pub fn delete_customer<'e>(
        &'e self,
        tx: &mut Tx<'e, '_>,
        customer: u64,
    ) -> TxResult<Option<u64>> {
        let Some(head_word) = self.customers.get(tx, customer)? else {
            return Ok(None);
        };
        let mut bill = 0u64;
        let mut cur = Option::<Handle<ResInfo>>::from_word(head_word);
        while let Some(h) = cur {
            let n = self.infos.get(h);
            bill += tx.read(&n.price)?;
            let kind = ReservationKind::from_code(tx.read(&n.kind)?);
            let item = tx.read(&n.item)?;
            // Release the unit back to its table. A zero `used` is a
            // double-release: skip the writes (the info is dropped with
            // the customer either way) and count the violation instead
            // of inflating `free` past `total`.
            let t = self.table(kind);
            if let Some(rh) = t.lookup(tx, item)? {
                let r = t.arena.get(rh);
                let used = tx.read(&r.used)?;
                if used == 0 {
                    self.release_violations.fetch_add(1, Ordering::Relaxed);
                } else {
                    let free = tx.read(&r.free)?;
                    tx.write(&r.free, free + 1)?;
                    tx.write(&r.used, used - 1)?;
                }
            }
            let next = tx.read(&n.next)?;
            self.infos.free(tx, h);
            cur = next;
        }
        self.customers.delete(tx, customer)?;
        Ok(Some(bill))
    }

    /// Cross-partition consistency check (quiescent only): per record
    /// `used + free == total`, and for every kind the sum of `used` equals
    /// the number of reservation infos customers hold. Returns counts
    /// `(records, customers, infos)`.
    pub fn check_invariants(&self) -> Result<(usize, usize, usize), String> {
        let mut used_by_kind = [0u64; 3];
        let mut records = 0usize;
        for kind in ReservationKind::ALL {
            let t = self.table(kind);
            for (id, raw) in t.tree.snapshot_pairs() {
                let h = Handle::<Reservation>::from_word(raw);
                let r = t.arena.get(h);
                let total = r.total.load_direct();
                let used = r.used.load_direct();
                let free = r.free.load_direct();
                if used + free != total {
                    return Err(format!(
                        "{kind:?} item {id}: used {used} + free {free} != total {total}"
                    ));
                }
                used_by_kind[kind.code() as usize] += used;
                records += 1;
            }
        }
        let mut infos_by_kind = [0u64; 3];
        let mut customers = 0usize;
        let mut infos = 0usize;
        for (_id, head) in self.customers.snapshot_pairs() {
            customers += 1;
            let mut cur = Option::<Handle<ResInfo>>::from_word(head);
            while let Some(h) = cur {
                let n = self.infos.get(h);
                infos_by_kind[n.kind.load_direct() as usize] += 1;
                infos += 1;
                cur = n.next.load_direct();
            }
        }
        if used_by_kind != infos_by_kind {
            return Err(format!(
                "used per kind {used_by_kind:?} != customer infos per kind {infos_by_kind:?}"
            ));
        }
        Ok((records, customers, infos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_core::Stm;

    fn setup() -> (Stm, Manager) {
        let stm = Stm::new();
        let m = Manager::new(ManagerParts::partitioned(&stm, false));
        (stm, m)
    }

    /// `register_with` hands every arena-backed relation to the directory:
    /// three item tables (tree + inventory arena each), the customer tree
    /// and the reservation-info arena.
    #[test]
    fn register_with_covers_every_relation() {
        use std::cell::Cell;
        struct Counting(Cell<usize>);
        impl CollectionRegistry for Counting {
            fn register_collection(&self, c: Arc<dyn MigratableCollection>) {
                // Every registered collection has a live home partition.
                let _ = c.home_partition();
                self.0.set(self.0.get() + 1);
            }
        }
        let (_stm, m) = setup();
        let reg = Counting(Cell::new(0));
        m.register_with(&reg);
        assert_eq!(reg.0.get(), 8, "3 x (tree + arena) + customers + infos");
    }

    #[test]
    fn add_query_remove_item() {
        let (stm, m) = setup();
        let ctx = stm.register_thread();
        ctx.run(|tx| m.add_item(tx, ReservationKind::Car, 7, 100, 50));
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Car, 7)),
            Some((100, 50))
        );
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Flight, 7)),
            None
        );
        // Top-up adjusts inventory and price.
        ctx.run(|tx| m.add_item(tx, ReservationKind::Car, 7, 10, 60));
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Car, 7)),
            Some((110, 60))
        );
        assert!(ctx.run(|tx| m.remove_item(tx, ReservationKind::Car, 7, 110)));
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Car, 7)),
            None
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn reserve_and_bill_lifecycle() {
        let (stm, m) = setup();
        let ctx = stm.register_thread();
        ctx.run(|tx| {
            m.add_item(tx, ReservationKind::Car, 1, 2, 30)?;
            m.add_item(tx, ReservationKind::Room, 9, 1, 100)?;
            m.add_customer(tx, 42)?;
            Ok(())
        });
        assert!(ctx.run(|tx| m.reserve(tx, 42, ReservationKind::Car, 1)));
        assert!(ctx.run(|tx| m.reserve(tx, 42, ReservationKind::Room, 9)));
        assert!(
            !ctx.run(|tx| m.reserve(tx, 42, ReservationKind::Room, 9)),
            "no rooms free"
        );
        assert!(
            !ctx.run(|tx| m.reserve(tx, 7, ReservationKind::Car, 1)),
            "unknown customer"
        );
        assert_eq!(ctx.run(|tx| m.query_bill(tx, 42)), Some(130));
        m.check_invariants().unwrap();
        // Cancel the car; bill shrinks, inventory restored.
        assert!(ctx.run(|tx| m.cancel(tx, 42, ReservationKind::Car, 1)));
        assert_eq!(ctx.run(|tx| m.query_bill(tx, 42)), Some(100));
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Car, 1)),
            Some((2, 30))
        );
        m.check_invariants().unwrap();
        // Delete the customer: room released.
        assert_eq!(ctx.run(|tx| m.delete_customer(tx, 42)), Some(100));
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Room, 9)),
            Some((1, 100))
        );
        assert_eq!(ctx.run(|tx| m.query_bill(tx, 42)), None);
        m.check_invariants().unwrap();
    }

    #[test]
    fn remove_item_respects_used_units() {
        let (stm, m) = setup();
        let ctx = stm.register_thread();
        ctx.run(|tx| {
            m.add_item(tx, ReservationKind::Flight, 3, 1, 80)?;
            m.add_customer(tx, 1)?;
            Ok(())
        });
        assert!(ctx.run(|tx| m.reserve(tx, 1, ReservationKind::Flight, 3)));
        assert!(
            !ctx.run(|tx| m.remove_item(tx, ReservationKind::Flight, 3, 1)),
            "cannot remove a used unit"
        );
        m.check_invariants().unwrap();
    }

    /// A release against a record whose `used` count is already zero is
    /// a double-release: the old code's `saturating_sub` silently
    /// absorbed it while still incrementing `free`, breaking
    /// `used + free == total`. Now `cancel` fails validation without
    /// writing anything and `delete_customer` skips the bogus release,
    /// both counting the violation.
    #[test]
    fn double_release_fails_validation_instead_of_corrupting() {
        let (stm, m) = setup();
        let ctx = stm.register_thread();
        ctx.run(|tx| {
            m.add_item(tx, ReservationKind::Car, 1, 5, 10)?;
            m.add_customer(tx, 42)?;
            Ok(())
        });
        assert!(ctx.run(|tx| m.reserve(tx, 42, ReservationKind::Car, 1)));
        // Fabricate the state a masked double-release would leave: the
        // unit already back in inventory while the customer still holds
        // the reservation info.
        let h = ctx
            .run(|tx| m.table(ReservationKind::Car).lookup(tx, 1))
            .unwrap();
        let r = m.cars.arena.get(h);
        r.used.store_direct(0);
        r.free.store_direct(5);
        assert_eq!(m.release_violations(), 0);
        assert!(
            !ctx.run(|tx| m.cancel(tx, 42, ReservationKind::Car, 1)),
            "cancel must fail validation, not re-release"
        );
        assert_eq!(m.release_violations(), 1);
        assert_eq!(
            ctx.run(|tx| m.query_item(tx, ReservationKind::Car, 1)),
            Some((5, 10)),
            "failed cancel wrote nothing"
        );
        assert_eq!(ctx.run(|tx| m.query_bill(tx, 42)), Some(10), "info kept");
        // delete_customer drops the info and skips the bogus release,
        // restoring cross-relation consistency.
        assert_eq!(ctx.run(|tx| m.delete_customer(tx, 42)), Some(10));
        assert_eq!(m.release_violations(), 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn single_partition_mode_shares_metadata() {
        let stm = Stm::new();
        let parts = ManagerParts::single(&stm, false);
        assert_eq!(parts.distinct().len(), 1);
        let m = Manager::new(parts);
        let ctx = stm.register_thread();
        ctx.run(|tx| {
            m.add_item(tx, ReservationKind::Car, 1, 5, 10)?;
            m.add_customer(tx, 2)?;
            Ok(())
        });
        assert!(ctx.run(|tx| m.reserve(tx, 2, ReservationKind::Car, 1)));
        m.check_invariants().unwrap();
        let partitioned = ManagerParts::partitioned(&stm, false);
        assert_eq!(partitioned.distinct().len(), 4);
    }
}
