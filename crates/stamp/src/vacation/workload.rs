//! The vacation client workload (STAMP's task mix and parameters).

use partstm_core::ThreadCtx;

use super::manager::{Manager, ReservationKind};
use crate::common::SplitMix64;

/// Workload parameters (STAMP flags in comments).
#[derive(Debug, Clone)]
pub struct VacationConfig {
    /// Rows per relation (`-r`).
    pub relations: u64,
    /// Queries per task (`-n`).
    pub queries_per_task: usize,
    /// Percentage of relations touched by queries (`-q`).
    pub query_range_pct: u64,
    /// Percentage of user (make-reservation) tasks (`-u`); the remainder
    /// splits evenly between delete-customer and update-tables.
    pub user_pct: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl VacationConfig {
    /// STAMP `vacation-low` (low contention): `-n2 -q90 -u98`.
    pub fn low(relations: u64) -> Self {
        VacationConfig {
            relations,
            queries_per_task: 2,
            query_range_pct: 90,
            user_pct: 98,
            seed: 0xBADC_0FFE,
        }
    }

    /// STAMP `vacation-high` (high contention): `-n4 -q60 -u90`.
    pub fn high(relations: u64) -> Self {
        VacationConfig {
            relations,
            queries_per_task: 4,
            query_range_pct: 60,
            user_pct: 90,
            seed: 0xBADC_0FFE,
        }
    }

    /// Key range queries draw from.
    pub fn query_range(&self) -> u64 {
        (self.relations * self.query_range_pct / 100).max(1)
    }
}

/// Per-client outcome counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct VacationStats {
    /// Make-reservation tasks executed.
    pub make_tasks: u64,
    /// Reservations actually made.
    pub reservations: u64,
    /// Delete-customer tasks executed.
    pub delete_tasks: u64,
    /// Customers actually deleted.
    pub deletions: u64,
    /// Update-tables tasks executed.
    pub update_tasks: u64,
    /// Inventory rows touched by updates.
    pub updates: u64,
}

impl VacationStats {
    /// Element-wise sum.
    pub fn merge(&mut self, o: &VacationStats) {
        self.make_tasks += o.make_tasks;
        self.reservations += o.reservations;
        self.delete_tasks += o.delete_tasks;
        self.deletions += o.deletions;
        self.update_tasks += o.update_tasks;
        self.updates += o.updates;
    }

    /// Total tasks.
    pub fn tasks(&self) -> u64 {
        self.make_tasks + self.delete_tasks + self.update_tasks
    }
}

/// Populates the database as STAMP does: every relation gets `relations`
/// rows with `(rng % 5 + 1) * 100` units priced `(rng % 5) * 10 + 50`, and
/// every customer id is registered.
pub fn populate(ctx: &ThreadCtx, manager: &Manager, cfg: &VacationConfig) {
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5EED);
    for id in 0..cfg.relations {
        for kind in ReservationKind::ALL {
            let num = (rng.below(5) + 1) * 100;
            let price = rng.below(5) * 10 + 50;
            ctx.run(|tx| manager.add_item(tx, kind, id, num, price).map(|_| ()));
        }
        ctx.run(|tx| manager.add_customer(tx, id).map(|_| ()));
    }
}

/// Runs `tasks` client tasks on this thread (STAMP's client loop: each task
/// is one transaction).
pub fn run_client(
    ctx: &ThreadCtx,
    manager: &Manager,
    cfg: &VacationConfig,
    tasks: u64,
    client_id: u64,
) -> VacationStats {
    let mut rng = SplitMix64::new(cfg.seed.wrapping_add(client_id.wrapping_mul(0x9E37)));
    let mut stats = VacationStats::default();
    for _ in 0..tasks {
        run_one_task(ctx, manager, cfg, &mut rng, &mut stats);
    }
    stats
}

/// Executes exactly one client task from the STAMP mix, updating `stats`.
/// Fixed-time harnesses call this directly.
pub fn run_one_task(
    ctx: &ThreadCtx,
    manager: &Manager,
    cfg: &VacationConfig,
    rng: &mut SplitMix64,
    stats: &mut VacationStats,
) {
    let range = cfg.query_range();
    let roll = rng.below(100);
    if roll < cfg.user_pct {
        stats.make_tasks += 1;
        stats.reservations += task_make_reservation(ctx, manager, cfg, rng, range);
    } else if roll < cfg.user_pct + (100 - cfg.user_pct) / 2 {
        stats.delete_tasks += 1;
        stats.deletions += task_delete_customer(ctx, manager, rng, range);
    } else {
        stats.update_tasks += 1;
        stats.updates += task_update_tables(ctx, manager, cfg, rng, range);
    }
}

/// MAKE_RESERVATION: query `n` random items, remember the priciest
/// available item per kind, then reserve them for a random customer — all
/// in one transaction.
fn task_make_reservation(
    ctx: &ThreadCtx,
    manager: &Manager,
    cfg: &VacationConfig,
    rng: &mut SplitMix64,
    range: u64,
) -> u64 {
    // Pre-draw the query plan outside the transaction (STAMP does the same)
    // so retries re-execute an identical task.
    let queries: Vec<(ReservationKind, u64)> = (0..cfg.queries_per_task)
        .map(|_| (ReservationKind::ALL[rng.below_usize(3)], rng.below(range)))
        .collect();
    let customer = rng.below(range);
    ctx.run(|tx| {
        let mut best: [Option<(u64, u64)>; 3] = [None; 3]; // kind -> (price, id)
        for &(kind, id) in &queries {
            if let Some((free, price)) = manager.query_item(tx, kind, id)? {
                if free > 0 {
                    let slot = &mut best[kind.code() as usize];
                    if slot.is_none_or(|(p, _)| price > p) {
                        *slot = Some((price, id));
                    }
                }
            }
        }
        let mut made = 0u64;
        if best.iter().any(|b| b.is_some()) {
            manager.add_customer(tx, customer)?; // idempotent
            for (code, slot) in best.iter().enumerate() {
                if let Some((_, id)) = slot {
                    if manager.reserve(
                        tx,
                        customer,
                        ReservationKind::from_code(code as u64),
                        *id,
                    )? {
                        made += 1;
                    }
                }
            }
        }
        Ok(made)
    })
}

/// DELETE_CUSTOMER: bill and remove a random customer.
fn task_delete_customer(
    ctx: &ThreadCtx,
    manager: &Manager,
    rng: &mut SplitMix64,
    range: u64,
) -> u64 {
    let customer = rng.below(range);
    ctx.run(|tx| {
        Ok(match manager.delete_customer(tx, customer)? {
            Some(_) => 1,
            None => 0,
        })
    })
}

/// UPDATE_TABLES: add or remove inventory for `n` random items.
fn task_update_tables(
    ctx: &ThreadCtx,
    manager: &Manager,
    cfg: &VacationConfig,
    rng: &mut SplitMix64,
    range: u64,
) -> u64 {
    let updates: Vec<(ReservationKind, u64, bool, u64)> = (0..cfg.queries_per_task)
        .map(|_| {
            (
                ReservationKind::ALL[rng.below_usize(3)],
                rng.below(range),
                rng.pct(50),
                rng.below(5) * 10 + 50,
            )
        })
        .collect();
    ctx.run(|tx| {
        let mut touched = 0u64;
        for &(kind, id, add, price) in &updates {
            let ok: bool = if add {
                manager.add_item(tx, kind, id, 100, price)?
            } else {
                manager.remove_item(tx, kind, id, 100)?
            };
            touched += u64::from(ok);
        }
        Ok::<u64, partstm_core::Abort>(touched)
    })
}

/// Convenience: full populate-then-run on `threads` threads; returns merged
/// stats. Used by tests and the harness.
pub fn run_vacation(
    stm: &partstm_core::Stm,
    manager: &Manager,
    cfg: &VacationConfig,
    threads: usize,
    tasks_per_thread: u64,
) -> VacationStats {
    let mut total = VacationStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ctx = stm.register_thread();
                s.spawn(move || run_client(&ctx, manager, cfg, tasks_per_thread, t as u64))
            })
            .collect();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vacation::ManagerParts;
    use partstm_core::Stm;

    #[test]
    fn populate_sets_up_relations() {
        let stm = Stm::new();
        let m = Manager::new(ManagerParts::partitioned(&stm, false));
        let cfg = VacationConfig::low(64);
        let ctx = stm.register_thread();
        populate(&ctx, &m, &cfg);
        let (records, customers, infos) = m.check_invariants().unwrap();
        assert_eq!(records, 64 * 3);
        assert_eq!(customers, 64);
        assert_eq!(infos, 0);
    }

    #[test]
    fn single_threaded_task_mix_keeps_invariants() {
        let stm = Stm::new();
        let m = Manager::new(ManagerParts::partitioned(&stm, false));
        let cfg = VacationConfig::high(64);
        let ctx = stm.register_thread();
        populate(&ctx, &m, &cfg);
        let stats = run_client(&ctx, &m, &cfg, 500, 0);
        assert_eq!(stats.tasks(), 500);
        assert!(stats.make_tasks > 400, "user_pct=90 dominates");
        assert!(stats.reservations > 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_clients_keep_invariants_partitioned() {
        let stm = Stm::new();
        let m = Manager::new(ManagerParts::partitioned(&stm, false));
        let cfg = VacationConfig::high(128);
        let ctx = stm.register_thread();
        populate(&ctx, &m, &cfg);
        let stats = run_vacation(&stm, &m, &cfg, 4, 400);
        assert_eq!(stats.tasks(), 1600);
        m.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_clients_keep_invariants_single_partition() {
        let stm = Stm::new();
        let m = Manager::new(ManagerParts::single(&stm, false));
        let cfg = VacationConfig::high(128);
        let ctx = stm.register_thread();
        populate(&ctx, &m, &cfg);
        let stats = run_vacation(&stm, &m, &cfg, 4, 400);
        assert_eq!(stats.tasks(), 1600);
        m.check_invariants().unwrap();
    }
}
