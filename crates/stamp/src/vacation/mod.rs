//! STAMP **vacation**: an online travel reservation system.
//!
//! The database has four relations — cars, flights, rooms (id ->
//! availability + price) and customers (id -> their reservation list).
//! Client transactions mix *make-reservation* (query several items, reserve
//! the best), *delete-customer* (compute the bill, release everything) and
//! *update-tables* (add/remove inventory). Faithful port of STAMP's
//! `vacation` with the same parameterization (`queries per task`, `% of
//! relations queried`, `% user tasks`).
//!
//! Each relation lives in its own partition (plus one for the customer
//! records/reservation lists): the paper's flagship example of an
//! application whose partitions see different workloads — the customer
//! partition is update-heavy while the item tables are query-dominated.

mod manager;
mod workload;

pub use manager::{Manager, ManagerParts, ReservationKind};
pub use workload::{
    populate, run_client, run_one_task, run_vacation, VacationConfig, VacationStats,
};

use partstm_analysis::{AccessKind, ModelBuilder, ProgramModel};

/// The program model the compile-time analysis consumes: vacation's
/// allocation and access sites with their may-touch sets (what the
/// Tanger/LLVM frontend would emit). Running `partstm_analysis::partition`
/// on this yields exactly the partitions [`Manager::new`] materializes.
pub fn partition_plan() -> ProgramModel {
    let mut b = ModelBuilder::new("vacation");
    let car_tree = b.alloc("car_table_nodes", "RbTreeNode");
    let car_res = b.alloc("car_reservations", "Reservation");
    let flight_tree = b.alloc("flight_table_nodes", "RbTreeNode");
    let flight_res = b.alloc("flight_reservations", "Reservation");
    let room_tree = b.alloc("room_table_nodes", "RbTreeNode");
    let room_res = b.alloc("room_reservations", "Reservation");
    let cust_tree = b.alloc("customer_table_nodes", "RbTreeNode");
    let cust_rec = b.alloc("customer_records", "Customer");
    let res_info = b.alloc("reservation_infos", "ReservationInfo");

    // Item-table access sites: lookups and inventory updates touch the tree
    // nodes and the reservation records of one relation only.
    for (name, tree, res) in [
        ("car", car_tree, car_res),
        ("flight", flight_tree, flight_res),
        ("room", room_tree, room_res),
    ] {
        b.access(format!("query_{name}"), AccessKind::Read, &[tree, res]);
        b.access(
            format!("reserve_{name}"),
            AccessKind::ReadWrite,
            &[tree, res],
        );
        b.access(
            format!("update_{name}_inventory"),
            AccessKind::ReadWrite,
            &[tree, res],
        );
    }
    // Customer access sites: the record, its tree node and its reservation
    // list are one cluster.
    b.access("customer_lookup", AccessKind::Read, &[cust_tree, cust_rec]);
    b.access(
        "customer_add_reservation_info",
        AccessKind::ReadWrite,
        &[cust_tree, cust_rec, res_info],
    );
    b.access(
        "customer_bill_and_delete",
        AccessKind::ReadWrite,
        &[cust_tree, cust_rec, res_info],
    );
    b.build().expect("vacation model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use partstm_analysis::{partition, Strategy};

    #[test]
    fn analysis_finds_four_partitions() {
        let model = partition_plan();
        let plan = partition(&model, Strategy::MayTouch).unwrap();
        // cars, flights, rooms, customers+infos.
        assert_eq!(plan.partition_count(), 4);
        // The customer cluster contains the reservation infos.
        let cust = plan
            .class_of_alloc(model.alloc_by_name("customer_records").unwrap().id)
            .unwrap();
        let infos = plan
            .class_of_alloc(model.alloc_by_name("reservation_infos").unwrap().id)
            .unwrap();
        assert_eq!(cust, infos);
        // Item tables are pairwise distinct.
        let car = plan
            .class_of_alloc(model.alloc_by_name("car_table_nodes").unwrap().id)
            .unwrap();
        let flight = plan
            .class_of_alloc(model.alloc_by_name("flight_table_nodes").unwrap().id)
            .unwrap();
        assert_ne!(car, flight);
        assert_ne!(car, cust);
    }

    #[test]
    fn type_seeded_analysis_collapses_trees() {
        // Per-type metadata cannot separate the four rb-trees: exactly the
        // deficiency the paper's §1 calls out.
        let model = partition_plan();
        let plan = partition(&model, Strategy::TypeSeeded).unwrap();
        assert!(plan.partition_count() < 4);
    }
}
