//! Shared workload utilities: deterministic RNG and thread driving.

/// SplitMix64: tiny, fast, seedable PRNG for workload generation.
/// Deterministic across platforms so benchmark runs are reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random value.
    #[inline]
    #[allow(clippy::should_implement_trait)] // an RNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Uniform value in `0..bound` as usize.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    /// Percentage roll: `true` with probability `pct`/100.
    #[inline]
    pub fn pct(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x = a.next();
            assert_eq!(x, b.next());
            seen.insert(x);
        }
        assert_eq!(seen.len(), 1000, "no collisions expected in 1000 draws");
    }

    #[test]
    fn below_and_pct_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_usize(3) < 3);
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
        let mut yes = 0;
        for _ in 0..10_000 {
            if r.pct(30) {
                yes += 1;
            }
        }
        assert!((2500..3500).contains(&yes), "pct(30) ~ 30%: {yes}");
    }
}
