//! STAMP **kmeans**: parallel K-means clustering with transactional
//! centroid accumulators.
//!
//! Threads partition the points; for each point they find the nearest
//! centroid (pure reads of the per-iteration snapshot) and then
//! transactionally add the point into that centroid's accumulator. The
//! contention knob is K: many clusters spread the accumulator writes (low
//! contention, STAMP `kmeans-low`), few clusters focus them (high
//! contention, `kmeans-high`).
//!
//! The accumulators live in one partition (`kmeans.clusters`) — a pure
//! update workload, the opposite end of the spectrum from vacation's
//! query-dominated tables.

use std::sync::Arc;

use partstm_core::{PVar, Partition, PartitionConfig, Stm, Tx, TxResult};

use crate::common::SplitMix64;

/// K-means parameters.
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Number of clusters (K). STAMP-low uses 40, STAMP-high 15 (scaled).
    pub clusters: usize,
    /// Convergence threshold: fraction of points changing membership.
    pub threshold: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl KmeansConfig {
    /// Low-contention setup (many clusters).
    pub fn low(points: usize) -> Self {
        KmeansConfig {
            points,
            dims: 16,
            clusters: 40,
            threshold: 0.001,
            max_iterations: 40,
            seed: 0x0C10_57E5,
        }
    }

    /// High-contention setup (few clusters).
    pub fn high(points: usize) -> Self {
        KmeansConfig {
            clusters: 4,
            ..Self::low(points)
        }
    }
}

/// One centroid's transactional accumulator, bound to the clusters
/// partition.
struct ClusterAcc {
    count: PVar<u64>,
    /// Per-dimension running sums (f64 bits in words).
    sums: Vec<PVar<f64>>,
}

/// The transactional state: K accumulators in one partition.
pub struct KmeansState {
    part: Arc<Partition>,
    accs: Vec<ClusterAcc>,
}

impl KmeansState {
    /// Builds accumulators for `k` clusters of `dims` dimensions.
    pub fn new(part: Arc<Partition>, k: usize, dims: usize) -> Self {
        let accs = (0..k)
            .map(|_| ClusterAcc {
                count: part.tvar(0),
                sums: (0..dims).map(|_| part.tvar(0.0)).collect(),
            })
            .collect();
        KmeansState { part, accs }
    }

    /// Transactionally adds `point` into cluster `k`'s accumulator.
    pub fn add_point<'e>(&'e self, tx: &mut Tx<'e, '_>, k: usize, point: &[f32]) -> TxResult<()> {
        let acc = &self.accs[k];
        let c = tx.read(&acc.count)?;
        tx.write(&acc.count, c + 1)?;
        for (d, sum) in acc.sums.iter().enumerate() {
            let s = tx.read(sum)?;
            tx.write(sum, s + point[d] as f64)?;
        }
        Ok(())
    }

    /// Reads out and clears the accumulators (single-threaded, between
    /// iterations), producing the new centroids. Clusters with no members
    /// keep their previous centroid.
    pub fn drain_into(&self, centroids: &mut [Vec<f32>]) {
        for (k, acc) in self.accs.iter().enumerate() {
            let n = acc.count.load_direct();
            if n > 0 {
                for (d, sum) in acc.sums.iter().enumerate() {
                    centroids[k][d] = (sum.load_direct() / n as f64) as f32;
                }
            }
            acc.count.store_direct(0);
            for sum in &acc.sums {
                sum.store_direct(0.0);
            }
        }
    }

    /// The partition guarding the accumulators.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.part
    }
}

/// Generates a clustered synthetic dataset: K' true centers plus Gaussian-
/// ish noise (sum of uniforms), deterministic in `seed`.
pub fn generate_points(cfg: &KmeansConfig) -> Vec<Vec<f32>> {
    let mut rng = SplitMix64::new(cfg.seed);
    let true_centers: Vec<Vec<f32>> = (0..cfg.clusters)
        .map(|_| (0..cfg.dims).map(|_| (rng.f64() * 100.0) as f32).collect())
        .collect();
    (0..cfg.points)
        .map(|_| {
            let c = &true_centers[rng.below_usize(cfg.clusters.max(1))];
            (0..cfg.dims)
                .map(|d| {
                    let noise: f64 = (0..4).map(|_| rng.f64() - 0.5).sum::<f64>() * 4.0;
                    c[d] + noise as f32
                })
                .collect()
        })
        .collect()
}

fn nearest(centroids: &[Vec<f32>], p: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (k, c) in centroids.iter().enumerate() {
        let mut d = 0f32;
        for (a, b) in c.iter().zip(p) {
            let diff = a - b;
            d += diff * diff;
        }
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Final centroids.
    pub centroids: Vec<Vec<f32>>,
    /// Final point memberships.
    pub membership: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs parallel transactional K-means over `points` with `threads`
/// workers. Deterministic given the dataset and initial centroids (the
/// final fixed point does not depend on accumulation order up to float
/// rounding; membership is recomputed from centroids each round).
pub fn run_kmeans(
    stm: &Stm,
    state: &KmeansState,
    cfg: &KmeansConfig,
    points: &[Vec<f32>],
    threads: usize,
) -> KmeansResult {
    let mut centroids: Vec<Vec<f32>> = points.iter().take(cfg.clusters).cloned().collect();
    while centroids.len() < cfg.clusters {
        centroids.push(vec![0.0; cfg.dims]);
    }
    let mut membership = vec![usize::MAX; points.len()];
    let mut iterations = 0;
    for _ in 0..cfg.max_iterations {
        iterations += 1;
        // Parallel phase: assign + accumulate.
        let new_membership: Vec<(usize, Vec<usize>)> = std::thread::scope(|s| {
            let chunk = points.len().div_ceil(threads);
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let ctx = stm.register_thread();
                    let centroids = &centroids;
                    s.spawn(move || {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(points.len());
                        let mut local = Vec::with_capacity(hi.saturating_sub(lo));
                        for p in &points[lo..hi.max(lo)] {
                            let k = nearest(centroids, p);
                            ctx.run(|tx| state.add_point(tx, k, p));
                            local.push(k);
                        }
                        (lo, local)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Sequential phase: apply membership, recompute centroids.
        let mut changed = 0usize;
        for (lo, local) in new_membership {
            for (i, k) in local.into_iter().enumerate() {
                if membership[lo + i] != k {
                    changed += 1;
                    membership[lo + i] = k;
                }
            }
        }
        state.drain_into(&mut centroids);
        if (changed as f64) < cfg.threshold * points.len() as f64 {
            break;
        }
    }
    KmeansResult {
        centroids,
        membership,
        iterations,
    }
}

/// Sequential reference implementation (no STM): used to validate the
/// transactional run.
pub fn run_kmeans_sequential(cfg: &KmeansConfig, points: &[Vec<f32>]) -> KmeansResult {
    let mut centroids: Vec<Vec<f32>> = points.iter().take(cfg.clusters).cloned().collect();
    while centroids.len() < cfg.clusters {
        centroids.push(vec![0.0; cfg.dims]);
    }
    let mut membership = vec![usize::MAX; points.len()];
    let mut iterations = 0;
    for _ in 0..cfg.max_iterations {
        iterations += 1;
        let mut sums = vec![vec![0f64; cfg.dims]; cfg.clusters];
        let mut counts = vec![0u64; cfg.clusters];
        let mut changed = 0usize;
        for (i, p) in points.iter().enumerate() {
            let k = nearest(&centroids, p);
            if membership[i] != k {
                changed += 1;
                membership[i] = k;
            }
            counts[k] += 1;
            for d in 0..cfg.dims {
                sums[k][d] += p[d] as f64;
            }
        }
        for k in 0..cfg.clusters {
            if counts[k] > 0 {
                for d in 0..cfg.dims {
                    centroids[k][d] = (sums[k][d] / counts[k] as f64) as f32;
                }
            }
        }
        if (changed as f64) < cfg.threshold * points.len() as f64 {
            break;
        }
    }
    KmeansResult {
        centroids,
        membership,
        iterations,
    }
}

/// Builds the default partition + state for a config.
pub fn make_state(stm: &Stm, cfg: &KmeansConfig, tunable: bool) -> KmeansState {
    let mut pc = PartitionConfig::named("kmeans.clusters");
    pc.tune = tunable;
    KmeansState::new(stm.new_partition(pc), cfg.clusters, cfg.dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_picks_closest() {
        let cents = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(nearest(&cents, &[1.0, 1.0]), 0);
        assert_eq!(nearest(&cents, &[9.0, 9.0]), 1);
    }

    #[test]
    fn accumulator_roundtrip() {
        let stm = Stm::new();
        let st = KmeansState::new(stm.new_partition(PartitionConfig::named("k")), 2, 3);
        let ctx = stm.register_thread();
        ctx.run(|tx| st.add_point(tx, 0, &[1.0, 2.0, 3.0]));
        ctx.run(|tx| st.add_point(tx, 0, &[3.0, 2.0, 1.0]));
        let mut cents = vec![vec![0.0f32; 3]; 2];
        st.drain_into(&mut cents);
        assert_eq!(cents[0], vec![2.0, 2.0, 2.0]);
        assert_eq!(cents[1], vec![0.0, 0.0, 0.0], "empty cluster keeps prior");
    }

    #[test]
    fn parallel_matches_sequential_membership() {
        let cfg = KmeansConfig {
            points: 400,
            dims: 4,
            clusters: 5,
            threshold: 0.0,
            max_iterations: 10,
            seed: 99,
        };
        let points = generate_points(&cfg);
        let seq = run_kmeans_sequential(&cfg, &points);
        let stm = Stm::new();
        let st = make_state(&stm, &cfg, false);
        let par = run_kmeans(&stm, &st, &cfg, &points, 4);
        assert_eq!(par.iterations, seq.iterations);
        // Membership must match exactly: same centroids drive the same
        // assignment; float accumulation differences are sub-assignment.
        let diffs = par
            .membership
            .iter()
            .zip(&seq.membership)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            diffs <= points.len() / 100,
            "memberships diverged on {diffs} of {} points",
            points.len()
        );
    }

    #[test]
    fn clustering_recovers_separated_clusters() {
        let cfg = KmeansConfig {
            points: 300,
            dims: 2,
            clusters: 3,
            threshold: 0.001,
            max_iterations: 30,
            seed: 7,
        };
        let points = generate_points(&cfg);
        let stm = Stm::new();
        let st = make_state(&stm, &cfg, false);
        let res = run_kmeans(&stm, &st, &cfg, &points, 3);
        assert!(res.iterations <= 30);
        // Every point's centroid should be reasonably close to it.
        let mut total_d = 0f64;
        for (i, p) in points.iter().enumerate() {
            let c = &res.centroids[res.membership[i]];
            let d: f32 = c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
            total_d += d as f64;
        }
        let mean = total_d / points.len() as f64;
        assert!(mean < 50.0, "mean within-cluster distance {mean} too large");
    }
}
