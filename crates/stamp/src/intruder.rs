//! STAMP **intruder**: signature-based network intrusion detection.
//!
//! A packet stream interleaves fragments of many flows. Workers pull
//! packets from a shared queue, reassemble flows in a fragment map, move
//! completed flows to a decoded queue, and scan decoded payloads for attack
//! signatures. Three pipeline stages, three very different partitions:
//!
//! * `intruder.packets` — the input queue: a two-word hotspot (head/tail),
//!   extreme contention, the poster child for coarse conflict detection;
//! * `intruder.fragments` — the reassembly map: accesses spread over flows,
//!   fine detection wins;
//! * `intruder.decoded` — the completed-flow queue plus the attack counter.
//!
//! Payloads are sequences of 64-bit words (each fragment carries one word);
//! an "attack" embeds the two-word signature. This replaces STAMP's string
//! dictionary with word-exact matching — the transaction structure
//! (queue/map/queue hand-offs) is unchanged.

use std::sync::Arc;

use partstm_core::{
    Arena, CollectionRegistry, Handle, Migratable, MigratableCollection, PVar, PVarFields,
    Partition, PartitionConfig, Stm, Tx, TxResult, TxWord,
};
use partstm_structures::{THashMap, TQueue};

use crate::common::SplitMix64;

/// Maximum fragments per flow (fits the reassembly slots in one node).
pub const MAX_FRAGMENTS: usize = 16;

/// The attack signature: two consecutive payload words.
pub const SIGNATURE: (u64, u64) = (0xDEAD_BEEF_0BAD_F00D, 0xFEE1_DEAD_CAFE_D00D);

/// One packet: a fragment of one flow.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Flow this fragment belongs to.
    pub flow: u64,
    /// Fragment index within the flow.
    pub index: u16,
    /// Total fragments in the flow.
    pub total: u16,
    /// Payload word.
    pub data: u64,
}

/// Reassembly node: one in-flight flow, bound to the fragments partition.
struct FlowAsm {
    /// Bitmask of received fragment indices.
    received: PVar<u64>,
    /// Total fragments expected.
    total: PVar<u64>,
    /// Fragment payload slots.
    data: [PVar<u64>; MAX_FRAGMENTS],
}

impl PVarFields for FlowAsm {
    fn for_each_pvar(&self, f: &mut dyn FnMut(&dyn Migratable)) {
        f(&self.received);
        f(&self.total);
        for d in &self.data {
            f(d);
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct IntruderConfig {
    /// Number of flows.
    pub flows: usize,
    /// Maximum fragments per flow (2..=MAX_FRAGMENTS).
    pub max_fragments: usize,
    /// Percentage of flows carrying the attack signature.
    pub attack_pct: u64,
    /// Stream shuffle / payload seed.
    pub seed: u64,
}

impl IntruderConfig {
    /// Scaled STAMP-like defaults.
    pub fn scaled(flows: usize) -> Self {
        IntruderConfig {
            flows,
            max_fragments: 10,
            attack_pct: 10,
            seed: 0x1D5_0DD,
        }
    }
}

/// The partitions intruder uses.
pub struct IntruderParts {
    /// Input packet queue.
    pub packets: Arc<Partition>,
    /// Flow reassembly map.
    pub fragments: Arc<Partition>,
    /// Decoded-flow queue + attack counter.
    pub decoded: Arc<Partition>,
}

impl IntruderParts {
    /// One partition per pipeline structure.
    pub fn partitioned(stm: &Stm, tunable: bool) -> Self {
        let mk = |name: &str| {
            let mut cfg = PartitionConfig::named(name);
            cfg.tune = tunable;
            stm.new_partition(cfg)
        };
        IntruderParts {
            packets: mk("intruder.packets"),
            fragments: mk("intruder.fragments"),
            decoded: mk("intruder.decoded"),
        }
    }

    /// Single shared partition (base-STM comparison).
    pub fn single(stm: &Stm, tunable: bool) -> Self {
        let mut cfg = PartitionConfig::named("intruder.all");
        cfg.tune = tunable;
        let p = stm.new_partition(cfg);
        IntruderParts {
            packets: Arc::clone(&p),
            fragments: Arc::clone(&p),
            decoded: p,
        }
    }
}

/// Generates the interleaved packet stream; returns `(packets,
/// attack_flow_count)`. Deterministic in the seed.
pub fn generate_stream(cfg: &IntruderConfig) -> (Vec<Packet>, usize) {
    assert!((2..=MAX_FRAGMENTS).contains(&cfg.max_fragments));
    let mut rng = SplitMix64::new(cfg.seed);
    let mut packets = Vec::new();
    let mut attacks = 0usize;
    for flow in 0..cfg.flows as u64 {
        let total = 2 + rng.below_usize(cfg.max_fragments - 1);
        let is_attack = rng.pct(cfg.attack_pct);
        let mut payload: Vec<u64> = (0..total).map(|_| rng.next() | 1).collect();
        if is_attack {
            // Plant the signature at a random aligned position.
            let pos = rng.below_usize(total - 1);
            payload[pos] = SIGNATURE.0;
            payload[pos + 1] = SIGNATURE.1;
            attacks += 1;
        }
        for (index, &data) in payload.iter().enumerate() {
            packets.push(Packet {
                flow,
                index: index as u16,
                total: total as u16,
                data,
            });
        }
    }
    // Shuffle fragments across flows (Fisher-Yates).
    for i in (1..packets.len()).rev() {
        let j = rng.below_usize(i + 1);
        packets.swap(i, j);
    }
    (packets, attacks)
}

/// The shared pipeline state.
pub struct Intruder {
    parts: IntruderParts,
    /// Indices into the pre-generated packet vector.
    packet_queue: Arc<TQueue<u64>>,
    fragment_map: Arc<THashMap>,
    flow_arena: Arc<Arena<FlowAsm>>,
    decoded_queue: Arc<TQueue<u64>>,
    attacks_found: PVar<u64>,
    flows_done: PVar<u64>,
}

impl Intruder {
    /// Builds the pipeline and enqueues all packet indices.
    pub fn new(stm: &Stm, parts: IntruderParts, packets: &[Packet]) -> Self {
        let me = Intruder {
            packet_queue: Arc::new(TQueue::with_capacity(
                Arc::clone(&parts.packets),
                packets.len(),
            )),
            fragment_map: Arc::new(THashMap::new(Arc::clone(&parts.fragments), 4096)),
            flow_arena: Arc::new(Arena::new_bound(&parts.fragments, |p| FlowAsm {
                received: p.tvar(0),
                total: p.tvar(0),
                data: core::array::from_fn(|_| p.tvar(0)),
            })),
            decoded_queue: Arc::new(TQueue::new(Arc::clone(&parts.decoded))),
            attacks_found: parts.decoded.tvar(0),
            flows_done: parts.decoded.tvar(0),
            parts,
        };
        let ctx = stm.register_thread();
        for i in 0..packets.len() as u64 {
            ctx.run(|tx| me.packet_queue.push_back(tx, i));
        }
        me
    }

    /// The partitions backing this pipeline.
    pub fn parts(&self) -> &IntruderParts {
        &self.parts
    }

    /// Registers the pipeline's arena-backed state (both queues, the
    /// reassembly map and the flow arena) with a migration directory,
    /// making every stage repartition-aware.
    pub fn register_with(&self, dir: &dyn CollectionRegistry) {
        self.packet_queue.attach_directory(dir);
        self.fragment_map.attach_directory(dir);
        self.decoded_queue.attach_directory(dir);
        dir.register_collection(Arc::clone(&self.flow_arena) as Arc<dyn MigratableCollection>);
    }

    /// Decoder step: pop one packet index and integrate the fragment;
    /// completed flows move to the decoded queue. Returns `false` when the
    /// packet queue was empty.
    pub fn decode_one<'e>(&'e self, tx: &mut Tx<'e, '_>, packets: &[Packet]) -> TxResult<bool> {
        let Some(idx) = self.packet_queue.pop_front(tx)? else {
            return Ok(false);
        };
        let pkt = packets[idx as usize];
        let h = match self.fragment_map.get(tx, pkt.flow)? {
            Some(raw) => Handle::<FlowAsm>::from_word(raw),
            None => {
                let h = self.flow_arena.alloc(tx)?;
                let n = self.flow_arena.get(h);
                tx.write(&n.received, 0)?;
                tx.write(&n.total, pkt.total as u64)?;
                for slot in &n.data {
                    tx.write(slot, 0)?;
                }
                self.fragment_map.put(tx, pkt.flow, h.to_word())?;
                h
            }
        };
        let n = self.flow_arena.get(h);
        let mask = tx.read(&n.received)?;
        let bit = 1u64 << pkt.index;
        if mask & bit != 0 {
            return Ok(true); // duplicate fragment: drop
        }
        tx.write(&n.data[pkt.index as usize], pkt.data)?;
        let mask = mask | bit;
        tx.write(&n.received, mask)?;
        let total = tx.read(&n.total)?;
        if mask == (1u64 << total) - 1 {
            // Flow complete: hand it to the detector stage.
            self.fragment_map.delete(tx, pkt.flow)?;
            self.decoded_queue.push_back(tx, h.to_word())?;
        }
        Ok(true)
    }

    /// Detector step: pop one completed flow and scan for the signature.
    /// Returns `false` when the decoded queue was empty.
    pub fn detect_one<'e>(&'e self, tx: &mut Tx<'e, '_>) -> TxResult<bool> {
        let Some(raw) = self.decoded_queue.pop_front(tx)? else {
            return Ok(false);
        };
        let h = Handle::<FlowAsm>::from_word(raw);
        let n = self.flow_arena.get(h);
        let total = tx.read(&n.total)? as usize;
        let mut prev = 0u64;
        let mut attack = false;
        for slot in n.data.iter().take(total) {
            let w = tx.read(slot)?;
            if prev == SIGNATURE.0 && w == SIGNATURE.1 {
                attack = true;
            }
            prev = w;
        }
        if attack {
            let a = tx.read(&self.attacks_found)?;
            tx.write(&self.attacks_found, a + 1)?;
        }
        let d = tx.read(&self.flows_done)?;
        tx.write(&self.flows_done, d + 1)?;
        self.flow_arena.free(tx, h);
        Ok(true)
    }

    /// Attacks detected so far (quiescent read).
    pub fn attacks(&self) -> u64 {
        self.attacks_found.load_direct()
    }

    /// Flows fully processed so far (quiescent read).
    pub fn flows_done(&self) -> u64 {
        self.flows_done.load_direct()
    }
}

/// Outcome of a full run.
#[derive(Debug)]
pub struct IntruderResult {
    /// Attacks detected.
    pub attacks: u64,
    /// Flows processed end to end.
    pub flows: u64,
}

/// Runs the full pipeline with `threads` workers, each alternating decode
/// and detect steps (STAMP's worker loop).
pub fn run_intruder(
    stm: &Stm,
    intruder: &Intruder,
    packets: &[Packet],
    total_flows: usize,
    threads: usize,
) -> IntruderResult {
    std::thread::scope(|s| {
        for _ in 0..threads {
            let ctx = stm.register_thread();
            s.spawn(move || {
                loop {
                    let decoded = ctx.run(|tx| intruder.decode_one(tx, packets));
                    let detected = ctx.run(|tx| intruder.detect_one(tx));
                    if !decoded && !detected {
                        // Input drained; stop once every flow is finished.
                        if intruder.flows_done() >= total_flows as u64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    IntruderResult {
        attacks: intruder.attacks(),
        flows: intruder.flows_done(),
    }
}

/// The program model for the compile-time analysis (T1/census).
pub fn partition_plan() -> partstm_analysis::ProgramModel {
    use partstm_analysis::{AccessKind, ModelBuilder};
    let mut b = ModelBuilder::new("intruder");
    let pkt_q = b.alloc("packet_queue_nodes", "QueueNode");
    let frag_map = b.alloc("fragment_map_nodes", "HashNode");
    let flows = b.alloc("flow_assemblies", "FlowAsm");
    let dec_q = b.alloc("decoded_queue_nodes", "QueueNode");
    b.access("packet_pop", AccessKind::ReadWrite, &[pkt_q]);
    b.access("fragment_insert", AccessKind::ReadWrite, &[frag_map, flows]);
    // Completing a flow touches the map/flow in one site and the decoded
    // queue in another (the queue push is its own instrumented accesses);
    // likewise detection reads queue nodes and flow words at distinct
    // sites. Keeping the sites separate is what lets the analysis give the
    // pipeline three partitions.
    b.access(
        "flow_complete_unlink",
        AccessKind::ReadWrite,
        &[frag_map, flows],
    );
    b.access("flow_complete_enqueue", AccessKind::ReadWrite, &[dec_q]);
    b.access("detect_dequeue", AccessKind::ReadWrite, &[dec_q]);
    b.access("detect_scan_payload", AccessKind::ReadWrite, &[flows]);
    b.build().expect("intruder model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `register_with` hands both queues, the reassembly map and the flow
    /// arena to the directory.
    #[test]
    fn register_with_covers_every_stage() {
        use std::cell::Cell;
        struct Counting(Cell<usize>);
        impl CollectionRegistry for Counting {
            fn register_collection(&self, c: Arc<dyn MigratableCollection>) {
                let _ = c.home_partition();
                self.0.set(self.0.get() + 1);
            }
        }
        let stm = Stm::new();
        let cfg = IntruderConfig::scaled(50);
        let (packets, _) = generate_stream(&cfg);
        let pipeline = Intruder::new(&stm, IntruderParts::partitioned(&stm, false), &packets);
        let reg = Counting(Cell::new(0));
        pipeline.register_with(&reg);
        assert_eq!(reg.0.get(), 4, "packet queue, map, decoded queue, arena");
    }

    #[test]
    fn stream_generation_is_complete_and_deterministic() {
        let cfg = IntruderConfig::scaled(100);
        let (p1, a1) = generate_stream(&cfg);
        let (p2, a2) = generate_stream(&cfg);
        assert_eq!(a1, a2);
        assert_eq!(p1.len(), p2.len());
        // Every flow's fragments are all present exactly once.
        let mut seen = std::collections::HashMap::<u64, u64>::new();
        for p in &p1 {
            let mask = seen.entry(p.flow).or_default();
            let bit = 1u64 << p.index;
            assert_eq!(*mask & bit, 0, "duplicate fragment");
            *mask |= bit;
        }
        assert_eq!(seen.len(), 100);
        for p in &p1 {
            assert_eq!(
                seen[&p.flow],
                (1u64 << p.total) - 1,
                "flow {} incomplete",
                p.flow
            );
        }
    }

    fn run_config(threads: usize, single: bool) {
        let cfg = IntruderConfig::scaled(300);
        let (packets, attacks) = generate_stream(&cfg);
        let stm = Stm::new();
        let parts = if single {
            IntruderParts::single(&stm, false)
        } else {
            IntruderParts::partitioned(&stm, false)
        };
        let intruder = Intruder::new(&stm, parts, &packets);
        let res = run_intruder(&stm, &intruder, &packets, cfg.flows, threads);
        assert_eq!(res.flows, cfg.flows as u64, "every flow processed");
        assert_eq!(res.attacks, attacks as u64, "every attack detected");
    }

    #[test]
    fn sequential_pipeline_detects_all_attacks() {
        run_config(1, false);
    }

    #[test]
    fn parallel_pipeline_detects_all_attacks() {
        run_config(4, false);
    }

    #[test]
    fn single_partition_pipeline_detects_all_attacks() {
        run_config(4, true);
    }

    #[test]
    fn analysis_separates_pipeline_stages() {
        use partstm_analysis::{partition, Strategy};
        let model = partition_plan();
        let plan = partition(&model, Strategy::MayTouch).unwrap();
        // packets | fragments+flows | decoded: the three pipeline stages.
        assert_eq!(plan.partition_count(), 3);
    }
}
